"""Gate benchmark results against committed baselines.

Compares a fresh benchmark envelope against the expectations in
``benchmarks/baselines.json`` and exits non-zero when:

* a cell regresses by more than the tolerance band (default 40%, wide
  on purpose so CI-runner noise does not flake the gate);
* a baseline cell is missing from the fresh results;
* any cell fails its correctness audit.

Three suites are gated.  ``--suite cluster`` (the default) reads
``BENCH_cluster.json`` from ``benchmarks/bench_cluster_throughput.py``
and requires every transaction committed — the transfer pair always
drains.  ``--suite arena`` reads ``BENCH_arena.json`` from
``benchmarks/bench_arena_matrix.py``; arena cells run contended and
overloaded traffic where aborts are a *reported outcome*, so the audit
there demands serializability on a complete history but not a 100%
commit rate.  ``--suite insight`` reads ``BENCH_insight.json`` from
``benchmarks/bench_insight_overhead.py`` and gates the recorder-on and
recorder-off throughput cells of E18 — both run the always-committing
transfer pair, so every transaction must commit.

Faster-than-baseline results always pass; the gate only catches decay.
Baselines are keyed by mode (``quick``/``full``) because the two modes
run different sweep sizes.  Refresh a stale baseline by running the
bench and copying the new ``txn_per_s`` numbers into
``benchmarks/baselines.json``.

Usage::

    python tools/check_bench_regression.py \
        [--suite cluster|arena] \
        [--results benchmarks/results/BENCH_<suite>.json] \
        [--baselines benchmarks/baselines.json] \
        [--mode quick|full] [--tolerance 0.40]

CI runs the quick mode of both suites (see the ``perf-gate`` job); a
local full-mode run is gated with ``--mode full``.
"""

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Per-suite wiring: which envelope to read, which params knob
#: distinguishes quick from full runs, and whether the audit requires
#: every transaction committed.
SUITES = {
    "cluster": {
        "results": "BENCH_cluster.json",
        "mode_key": "rounds",
        "require_all_committed": True,
    },
    "arena": {
        "results": "BENCH_arena.json",
        "mode_key": "transactions",
        "require_all_committed": False,
    },
    "insight": {
        "results": "BENCH_insight.json",
        "mode_key": "rounds",
        "require_all_committed": True,
    },
}


def load(path: Path) -> dict:
    try:
        with open(path) as handle:
            return json.load(handle)
    except FileNotFoundError:
        sys.exit(f"error: {path} not found")
    except json.JSONDecodeError as exc:
        sys.exit(f"error: {path} is not valid JSON: {exc}")


def infer_mode(results: dict, baselines: dict, mode_key: str) -> str:
    """Match the fresh run's sweep size against the per-mode baseline
    sweep sizes."""
    size = results.get("params", {}).get(mode_key)
    for mode, entry in baselines.items():
        if entry.get(mode_key) == size:
            return mode
    sys.exit(
        f"error: no baseline mode matches {mode_key}={size!r} "
        f"(known: {sorted(baselines)}); pass --mode explicitly"
    )


def audit_failures(
    cell: str, sample: dict, *, require_all_committed: bool
) -> list[str]:
    problems = []
    if not sample.get("serializable", False):
        problems.append(f"{cell}: committed history not serializable")
    if not sample.get("audit_complete", False):
        problems.append(f"{cell}: serializability audit incomplete")
    if require_all_committed and sample.get("committed") != sample.get(
        "transactions"
    ):
        problems.append(
            f"{cell}: only {sample.get('committed')}/"
            f"{sample.get('transactions')} transactions committed"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail on benchmark throughput regressions."
    )
    parser.add_argument(
        "--suite",
        choices=sorted(SUITES),
        default="cluster",
        help="baseline suite to gate (default: cluster)",
    )
    parser.add_argument(
        "--results",
        type=Path,
        default=None,
        help="fresh bench output (default: benchmarks/results/BENCH_<suite>.json)",
    )
    parser.add_argument(
        "--baselines",
        type=Path,
        default=REPO / "benchmarks" / "baselines.json",
        help="committed expectations (default: benchmarks/baselines.json)",
    )
    parser.add_argument(
        "--mode",
        choices=("quick", "full"),
        default=None,
        help="baseline set to compare against (default: infer from rounds)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed fractional slowdown before failing (default: from "
        "baselines.json, falling back to 0.40)",
    )
    args = parser.parse_args(argv)

    suite = SUITES[args.suite]
    results_path = args.results
    if results_path is None:
        results_path = REPO / "benchmarks" / "results" / suite["results"]
    results = load(results_path)
    book = load(args.baselines)
    baselines = book.get(args.suite, {})
    if not baselines:
        sys.exit(f"error: {args.baselines} has no {args.suite!r} baselines")
    mode = args.mode or infer_mode(results, baselines, suite["mode_key"])
    entry = baselines.get(mode)
    if entry is None:
        sys.exit(f"error: no '{mode}' baselines in {args.baselines}")
    tolerance = args.tolerance
    if tolerance is None:
        tolerance = book.get("tolerance", 0.40)

    samples = results.get("samples", {})
    failures: list[str] = []
    print(f"perf gate: suite={args.suite} mode={mode} tolerance={tolerance:.0%}")
    for cell, expected in sorted(entry.get("txn_per_s", {}).items()):
        sample = samples.get(cell)
        if sample is None:
            failures.append(f"{cell}: missing from {results_path}")
            continue
        actual = sample.get("txn_per_s", 0.0)
        floor = expected * (1.0 - tolerance)
        verdict = "ok" if actual >= floor else "REGRESSED"
        print(
            f"  {cell:48s} {actual:8.1f} txn/s"
            f"  (baseline {expected:.1f}, floor {floor:.1f})  {verdict}"
        )
        if actual < floor:
            failures.append(
                f"{cell}: {actual:.1f} txn/s is below the regression floor "
                f"{floor:.1f} (baseline {expected:.1f}, tolerance {tolerance:.0%})"
            )
        failures.extend(
            audit_failures(
                cell,
                sample,
                require_all_committed=suite["require_all_committed"],
            )
        )

    if failures:
        print()
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print("perf gate: all cells within tolerance, audits clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
