"""Gate cluster-bench results against committed baselines.

Compares a fresh ``BENCH_cluster.json`` (written by
``benchmarks/bench_cluster_throughput.py``) against the expectations in
``benchmarks/baselines.json`` and exits non-zero when:

* a cell regresses by more than the tolerance band (default 40%, wide
  on purpose so CI-runner noise does not flake the gate);
* a baseline cell is missing from the fresh results;
* any cell fails its correctness audit — not serializable, audit
  incomplete, or not every transaction committed.

Faster-than-baseline results always pass; the gate only catches decay.
Baselines are keyed by mode (``quick``/``full``) because the two modes
run different round counts.  Refresh a stale baseline by running the
bench and copying the new ``txn_per_s`` numbers into
``benchmarks/baselines.json``.

Usage::

    python tools/check_bench_regression.py \
        [--results benchmarks/results/BENCH_cluster.json] \
        [--baselines benchmarks/baselines.json] \
        [--mode quick|full] [--tolerance 0.40]

CI runs the quick mode (see the ``perf-gate`` job); a local full-mode
run is gated with ``--mode full``.
"""

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def load(path: Path) -> dict:
    try:
        with open(path) as handle:
            return json.load(handle)
    except FileNotFoundError:
        sys.exit(f"error: {path} not found")
    except json.JSONDecodeError as exc:
        sys.exit(f"error: {path} is not valid JSON: {exc}")


def infer_mode(results: dict, baselines: dict) -> str:
    """Match the fresh run's round count against the per-mode baseline
    round counts."""
    rounds = results.get("params", {}).get("rounds")
    for mode, entry in baselines.items():
        if entry.get("rounds") == rounds:
            return mode
    sys.exit(
        f"error: no baseline mode matches rounds={rounds!r} "
        f"(known: {sorted(baselines)}); pass --mode explicitly"
    )


def audit_failures(cell: str, sample: dict) -> list[str]:
    problems = []
    if not sample.get("serializable", False):
        problems.append(f"{cell}: committed history not serializable")
    if not sample.get("audit_complete", False):
        problems.append(f"{cell}: serializability audit incomplete")
    if sample.get("committed") != sample.get("transactions"):
        problems.append(
            f"{cell}: only {sample.get('committed')}/"
            f"{sample.get('transactions')} transactions committed"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail on cluster-bench throughput regressions."
    )
    parser.add_argument(
        "--results",
        type=Path,
        default=REPO / "benchmarks" / "results" / "BENCH_cluster.json",
        help="fresh bench output (default: benchmarks/results/BENCH_cluster.json)",
    )
    parser.add_argument(
        "--baselines",
        type=Path,
        default=REPO / "benchmarks" / "baselines.json",
        help="committed expectations (default: benchmarks/baselines.json)",
    )
    parser.add_argument(
        "--mode",
        choices=("quick", "full"),
        default=None,
        help="baseline set to compare against (default: infer from rounds)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed fractional slowdown before failing (default: from "
        "baselines.json, falling back to 0.40)",
    )
    args = parser.parse_args(argv)

    results = load(args.results)
    book = load(args.baselines)
    baselines = book.get("cluster", {})
    if not baselines:
        sys.exit(f"error: {args.baselines} has no 'cluster' baselines")
    mode = args.mode or infer_mode(results, baselines)
    entry = baselines.get(mode)
    if entry is None:
        sys.exit(f"error: no '{mode}' baselines in {args.baselines}")
    tolerance = args.tolerance
    if tolerance is None:
        tolerance = book.get("tolerance", 0.40)

    samples = results.get("samples", {})
    failures: list[str] = []
    print(f"perf gate: mode={mode} tolerance={tolerance:.0%}")
    for cell, expected in sorted(entry.get("txn_per_s", {}).items()):
        sample = samples.get(cell)
        if sample is None:
            failures.append(f"{cell}: missing from {args.results}")
            continue
        actual = sample.get("txn_per_s", 0.0)
        floor = expected * (1.0 - tolerance)
        verdict = "ok" if actual >= floor else "REGRESSED"
        print(
            f"  {cell:24s} {actual:8.1f} txn/s"
            f"  (baseline {expected:.1f}, floor {floor:.1f})  {verdict}"
        )
        if actual < floor:
            failures.append(
                f"{cell}: {actual:.1f} txn/s is below the regression floor "
                f"{floor:.1f} (baseline {expected:.1f}, tolerance {tolerance:.0%})"
            )
        failures.extend(audit_failures(cell, sample))

    if failures:
        print()
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print("perf gate: all cells within tolerance, audits clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
