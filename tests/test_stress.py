"""Stress smoke tests: large inputs must complete without errors or
pathological blowup (no ground-truth comparison — scale only)."""

import random
import time

import pytest

from repro.core import decide_safety, is_safe_two_site
from repro.core.fastcheck import is_safe_total_orders_fast
from repro.sim import RandomDriver, run_once
from repro.workloads import random_pair_system, random_total_order_pair


class TestLargeSystems:
    def test_two_site_thousand_steps(self):
        rng = random.Random(1)
        system = random_pair_system(
            rng, sites=2, entities=200, shared=200, cross_arcs=10
        )
        start = time.perf_counter()
        verdict = decide_safety(system)
        elapsed = time.perf_counter() - start
        assert verdict.method in ("theorem-2", "trivial")
        assert elapsed < 30
        if not verdict.safe:
            assert verdict.certificate.verify()

    def test_fast_centralized_three_thousand_entities(self):
        rng = random.Random(2)
        _, t1, t2 = random_total_order_pair(rng, entities=3000)
        start = time.perf_counter()
        is_safe_total_orders_fast(t1, t2)
        assert time.perf_counter() - start < 10

    def test_simulator_on_large_system(self):
        rng = random.Random(3)
        system = random_pair_system(
            rng, sites=4, entities=60, shared=40, cross_arcs=5
        )
        result = run_once(system, RandomDriver(9))
        assert result.completed or result.deadlocked

    @pytest.mark.parametrize("sites", [1, 2])
    def test_deep_cross_arcs(self, sites):
        rng = random.Random(4)
        system = random_pair_system(
            rng, sites=sites, entities=50, shared=50, cross_arcs=100
        )
        first, second = system.pair()
        assert is_safe_two_site(first, second) in (True, False)
