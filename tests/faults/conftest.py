"""Fixtures for the fault-injection suite."""

from __future__ import annotations

import pytest

from repro.core import TransactionBuilder, TransactionSystem


@pytest.fixture
def crossing_pair(two_site_db) -> TransactionSystem:
    """Two-phase transactions acquiring x and z in opposite orders:
    deadlock-prone under random interleaving, but safe — the canonical
    workload for deadlock *resolution*."""
    t1 = TransactionBuilder("T1", two_site_db)
    lx1 = t1.lock("x")
    t1.update("x")
    lz1 = t1.lock("z")
    t1.update("z")
    ux1 = t1.unlock("x")
    t1.unlock("z")
    t1.precede(lx1, lz1)
    t1.precede(lz1, ux1)
    t2 = TransactionBuilder("T2", two_site_db)
    lz2 = t2.lock("z")
    t2.update("z")
    lx2 = t2.lock("x")
    t2.update("x")
    uz2 = t2.unlock("z")
    t2.unlock("x")
    t2.precede(lz2, lx2)
    t2.precede(lx2, uz2)
    return TransactionSystem([t1.build(), t2.build()])
