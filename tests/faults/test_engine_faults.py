"""Fault injection and recovery threaded through the engine."""

from repro.faults import FaultPlan, GrantDelay, SiteCrash, TransactionCrash
from repro.obs.events import EventLog
from repro.sim import RandomDriver, run_once


def plan_of(**kwargs) -> FaultPlan:
    return FaultPlan(**kwargs)


class TestSiteCrashes:
    def test_freeze_crash_recovers_and_completes(self, simple_safe_pair):
        plan = plan_of(
            site_crashes=(
                SiteCrash(site=1, at=2, recover_at=8, semantics="freeze"),
            )
        )
        result = run_once(
            simple_safe_pair, RandomDriver(0), fault_plan=plan
        )
        assert result.completed
        assert result.faults_injected >= 1

    def test_release_crash_aborts_holders_then_retries(
        self, simple_safe_pair
    ):
        event_log = EventLog()
        plan = plan_of(
            site_crashes=(
                SiteCrash(site=1, at=3, recover_at=7, semantics="release"),
            )
        )
        result = run_once(
            simple_safe_pair,
            RandomDriver(0),
            fault_plan=plan,
            event_log=event_log,
        )
        assert result.completed
        kinds = {event.kind for event in event_log.events}
        assert "crash" in kinds and "recover" in kinds
        # Someone held a site-1 lock at time 3, so release semantics
        # must have rolled at least one transaction back.
        assert "abort" in kinds
        assert result.total_retries >= 1
        assert result.recovery_latencies  # the victims came back

    def test_unrecovered_crash_reports_crashed_not_deadlock(
        self, simple_safe_pair
    ):
        plan = plan_of(site_crashes=(SiteCrash(site=1, at=0),))
        result = run_once(
            simple_safe_pair, RandomDriver(0), fault_plan=plan
        )
        assert not result.completed
        assert result.outcome == "crashed"
        assert sorted(result.crashed) == ["T1", "T2"]
        assert not result.deadlocked

    def test_completed_run_after_faults_is_a_legal_schedule(
        self, simple_safe_pair
    ):
        plan = plan_of(
            site_crashes=(
                SiteCrash(site=2, at=1, recover_at=5, semantics="release"),
            )
        )
        result = run_once(
            simple_safe_pair, RandomDriver(3), fault_plan=plan
        )
        assert result.completed
        # Rollback must not leave ghost events: the history still
        # re-validates as a full legal schedule.
        schedule = result.history.as_schedule()
        assert len(schedule) == simple_safe_pair.total_steps()


class TestGrantDelays:
    def test_delay_defers_but_does_not_kill(self, simple_safe_pair):
        plan = plan_of(grant_delays=(GrantDelay(at=0, until=6, entity="x"),))
        result = run_once(
            simple_safe_pair, RandomDriver(1), fault_plan=plan
        )
        assert result.completed
        assert result.faults_injected >= 1


class TestTransactionCrashes:
    def test_crashed_transaction_retries_to_completion(
        self, simple_safe_pair
    ):
        plan = plan_of(
            transaction_crashes=(
                TransactionCrash(transaction="T1", after_steps=2),
            )
        )
        result = run_once(
            simple_safe_pair, RandomDriver(0), fault_plan=plan
        )
        assert result.completed
        assert result.retries.get("T1", 0) == 1

    def test_exhausted_retries_reported_distinctly(self, simple_safe_pair):
        plan = plan_of(
            transaction_crashes=(
                TransactionCrash(transaction="T1", after_steps=2),
            )
        )
        result = run_once(
            simple_safe_pair,
            RandomDriver(0),
            fault_plan=plan,
            max_retries=0,
        )
        assert result.outcome == "retry-exhausted"
        assert "T1" in result.retry_exhausted


class TestDeadlockResolution:
    def test_crossing_pair_always_completes_with_resolution(
        self, crossing_pair
    ):
        resolved_total = 0
        for seed in range(30):
            result = run_once(
                crossing_pair,
                RandomDriver(seed),
                deadlock_policy="abort-youngest",
            )
            assert result.completed, seed
            assert result.serializable  # two-phase => safe
            resolved_total += result.deadlocks_resolved
        # The crossing pair does deadlock under some of these seeds.
        assert resolved_total > 0

    def test_without_policy_deadlock_stays_terminal(self, crossing_pair):
        outcomes = {
            run_once(crossing_pair, RandomDriver(seed)).outcome
            for seed in range(30)
        }
        assert "deadlock" in outcomes

    def test_resolution_emits_deadlock_and_abort_events(self, crossing_pair):
        for seed in range(30):
            event_log = EventLog()
            result = run_once(
                crossing_pair,
                RandomDriver(seed),
                deadlock_policy="wound-wait",
                event_log=event_log,
            )
            if result.deadlocks_resolved:
                kinds = [event.kind for event in event_log.events]
                assert "deadlock" in kinds and "abort" in kinds
                assert result.completed
                return
        raise AssertionError("no seed deadlocked in 30 tries")


class TestDeterminism:
    def test_same_seed_same_faulty_run(self, crossing_pair):
        plan = plan_of(
            site_crashes=(
                SiteCrash(site=1, at=2, recover_at=6, semantics="release"),
            ),
            grant_delays=(GrantDelay(at=0, until=3, entity="z"),),
        )

        def record(seed):
            event_log = EventLog()
            run_once(
                crossing_pair,
                RandomDriver(seed),
                fault_plan=plan,
                deadlock_policy="abort-random",
                fault_seed=seed,
                event_log=event_log,
            )
            return [event.to_dict() for event in event_log.events]

        assert record(11) == record(11)
