"""Deadlock-resolution victim selection."""

import random

import pytest

from repro.errors import FaultPlanError
from repro.faults import POLICIES, choose_victim, validate_policy


class TestValidatePolicy:
    def test_known_policies_pass_through(self):
        for policy in POLICIES:
            assert validate_policy(policy) == policy

    def test_none_means_no_resolution(self):
        assert validate_policy(None) is None
        assert validate_policy("none") is None

    def test_unknown_policy_rejected(self):
        with pytest.raises(FaultPlanError):
            validate_policy("abort-oldest")


class TestChooseVictim:
    AGES = {"T1": 0, "T2": 1, "T3": 2}

    def test_abort_youngest_kills_the_newest(self):
        victim = choose_victim(
            "abort-youngest", ["T2", "T3", "T1"], self.AGES, random.Random(0)
        )
        assert victim == "T3"

    def test_wound_wait_kills_the_oldests_successor(self):
        # Cycle order T2 -> T3 -> T1 -> T2; oldest is T1, so its cycle
        # successor T2 dies (the oldest wounds whoever it waits on).
        victim = choose_victim(
            "wound-wait", ["T2", "T3", "T1"], self.AGES, random.Random(0)
        )
        assert victim == "T2"

    def test_abort_random_is_seeded(self):
        cycle = ["T1", "T2", "T3"]
        first = choose_victim(
            "abort-random", cycle, self.AGES, random.Random(5)
        )
        again = choose_victim(
            "abort-random", cycle, self.AGES, random.Random(5)
        )
        assert first == again
        assert first in cycle

    def test_victim_is_always_in_the_cycle(self):
        for policy in POLICIES:
            for seed in range(10):
                victim = choose_victim(
                    policy, ["T3", "T1"], self.AGES, random.Random(seed)
                )
                assert victim in {"T3", "T1"}
