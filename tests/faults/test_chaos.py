"""The chaos sweep harness and its aggregate report."""

from repro.faults import chaos_sweep, percentile, random_plan
from repro.workloads import figure_3


class TestPercentile:
    def test_empty_is_none(self):
        assert percentile([], 95) is None

    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 95) == 95.0
        assert percentile(values, 50) == 50.0
        assert percentile([7], 95) == 7.0


class TestChaosSweep:
    def test_every_seed_terminates_and_is_counted(self):
        system = figure_3()
        plan = random_plan(system, 42)
        report = chaos_sweep(system, seeds=25, plan=plan)
        assert report.seeds == 25
        assert sum(report.outcomes.values()) == 25
        assert 0.0 <= report.completion_rate <= 1.0

    def test_report_round_trips_to_dict(self):
        system = figure_3()
        report = chaos_sweep(system, seeds=10, plan=random_plan(system, 3))
        payload = report.to_dict()
        assert payload["seeds"] == 10
        assert payload["completion_rate"] == round(report.completion_rate, 4)
        assert set(payload["outcomes"]) == set(report.outcomes)
        assert payload["mean_retries"] == round(report.mean_retries, 4)

    def test_render_mentions_every_outcome(self):
        system = figure_3()
        report = chaos_sweep(system, seeds=10, plan=random_plan(system, 3))
        text = report.render()
        for outcome in report.outcomes:
            assert outcome in text

    def test_faultless_sweep_matches_plain_simulation(self):
        system = figure_3()
        report = chaos_sweep(system, seeds=15, plan=None, policy=None)
        assert report.faults_injected == 0
        assert report.total_retries == 0

    def test_sweep_is_deterministic(self):
        system = figure_3()
        plan = random_plan(system, 9)
        first = chaos_sweep(system, seeds=12, plan=plan)
        second = chaos_sweep(system, seeds=12, plan=plan)
        assert first.outcomes == second.outcomes
        assert first.recovery_latencies == second.recovery_latencies
