"""Fault-plan construction, validation and (de)serialization."""

import json

import pytest

from repro.errors import FaultPlanError
from repro.faults import (
    FaultPlan,
    GrantDelay,
    SiteCrash,
    TransactionCrash,
    random_plan,
)
from repro.workloads import figure_3


class TestEntryValidation:
    def test_crash_recovery_must_follow_crash(self):
        with pytest.raises(FaultPlanError):
            SiteCrash(site=1, at=5, recover_at=5)

    def test_crash_rejects_unknown_semantics(self):
        with pytest.raises(FaultPlanError):
            SiteCrash(site=1, at=0, semantics="explode")

    def test_delay_needs_a_scope(self):
        with pytest.raises(FaultPlanError):
            GrantDelay(at=0, until=3)

    def test_delay_window_must_be_nonempty(self):
        with pytest.raises(FaultPlanError):
            GrantDelay(at=4, until=4, entity="x")

    def test_transaction_crash_needs_a_step(self):
        with pytest.raises(FaultPlanError):
            TransactionCrash(transaction="T1", after_steps=0)

    def test_delay_applies_only_inside_window(self):
        delay = GrantDelay(at=2, until=5, entity="x")
        assert delay.applies_to("x", 1, 2)
        assert delay.applies_to("x", 9, 4)
        assert not delay.applies_to("x", 1, 5)
        assert not delay.applies_to("y", 1, 3)


class TestSystemValidation:
    def test_unknown_site_rejected(self):
        plan = FaultPlan(site_crashes=(SiteCrash(site=9, at=0),))
        with pytest.raises(FaultPlanError):
            plan.validate_against(figure_3())

    def test_unknown_transaction_rejected(self):
        plan = FaultPlan(
            transaction_crashes=(
                TransactionCrash(transaction="nope", after_steps=1),
            )
        )
        with pytest.raises(FaultPlanError):
            plan.validate_against(figure_3())

    def test_unknown_entity_delay_rejected(self):
        plan = FaultPlan(grant_delays=(GrantDelay(at=0, until=2, entity="q"),))
        with pytest.raises(FaultPlanError):
            plan.validate_against(figure_3())


class TestSerialization:
    def test_round_trip(self):
        plan = FaultPlan(
            site_crashes=(
                SiteCrash(site=1, at=2, recover_at=6, semantics="release"),
                SiteCrash(site=2, at=0),
            ),
            grant_delays=(GrantDelay(at=1, until=4, entity="x"),),
            transaction_crashes=(
                TransactionCrash(transaction="T1", after_steps=2),
            ),
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        assert len(plan) == 4

    def test_unknown_keys_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"site_crashes": [], "surprise": 1})

    def test_malformed_entry_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"site_crashes": [{"when": 3}]})

    def test_load_resolves_embedded_system_path(self, tmp_path):
        system_file = tmp_path / "sys.sys"
        system_file.write_text("unused")
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(
            json.dumps(
                {
                    "system": "sys.sys",
                    "site_crashes": [{"site": 1, "at": 0}],
                }
            )
        )
        plan = FaultPlan.load(str(plan_file))
        assert plan.system_path == str(system_file)

    def test_load_rejects_non_json(self, tmp_path):
        bad = tmp_path / "plan.json"
        bad.write_text("{nope")
        with pytest.raises(FaultPlanError):
            FaultPlan.load(str(bad))


class TestRandomPlan:
    def test_is_valid_and_deterministic(self):
        system = figure_3()
        plan = random_plan(system, 7, site_crashes=2, grant_delays=2)
        plan.validate_against(system)  # must not raise
        assert plan == random_plan(system, 7, site_crashes=2, grant_delays=2)
        assert plan != random_plan(system, 8, site_crashes=2, grant_delays=2)

    def test_recoverable_plans_always_recover(self):
        system = figure_3()
        for seed in range(20):
            plan = random_plan(system, seed, site_crashes=3, recoverable=True)
            assert all(
                crash.recover_at is not None for crash in plan.site_crashes
            )
