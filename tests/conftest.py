"""Shared fixtures: canonical databases, transactions and systems used
across the suite."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    DistributedDatabase,
    TransactionBuilder,
    TransactionSystem,
)


@pytest.fixture
def two_site_db() -> DistributedDatabase:
    """x, y at site 1; w, z at site 2 (the Fig. 1 layout)."""
    return DistributedDatabase({"x": 1, "y": 1, "w": 2, "z": 2})


@pytest.fixture
def single_site_db() -> DistributedDatabase:
    return DistributedDatabase.single_site(["x", "y", "z"])


@pytest.fixture
def simple_unsafe_pair(two_site_db) -> TransactionSystem:
    """T1 funnels x before z; T2 funnels z before x — the canonical
    non-strongly-connected (hence unsafe) two-site pair."""
    t1 = TransactionBuilder("T1", two_site_db)
    _, _, ux = t1.access("x")
    lz, _, _ = t1.access("z")
    t1.precede(ux, lz)
    t2 = TransactionBuilder("T2", two_site_db)
    _, _, uz = t2.access("z")
    lx, _, _ = t2.access("x")
    t2.precede(uz, lx)
    return TransactionSystem([t1.build(), t2.build()])


@pytest.fixture
def simple_safe_pair(two_site_db) -> TransactionSystem:
    """Both transactions two-phase over x and z: D is complete, safe."""
    t1 = TransactionBuilder("T1", two_site_db)
    lx1 = t1.lock("x")
    lz1 = t1.lock("z")
    t1.update("x")
    t1.update("z")
    ux1 = t1.unlock("x")
    uz1 = t1.unlock("z")
    t1.precede(lx1, uz1)
    t1.precede(lz1, ux1)
    t2 = TransactionBuilder("T2", two_site_db)
    lx2 = t2.lock("x")
    lz2 = t2.lock("z")
    t2.update("x")
    t2.update("z")
    ux2 = t2.unlock("x")
    uz2 = t2.unlock("z")
    t2.precede(lx2, uz2)
    t2.precede(lz2, ux2)
    # Both transactions acquire in the same (x, z) order: two-phase AND
    # deadlock-free, so simulator runs always complete.
    t2.precede(lx2, lz2)
    t1.precede(lx1, lz1)
    return TransactionSystem([t1.build(), t2.build()])


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)
