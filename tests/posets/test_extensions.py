"""Linear-extension enumeration and counting (Lemma 1's universe)."""

import math
import random

import pytest

from repro.posets import (
    Poset,
    count_linear_extensions,
    extension_pairs,
    linear_extensions,
)


def random_poset(rng: random.Random, n: int, p: float) -> Poset:
    items = list(range(n))
    pairs = [
        (a, b)
        for a in items
        for b in items
        if a < b and rng.random() < p
    ]
    return Poset(items, pairs)


class TestEnumeration:
    def test_antichain_all_permutations(self):
        extensions = list(linear_extensions(Poset("abc")))
        assert len(extensions) == 6
        assert len({tuple(e) for e in extensions}) == 6

    def test_chain_single_extension(self):
        poset = Poset("abc", [("a", "b"), ("b", "c")])
        assert list(linear_extensions(poset)) == [["a", "b", "c"]]

    def test_every_yield_is_an_extension(self):
        rng = random.Random(5)
        poset = random_poset(rng, 6, 0.3)
        for extension in linear_extensions(poset):
            assert poset.is_linear_extension(extension)

    def test_limit_respected(self):
        assert len(list(linear_extensions(Poset("abcde"), limit=10))) == 10


class TestCounting:
    @pytest.mark.parametrize("seed", range(10))
    def test_count_matches_enumeration(self, seed):
        rng = random.Random(seed)
        poset = random_poset(rng, rng.randint(1, 7), 0.3)
        assert count_linear_extensions(poset) == len(
            list(linear_extensions(poset))
        )

    def test_antichain_count_is_factorial(self):
        assert count_linear_extensions(Poset(range(6))) == math.factorial(6)

    def test_cap_stops_early(self):
        assert count_linear_extensions(Poset(range(8)), cap=100) >= 100


class TestExtensionPairs:
    def test_cartesian_product(self):
        first = Poset("ab")  # 2 extensions
        second = Poset("xy", [("x", "y")])  # 1 extension
        pairs = list(extension_pairs(first, second))
        assert len(pairs) == 2
        for t1, t2 in pairs:
            assert first.is_linear_extension(t1)
            assert second.is_linear_extension(t2)

    def test_limit(self):
        pairs = list(extension_pairs(Poset("abc"), Poset("xyz"), limit=5))
        assert len(pairs) == 5
