"""Poset semantics: precedence, concurrency, restriction, strengthening."""

import pytest

from repro.posets import NotAPartialOrderError, Poset


class TestConstruction:
    def test_empty_relation(self):
        poset = Poset("abc")
        assert len(poset) == 3
        assert poset.concurrent("a", "b")

    def test_cycle_rejected(self):
        with pytest.raises(NotAPartialOrderError):
            Poset("ab", [("a", "b"), ("b", "a")])

    def test_unknown_item_rejected(self):
        with pytest.raises(KeyError):
            Poset("ab", [("a", "q")])


class TestOrderQueries:
    @pytest.fixture
    def diamond(self):
        return Poset("abcd", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])

    def test_precedes_is_transitive(self, diamond):
        assert diamond.precedes("a", "d")

    def test_precedes_is_irreflexive(self, diamond):
        assert not diamond.precedes("a", "a")

    def test_incomparable_middle(self, diamond):
        assert diamond.concurrent("b", "c")
        assert not diamond.comparable("b", "c")

    def test_down_up_sets(self, diamond):
        assert diamond.down_set("d") == {"a", "b", "c"}
        assert diamond.up_set("a") == {"b", "c", "d"}

    def test_minimal_maximal(self, diamond):
        assert diamond.minimal_items() == ["a"]
        assert diamond.maximal_items() == ["d"]

    def test_cover_graph_drops_implied(self):
        poset = Poset("abc", [("a", "b"), ("b", "c"), ("a", "c")])
        assert set(poset.cover_graph().arcs()) == {("a", "b"), ("b", "c")}

    def test_is_total(self):
        assert Poset("ab", [("a", "b")]).is_total()
        assert not Poset("ab").is_total()


class TestDerivedOrders:
    def test_with_precedences_strengthens(self):
        poset = Poset("abc", [("a", "b")])
        stronger = poset.with_precedences([("b", "c")])
        assert stronger.precedes("a", "c")
        assert not poset.precedes("a", "c")  # original untouched

    def test_with_precedences_detects_cycle(self):
        poset = Poset("ab", [("a", "b")])
        with pytest.raises(NotAPartialOrderError):
            poset.with_precedences([("b", "a")])

    def test_restrict_inherits_transitive_order(self):
        poset = Poset("abc", [("a", "b"), ("b", "c")])
        sub = poset.restrict({"a", "c"})
        assert sub.precedes("a", "c")
        assert len(sub) == 2


class TestLinearExtensionChecks:
    def test_valid_extension(self):
        poset = Poset("abc", [("a", "b")])
        assert poset.is_linear_extension(["a", "c", "b"])

    def test_violating_order_rejected(self):
        poset = Poset("abc", [("a", "b")])
        assert not poset.is_linear_extension(["b", "a", "c"])

    def test_wrong_item_set_rejected(self):
        poset = Poset("abc")
        assert not poset.is_linear_extension(["a", "b"])
        assert not poset.is_linear_extension(["a", "b", "b"])

    def test_a_linear_extension_with_key(self):
        poset = Poset("abc")
        order = poset.a_linear_extension(key=lambda x: {"a": 2, "b": 1, "c": 0}[x])
        assert order == ["c", "b", "a"]
