"""The command-line interface."""

import pytest

from repro.cli import main

FIG3_LIKE = """
database
  site 1: x y
  site 2: z

transaction T1
  site 1: Lx x Ly y Ux Uy
  site 2: Lz z Uz

transaction T2
  site 1: Ly y Lx x Uy Ux
  site 2: Lz z Uz
"""

SAFE_PAIR = """
database
  site 1: x
  site 2: z

transaction T1
  site 1: Lx x Ux
  site 2: Lz z Uz
  precede Lx -> Uz
  precede Lz -> Ux

transaction T2
  site 1: Lx x Ux
  site 2: Lz z Uz
  precede Lx -> Uz
  precede Lz -> Ux
"""

TOTAL_PAIR = """
database
  site 1: x z

transaction T1
  site 1: Lx x Ux Lz z Uz

transaction T2
  site 1: Lz z Uz Lx x Ux
"""


@pytest.fixture
def unsafe_file(tmp_path):
    path = tmp_path / "unsafe.sys"
    path.write_text(FIG3_LIKE)
    return str(path)


@pytest.fixture
def safe_file(tmp_path):
    path = tmp_path / "safe.sys"
    path.write_text(SAFE_PAIR)
    return str(path)


@pytest.fixture
def total_file(tmp_path):
    path = tmp_path / "total.sys"
    path.write_text(TOTAL_PAIR)
    return str(path)


class TestAnalyze:
    def test_unsafe_exits_1(self, unsafe_file, capsys):
        assert main(["analyze", unsafe_file]) == 1
        out = capsys.readouterr().out
        assert "safe:         False" in out
        assert "theorem-2" in out

    def test_safe_exits_0(self, safe_file, capsys):
        assert main(["analyze", safe_file]) == 0
        assert "safe:         True" in capsys.readouterr().out

    def test_certificate_flag(self, unsafe_file, capsys):
        main(["analyze", unsafe_file, "--certificate"])
        assert "Unsafeness certificate" in capsys.readouterr().out

    def test_exhaustive_flag(self, unsafe_file, capsys):
        assert main(["analyze", unsafe_file, "--exhaustive"]) == 1
        assert "agree: True" in capsys.readouterr().out

    def test_dot_flag(self, unsafe_file, capsys):
        main(["analyze", unsafe_file, "--dot"])
        assert 'digraph "D(T1,T2)"' in capsys.readouterr().out

    def test_missing_file_exits_2(self, capsys):
        assert main(["analyze", "/nonexistent.sys"]) == 2
        assert "error" in capsys.readouterr().err

    def test_json_output(self, unsafe_file, capsys):
        import json

        code = main(["analyze", unsafe_file, "--json", "--certificate"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["safe"] is False
        assert payload["method"] == "theorem-2"
        assert payload["transactions"] == ["T1", "T2"]
        assert payload["certificate"]["dominator"] == ["x", "y"]
        assert len(payload["witness"]) == 18

    def test_json_with_exhaustive_flag(self, safe_file, capsys):
        import json

        code = main(["analyze", safe_file, "--json", "--exhaustive"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["exhaustive_agrees"] is True

    def test_parse_error_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.sys"
        bad.write_text("nonsense\n")
        assert main(["analyze", str(bad)]) == 2
        assert "error" in capsys.readouterr().err


class TestSimulate:
    def test_safe_system_exits_0(self, safe_file, capsys):
        assert main(["simulate", safe_file, "--runs", "50"]) == 0
        out = capsys.readouterr().out
        assert "non-serializable:   0.00%" in out

    def test_unsafe_system_exits_1(self, unsafe_file, capsys):
        assert main(["simulate", unsafe_file, "--runs", "200"]) == 1


class TestPlane:
    def test_total_pair_rendered(self, total_file, capsys):
        code = main(["plane", total_file])
        out = capsys.readouterr().out
        assert "#" in out  # rectangles
        assert code == 1  # this pair is unsafe
        assert "UNSAFE" in out

    def test_partial_orders_rejected(self, unsafe_file, capsys):
        assert main(["plane", unsafe_file]) == 2
        assert "not totally ordered" in capsys.readouterr().err


class TestReduce:
    def test_satisfiable_formula(self, capsys):
        assert main(["reduce", "(a | b) & (~a | b)"]) == 0
        out = capsys.readouterr().out
        assert "UNSAFE" in out
        assert "Theorem 3 check (unsafe ⟺ satisfiable): True" in out

    def test_trivial_unsat(self, capsys):
        assert main(["reduce", "(a) & (~a)"]) == 0
        assert "satisfiable=False" in capsys.readouterr().out

    def test_unrestricted_input_transformed(self, capsys):
        assert main(["reduce", "(a | b | c | d)"]) == 0
        assert "restricted form" in capsys.readouterr().out


class TestFigures:
    def test_all_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "# fig1" in out and "# fig3" in out and "# fig5" in out

    def test_single_figure(self, capsys):
        assert main(["figures", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "safe=True" in out

    def test_unknown_figure(self, capsys):
        assert main(["figures", "fig99"]) == 2
