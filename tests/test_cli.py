"""The command-line interface."""

import io
import json

import pytest

from repro.cli import main

FIG3_LIKE = """
database
  site 1: x y
  site 2: z

transaction T1
  site 1: Lx x Ly y Ux Uy
  site 2: Lz z Uz

transaction T2
  site 1: Ly y Lx x Uy Ux
  site 2: Lz z Uz
"""

SAFE_PAIR = """
database
  site 1: x
  site 2: z

transaction T1
  site 1: Lx x Ux
  site 2: Lz z Uz
  precede Lx -> Uz
  precede Lz -> Ux

transaction T2
  site 1: Lx x Ux
  site 2: Lz z Uz
  precede Lx -> Uz
  precede Lz -> Ux
"""

TOTAL_PAIR = """
database
  site 1: x z

transaction T1
  site 1: Lx x Ux Lz z Uz

transaction T2
  site 1: Lz z Uz Lx x Ux
"""


@pytest.fixture
def unsafe_file(tmp_path):
    path = tmp_path / "unsafe.sys"
    path.write_text(FIG3_LIKE)
    return str(path)


@pytest.fixture
def safe_file(tmp_path):
    path = tmp_path / "safe.sys"
    path.write_text(SAFE_PAIR)
    return str(path)


@pytest.fixture
def total_file(tmp_path):
    path = tmp_path / "total.sys"
    path.write_text(TOTAL_PAIR)
    return str(path)


class TestAnalyze:
    def test_unsafe_exits_1(self, unsafe_file, capsys):
        assert main(["analyze", unsafe_file]) == 1
        out = capsys.readouterr().out
        assert "safe:         False" in out
        assert "theorem-2" in out

    def test_safe_exits_0(self, safe_file, capsys):
        assert main(["analyze", safe_file]) == 0
        assert "safe:         True" in capsys.readouterr().out

    def test_certificate_flag(self, unsafe_file, capsys):
        main(["analyze", unsafe_file, "--certificate"])
        assert "Unsafeness certificate" in capsys.readouterr().out

    def test_exhaustive_flag(self, unsafe_file, capsys):
        assert main(["analyze", unsafe_file, "--exhaustive"]) == 1
        assert "agree: True" in capsys.readouterr().out

    def test_dot_flag(self, unsafe_file, capsys):
        main(["analyze", unsafe_file, "--dot"])
        assert 'digraph "D(T1,T2)"' in capsys.readouterr().out

    def test_missing_file_exits_2(self, capsys):
        assert main(["analyze", "/nonexistent.sys"]) == 2
        assert "error" in capsys.readouterr().err

    def test_json_output(self, unsafe_file, capsys):
        import json

        code = main(["analyze", unsafe_file, "--json", "--certificate"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["safe"] is False
        assert payload["method"] == "theorem-2"
        assert payload["transactions"] == ["T1", "T2"]
        assert payload["certificate"]["dominator"] == ["x", "y"]
        assert len(payload["witness"]) == 18

    def test_json_with_exhaustive_flag(self, safe_file, capsys):
        import json

        code = main(["analyze", safe_file, "--json", "--exhaustive"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["exhaustive_agrees"] is True

    def test_parse_error_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.sys"
        bad.write_text("nonsense\n")
        assert main(["analyze", str(bad)]) == 2
        assert "error" in capsys.readouterr().err


class TestSimulate:
    def test_safe_system_exits_0(self, safe_file, capsys):
        assert main(["simulate", safe_file, "--runs", "50"]) == 0
        out = capsys.readouterr().out
        assert "non-serializable:   0.00%" in out

    def test_unsafe_system_exits_1(self, unsafe_file, capsys):
        assert main(["simulate", unsafe_file, "--runs", "200"]) == 1


class TestPlane:
    def test_total_pair_rendered(self, total_file, capsys):
        code = main(["plane", total_file])
        out = capsys.readouterr().out
        assert "#" in out  # rectangles
        assert code == 1  # this pair is unsafe
        assert "UNSAFE" in out

    def test_partial_orders_rejected(self, unsafe_file, capsys):
        assert main(["plane", unsafe_file]) == 2
        assert "not totally ordered" in capsys.readouterr().err


class TestReduce:
    def test_satisfiable_formula(self, capsys):
        assert main(["reduce", "(a | b) & (~a | b)"]) == 0
        out = capsys.readouterr().out
        assert "UNSAFE" in out
        assert "Theorem 3 check (unsafe ⟺ satisfiable): True" in out

    def test_trivial_unsat(self, capsys):
        assert main(["reduce", "(a) & (~a)"]) == 0
        assert "satisfiable=False" in capsys.readouterr().out

    def test_unrestricted_input_transformed(self, capsys):
        assert main(["reduce", "(a | b | c | d)"]) == 0
        assert "restricted form" in capsys.readouterr().out


DATABASE_ONLY = """
database
  site 1: x y
  site 2: z
"""

TRIANGLE_FILES = {
    "t1.sys": """
database
  site 1: a b c

transaction T1
  site 1: La a Ua Lb b Ub
""",
    "t2.sys": """
database
  site 1: a b c

transaction T2
  site 1: Lb b Ub Lc c Uc
""",
    "t3.sys": """
database
  site 1: a b c

transaction T3
  site 1: Lc c Uc La a Ua
""",
}


@pytest.fixture
def triangle_files(tmp_path):
    paths = []
    for name, text in TRIANGLE_FILES.items():
        path = tmp_path / name
        path.write_text(text)
        paths.append(str(path))
    return paths


class TestAnalyzeEmptySystem:
    def test_database_only_file_is_trivially_safe(self, tmp_path, capsys):
        path = tmp_path / "empty.sys"
        path.write_text(DATABASE_ONLY)
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "transactions: " in out
        assert "sites used:   []" in out
        assert "safe:         True" in out


class TestSimulateJson:
    def test_payload_shape(self, safe_file, capsys):
        code = main(
            ["simulate", safe_file, "--runs", "50", "--seed", "9", "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["runs"] == 50
        assert payload["seed"] == 9
        assert payload["rates"]["non-serializable"] == 0.0
        assert payload["verdict"]["safe"] is True
        assert payload["agreement"] is True

    def test_unsafe_system(self, unsafe_file, capsys):
        code = main(["simulate", unsafe_file, "--runs", "200", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["rates"]["non-serializable"] > 0
        assert payload["verdict"]["safe"] is False


class TestReduceJson:
    def test_satisfiable_formula(self, capsys):
        assert main(["reduce", "(a | b) & (~a | b)", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["satisfiable"] is True
        assert payload["verdict"]["safe"] is False
        assert payload["agreement"] is True
        assert payload["entities"] > 0

    def test_trivial_unsat_settled_early(self, capsys):
        assert main(["reduce", "(a) & (~a)", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["satisfiable"] is False
        assert payload["settled_by_unit_propagation"] is False

    def test_unrestricted_input_reports_transform(self, capsys):
        assert main(["reduce", "(a | b | c | d)", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "restricted_form" in payload


class TestVet:
    def test_safe_files_all_admitted(self, safe_file, capsys):
        assert main(["vet", safe_file]) == 0
        out = capsys.readouterr().out
        assert "ADMIT  T1" in out and "ADMIT  T2" in out
        assert "2 admitted, 0 rejected" in out
        assert "service stats:" in out

    def test_unsafe_pair_rejected(self, unsafe_file, capsys):
        assert main(["vet", unsafe_file]) == 1
        out = capsys.readouterr().out
        assert "ADMIT  T1" in out
        assert "REJECT T2" in out and "unsafe" in out

    def test_cycle_condition_across_files(self, triangle_files, capsys):
        assert main(["vet", *triangle_files]) == 1
        out = capsys.readouterr().out
        assert "ADMIT  T1" in out and "ADMIT  T2" in out
        assert "REJECT T3" in out and "B_c is acyclic" in out

    def test_name_collisions_renamed(self, safe_file, capsys):
        assert main(["vet", safe_file, safe_file]) == 0
        out = capsys.readouterr().out
        assert "ADMIT  T1@2" in out and "ADMIT  T2@2" in out

    def test_json_payload(self, unsafe_file, capsys):
        code = main(["vet", unsafe_file, "--json", "--workers", "1"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["admitted"] == 1 and payload["rejected"] == 1
        decisions = payload["decisions"]
        assert decisions[0]["admitted"] is True
        assert decisions[1]["admitted"] is False
        assert decisions[1]["failing_pair"] == ["T2", "T1"]
        assert payload["stats"]["live_transactions"] == 1

    def test_missing_file_exits_2(self, capsys):
        assert main(["vet", "/nonexistent.sys"]) == 2
        assert "error" in capsys.readouterr().err


class TestServe:
    def run_serve(self, monkeypatch, capsys, lines):
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("".join(line + "\n" for line in lines))
        )
        assert main(["serve"]) == 0
        return capsys.readouterr().out.splitlines()

    def test_admit_evict_stats_loop(self, monkeypatch, capsys):
        out = self.run_serve(
            monkeypatch,
            capsys,
            [
                "ADMIT database; site 1: a b c;"
                " transaction T1; site 1: La a Ua Lb b Ub",
                "ADMIT transaction T2; site 1: Lb b Ub Lc c Uc",
                "ADMIT transaction T3; site 1: Lc c Uc La a Ua",
                "STATS",
                "EVICT T2",
                "ADMIT transaction T3; site 1: Lc c Uc La a Ua",
                "QUIT",
            ],
        )
        assert out[0] == "READY"
        assert out[1] == "OK admitted T1"
        assert out[2] == "OK admitted T2"
        assert out[3].startswith("REJECT T3")
        stats = json.loads(out[4].removeprefix("STATS "))
        assert stats["live_transactions"] == 2
        assert out[5] == "OK evicted T2"
        assert out[6] == "OK admitted T3"
        assert out[7] == "OK bye"

    def test_protocol_errors_are_reported_not_fatal(self, monkeypatch, capsys):
        out = self.run_serve(
            monkeypatch,
            capsys,
            [
                "EVICT ghost",
                "FROBNICATE",
                "ADMIT transaction T1; site 1: La a Ua",
                "QUIT",
            ],
        )
        assert out[1].startswith("ERR cannot evict unknown")
        assert out[2].startswith("ERR unknown command")
        # No database was ever declared, so the bare ADMIT fails cleanly.
        assert out[3].startswith("ERR")
        assert out[4] == "OK bye"

    def test_blank_lines_ignored_and_eof_terminates(self, monkeypatch, capsys):
        out = self.run_serve(monkeypatch, capsys, ["", "   "])
        assert out == ["READY"]


class TestFigures:
    def test_all_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "# fig1" in out and "# fig3" in out and "# fig5" in out

    def test_single_figure(self, capsys):
        assert main(["figures", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "safe=True" in out

    def test_unknown_figure(self, capsys):
        assert main(["figures", "fig99"]) == 2


class TestVerbosity:
    def test_quiet_drops_narration_keeps_verdict(self, safe_file, capsys):
        assert main(["-q", "analyze", safe_file]) == 0
        out = capsys.readouterr().out
        assert "safe:         True" in out
        assert "transactions:" not in out

    def test_double_quiet_silences_stdout(self, safe_file, capsys):
        assert main(["-qq", "analyze", safe_file]) == 0
        assert capsys.readouterr().out == ""

    def test_verbose_narrates_loading(self, safe_file, capsys):
        assert main(["-v", "analyze", safe_file]) == 0
        assert "loading" in capsys.readouterr().out

    def test_log_json_emits_json_lines(self, safe_file, capsys):
        assert main(["--log-json", "analyze", safe_file]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        records = [json.loads(line) for line in captured.err.splitlines()]
        assert any("safe:" in record["message"] for record in records)
        assert all({"ts", "level", "message"} <= set(r) for r in records)


class TestTraceAndMetrics:
    @pytest.fixture(autouse=True)
    def clean_registry(self):
        from repro.obs import metrics

        metrics.REGISTRY.reset()
        yield
        metrics.REGISTRY.reset()

    def test_vet_trace_then_report(self, safe_file, tmp_path, capsys):
        trace_file = str(tmp_path / "t.jsonl")
        assert main(["vet", safe_file, "--trace", trace_file]) == 0
        capsys.readouterr()
        from repro.obs import trace

        assert not trace.tracing_enabled()  # stopped by main()
        assert main(["trace-report", trace_file]) == 0
        out = capsys.readouterr().out
        assert "service.admit" in out
        assert "self ms" in out

    def test_trace_report_limit(self, safe_file, tmp_path, capsys):
        trace_file = str(tmp_path / "t.jsonl")
        main(["vet", safe_file, "--trace", trace_file])
        capsys.readouterr()
        assert main(["trace-report", trace_file, "--limit", "1"]) == 0
        assert "more span name(s)" in capsys.readouterr().out

    def test_trace_report_rejects_malformed_file(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        assert main(["trace-report", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_trace_report_missing_file(self, capsys):
        assert main(["trace-report", "/nonexistent.jsonl"]) == 2

    def test_metrics_dump_on_stderr(self, unsafe_file, capsys):
        assert main(["analyze", unsafe_file, "--metrics"]) == 1
        err = capsys.readouterr().err
        assert "# TYPE repro_decisions_total counter" in err
        assert 'repro_decisions_total{method="theorem-2",safe="false"} 1' in err

    def test_vet_metrics_cover_service_phases(self, safe_file, capsys):
        assert main(["vet", safe_file, "--metrics"]) == 0
        err = capsys.readouterr().err
        assert "# TYPE repro_service_phase_seconds histogram" in err
        assert 'phase="fingerprint"' in err


class TestSimulateEvents:
    def test_timeline_printed_and_deterministic(self, unsafe_file, capsys):
        main(["simulate", unsafe_file, "--events", "--seed", "7"])
        first = capsys.readouterr().out
        main(["simulate", unsafe_file, "--events", "--seed", "7"])
        second = capsys.readouterr().out
        assert first == second
        assert "timeline:" in first
        assert "grant" in first
        assert "outcome:" in first


class TestServeMetrics:
    def test_metrics_command_reports_registry(self, monkeypatch, capsys):
        from repro.obs import metrics

        metrics.REGISTRY.reset()
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(
                "ADMIT database; site 1: a b;"
                " transaction T1; site 1: La a Ua Lb b Ub\n"
                "METRICS\n"
                "QUIT\n"
            ),
        )
        assert main(["serve"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out[1] == "OK admitted T1"
        payload = json.loads(out[2].removeprefix("METRICS "))
        events = payload["repro_service_events_total"]["series"]
        assert events['{event="admitted"}'] >= 1
        metrics.REGISTRY.reset()


class TestChaosJson:
    def test_json_report_schema(self, unsafe_file, capsys):
        code = main(["chaos", unsafe_file, "--seeds", "5", "--json"])
        payload = json.loads(capsys.readouterr().out)
        expected = {
            "seeds",
            "policy",
            "max_retries",
            "plan_entries",
            "outcomes",
            "completion_rate",
            "mean_retries",
            "total_retries",
            "faults_injected",
            "deadlocks_resolved",
            "recoveries",
            "p95_recovery_latency_steps",
            "wall_seconds",
        }
        assert expected <= set(payload)
        assert payload["seeds"] == 5
        assert payload["policy"] == "abort-youngest"
        assert isinstance(payload["outcomes"], dict)
        assert sum(payload["outcomes"].values()) == payload["seeds"]
        assert 0.0 <= payload["completion_rate"] <= 1.0
        assert code == (0 if payload["completion_rate"] == 1.0 else 1)

    def test_json_is_deterministic_modulo_wall_time(self, unsafe_file, capsys):
        main(["chaos", unsafe_file, "--seeds", "4", "--json"])
        first = json.loads(capsys.readouterr().out)
        main(["chaos", unsafe_file, "--seeds", "4", "--json"])
        second = json.loads(capsys.readouterr().out)
        first.pop("wall_seconds")
        second.pop("wall_seconds")
        assert first == second


class TestClusterCli:
    def test_run_safe_pair_exits_zero(self, capsys, tmp_path):
        path = tmp_path / "pair.sys"
        path.write_text(
            "database\n"
            "  site 1: x\n"
            "  site 2: y\n"
            "\n"
            "transaction T1\n"
            "  site 1: Lx x Ux\n"
            "  site 2: Ly y Uy\n"
            "  precede Lx -> Ly\n"
            "  precede Ly -> Ux\n"
            "  precede Lx -> Uy\n"
            "\n"
            "transaction T2\n"
            "  site 1: Lx x Ux\n"
            "  site 2: Ly y Uy\n"
            "  precede Lx -> Ly\n"
            "  precede Ly -> Ux\n"
            "  precede Lx -> Uy\n"
        )
        code = main(
            ["cluster", "run", str(path), "--rounds", "3", "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["mode"] == "vetted-safe"
        assert payload["serializable"] is True
        assert payload["committed"] == payload["transactions"] == 6

    def test_run_unsafe_pair_exits_one(self, unsafe_file, capsys):
        code = main(
            [
                "cluster",
                "run",
                unsafe_file,
                "--rounds",
                "3",
                "--seed",
                "5",
                "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["mode"] == "runtime-guarded"

    def test_run_events_timeline(self, safe_file, capsys):
        main(["cluster", "run", safe_file, "--events"])
        out = capsys.readouterr().out
        assert "grant" in out
        assert "cluster run:" in out

    def test_missing_file_exits_two(self, capsys):
        assert main(["cluster", "run", "nope.sys"]) == 2

    def test_bad_fault_plan_site_fails_fast(self, safe_file, tmp_path, capsys):
        # Satellite check: a plan targeting a site the system doesn't
        # have must be rejected at load time, before any server boots.
        plan = tmp_path / "plan.json"
        plan.write_text('{"site_crashes": [{"site": 9, "at": 40}]}')
        code = main(
            [
                "cluster",
                "run",
                safe_file,
                "--faults",
                str(plan),
                "--request-timeout",
                "1",
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown site 9" in err

    def test_run_with_replicas_uses_replicated_runtime(
        self, capsys, tmp_path
    ):
        path = tmp_path / "pair.sys"
        path.write_text(
            "database\n"
            "  site 1: x\n"
            "  site 2: y\n"
            "\n"
            "transaction T1\n"
            "  site 1: Lx x Ux\n"
            "  site 2: Ly y Uy\n"
            "  precede Lx -> Ly\n"
            "  precede Ly -> Ux\n"
            "  precede Lx -> Uy\n"
            "\n"
            "transaction T2\n"
            "  site 1: Lx x Ux\n"
            "  site 2: Ly y Uy\n"
            "  precede Lx -> Ly\n"
            "  precede Ly -> Ux\n"
            "  precede Lx -> Uy\n"
        )
        code = main(
            [
                "cluster",
                "run",
                str(path),
                "--replicas",
                "3",
                "--rounds",
                "2",
                "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["replicas"] == 3
        assert payload["failovers"] == 0
        assert payload["committed"] == payload["transactions"] == 4
        assert "recovery" in payload and payload["recovery"] == []


TINY_SPEC = {
    "name": "tiny",
    "entities": 6,
    "sites": 2,
    "transactions": 4,
    "keys": {"distribution": "zipfian", "skew": 1.2},
    "mix": {"entities_per_txn": 2},
    "arrival": {"process": "closed", "concurrency": 3},
}


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "tiny.json"
    path.write_text(json.dumps(TINY_SPEC))
    return str(path)


class TestClusterWorkloadCli:
    def test_workload_run_exits_zero(self, spec_file, capsys):
        code = main(
            ["cluster", "run", "--workload", spec_file, "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["serializable"] is True
        assert payload["transactions"] == TINY_SPEC["transactions"]

    def test_workload_run_accepts_policy(self, spec_file, capsys):
        code = main(
            [
                "cluster",
                "run",
                "--workload",
                spec_file,
                "--workload-policy",
                "tree",
                "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["committed"] == TINY_SPEC["transactions"]

    def test_file_and_workload_together_exit_two(self, safe_file, spec_file, capsys):
        assert main(["cluster", "run", safe_file, "--workload", spec_file]) == 2
        assert "not both" in capsys.readouterr().err

    def test_neither_file_nor_workload_exits_two(self, capsys):
        assert main(["cluster", "run"]) == 2
        assert "need a system FILE" in capsys.readouterr().err

    def test_workload_with_replicas_exits_two(self, spec_file, capsys):
        assert (
            main(["cluster", "run", "--workload", spec_file, "--replicas", "3"]) == 2
        )

    def test_malformed_spec_exits_two(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(dict(TINY_SPEC, bogus=True)))
        assert main(["cluster", "run", "--workload", str(path)]) == 2
        assert "unknown traffic spec keys" in capsys.readouterr().err


class TestArenaCli:
    def test_matrix_smoke_exits_zero(self, spec_file, tmp_path, capsys):
        plan = tmp_path / "hot.json"
        plan.write_text(
            json.dumps({"grant_delays": [{"entity": "e0", "at": 2, "until": 8}]})
        )
        out = tmp_path / "arena.json"
        code = main(
            [
                "arena",
                "--workload",
                spec_file,
                "--policy",
                "2pl",
                "--policy",
                "tree",
                "--fault-plan",
                "none",
                "--fault-plan",
                str(plan),
                "--seed",
                "7",
                "--out",
                str(out),
            ]
        )
        rendered = capsys.readouterr().out
        assert code == 0
        assert "arena: 2 policies × 1 workloads × 2 fault plans" in rendered
        payload = json.loads(out.read_text())
        assert payload["all_ok"] is True
        assert len(payload["cells"]) == 4
        assert payload["fault_plans"] == ["none", "hot"]

    def test_json_output(self, spec_file, capsys):
        code = main(["arena", "--workload", spec_file, "--policy", "2pl", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert [cell["policy"] for cell in payload["cells"]] == ["2pl"]

    def test_malformed_spec_exits_two(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"name": "x"}')
        assert main(["arena", "--workload", str(path)]) == 2
        assert "traffic spec" in capsys.readouterr().err

    def test_json_is_deterministic_modulo_wall_time(self, spec_file, capsys):
        def snapshot():
            main(["arena", "--workload", spec_file, "--policy", "2pl", "--json"])
            payload = json.loads(capsys.readouterr().out)
            payload.pop("wall_seconds")
            for cell in payload["cells"]:
                for key in ("wall_seconds", "throughput_txn_s", "p50_ms", "p99_ms"):
                    cell.pop(key)
            return payload

        assert snapshot() == snapshot()
