"""Renderers: ASCII coordinated plane and DOT export."""

from repro.core import GeometricPicture, d_graph
from repro.graphs import DiGraph
from repro.viz import digraph_to_dot, render_plane, transaction_to_dot
from repro.workloads import figure_2_total_orders, figure_3


class TestRenderPlane:
    def setup_method(self):
        _, t1, t2 = figure_2_total_orders()
        self.picture = GeometricPicture(t1, t2)

    def test_contains_rectangles_and_axes(self):
        text = render_plane(self.picture)
        assert "#" in text
        assert "t1" in text and "t2" in text
        assert "Lx" in text and "Uz" in text

    def test_curve_drawn_when_given(self):
        curve = self.picture.find_nonserializable_curve()
        text = render_plane(self.picture, curve)
        assert "*" in text
        assert "schedule curve" in text

    def test_legend_lists_entities(self):
        text = render_plane(self.picture)
        for entity in self.picture.entities():
            assert f"{entity}:" in text


class TestDotExport:
    def test_digraph_dot_shape(self):
        graph = DiGraph("ab", [("a", "b")])
        dot = digraph_to_dot(graph, name="D")
        assert dot.startswith('digraph "D" {')
        assert '"a" -> "b";' in dot
        assert dot.rstrip().endswith("}")

    def test_highlighted_dominator(self):
        graph = d_graph(*figure_3().pair())
        dot = digraph_to_dot(graph, highlight={"x", "y"})
        assert dot.count("fillcolor=lightgray") == 2

    def test_transaction_dot_has_site_clusters(self):
        first, _ = figure_3().pair()
        dot = transaction_to_dot(first)
        assert "cluster_site1" in dot
        assert "cluster_site2" in dot
        assert '"Lx"' in dot

    def test_quoting_special_names(self):
        graph = DiGraph(['we"ird'], [])
        dot = digraph_to_dot(graph)
        assert r"\"" in dot
