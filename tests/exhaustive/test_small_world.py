"""Small-world exhaustive verification.

Random testing samples the space; these tests sweep it completely for
tiny shapes — every transaction pair of a fixed two-entity layout —
and check the paper's theorems on ALL of them.  If a decider has a
corner-case bug at this scale, these sweeps find it deterministically.

Shape: entities ``x`` (site 1) and ``z`` (site 2), each transaction
accessing both with its canonical L-update-U triples, varying over
every acyclic combination of cross-site precedences among the eight
meaningful lock/unlock orderings.
"""

from itertools import combinations, product

import pytest

from repro.core import (
    DistributedDatabase,
    Step,
    StepKind,
    Transaction,
    TransactionSystem,
    decide_safety_exact,
    decide_safety_exhaustive,
    is_safe_two_site,
)
from repro.core.safety import decide_safety_via_lemma_1
from repro.errors import TransactionError

DB = DistributedDatabase({"x": 1, "z": 2})

LX, UX = Step(StepKind.LOCK, "x"), Step(StepKind.UNLOCK, "x")
LZ, UZ = Step(StepKind.LOCK, "z"), Step(StepKind.UNLOCK, "z")
WX, WZ = Step(StepKind.UPDATE, "x"), Step(StepKind.UPDATE, "z")

BASE_STEPS = [LX, WX, UX, LZ, WZ, UZ]
BASE_ARCS = [(LX, WX), (WX, UX), (LZ, WZ), (WZ, UZ)]

# Every cross-site arc between a lock/unlock of x and one of z.
CROSS_CANDIDATES = [
    (a, b)
    for a in (LX, UX)
    for b in (LZ, UZ)
] + [
    (b, a)
    for a in (LX, UX)
    for b in (LZ, UZ)
]


def all_transactions(name: str) -> list[Transaction]:
    """Every transaction of the shape: each subset of cross arcs that
    yields a valid partial order (deduplicated by precedence relation)."""
    seen: set[frozenset] = set()
    result: list[Transaction] = []
    for size in range(len(CROSS_CANDIDATES) + 1):
        for chosen in combinations(CROSS_CANDIDATES, size):
            try:
                tx = Transaction(
                    name, DB, BASE_STEPS, BASE_ARCS + list(chosen)
                )
            except TransactionError:
                continue  # cyclic combination
            relation = frozenset(
                (str(a), str(b))
                for a in BASE_STEPS
                for b in BASE_STEPS
                if tx.precedes(a, b)
            )
            if relation in seen:
                continue
            seen.add(relation)
            result.append(tx)
    return result


@pytest.fixture(scope="module")
def universe():
    firsts = all_transactions("T1")
    seconds = all_transactions("T2")
    return firsts, seconds


def test_universe_is_nontrivial(universe):
    firsts, seconds = universe
    # The shape admits a meaningful variety of distinct partial orders
    # (exactly 20 distinct relations over the two 3-step chains).
    assert len(firsts) == 20
    assert len(firsts) == len(seconds)


def test_theorem_2_on_every_pair(universe):
    """safe ⟺ D strongly connected, for EVERY pair of the shape."""
    firsts, seconds = universe
    checked = 0
    unsafe_count = 0
    for first, second in product(firsts, seconds):
        expected = decide_safety_exhaustive(
            TransactionSystem([first, second])
        ).safe
        assert is_safe_two_site(first, second) == expected
        unsafe_count += not expected
        checked += 1
    assert checked == len(firsts) * len(seconds)
    assert 0 < unsafe_count < checked  # both verdicts occur


def test_exact_decider_on_every_pair(universe):
    firsts, seconds = universe
    for first, second in product(firsts, seconds):
        assert (
            decide_safety_exact(first, second).safe
            == is_safe_two_site(first, second)
        )


def test_lemma_1_decider_on_every_pair(universe):
    """The third exact decision path agrees everywhere too."""
    firsts, seconds = universe
    for first, second in product(firsts, seconds):
        assert (
            decide_safety_via_lemma_1(first, second).safe
            == is_safe_two_site(first, second)
        )


def test_certificates_on_every_unsafe_pair(universe):
    from repro.core import certificate_from_dominator

    firsts, seconds = universe
    built = 0
    for first, second in product(firsts, seconds):
        if is_safe_two_site(first, second):
            continue
        certificate = certificate_from_dominator(first, second)
        assert certificate.verify()
        built += 1
    assert built > 0
