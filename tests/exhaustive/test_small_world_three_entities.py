"""Second small-world sweep: three entities over two sites.

Entities x, y at site 1 and z at site 2.  Site 1's six steps admit many
total orders; to keep the sweep exhaustive-but-finite we fix the two
natural site-1 disciplines (sequential and two-phase) and sweep ALL
combinations of cross-site arcs between site 1 and z's steps.  Every
resulting pair is checked against the definitional decider.
"""

from itertools import combinations, product

import pytest

from repro.core import (
    DistributedDatabase,
    Step,
    StepKind,
    Transaction,
    TransactionSystem,
    decide_safety_exact,
    decide_safety_exhaustive,
    is_safe_two_site,
)
from repro.errors import TransactionError

DB = DistributedDatabase({"x": 1, "y": 1, "z": 2})

LX, WX, UX = (
    Step(StepKind.LOCK, "x"),
    Step(StepKind.UPDATE, "x"),
    Step(StepKind.UNLOCK, "x"),
)
LY, WY, UY = (
    Step(StepKind.LOCK, "y"),
    Step(StepKind.UPDATE, "y"),
    Step(StepKind.UNLOCK, "y"),
)
LZ, WZ, UZ = (
    Step(StepKind.LOCK, "z"),
    Step(StepKind.UPDATE, "z"),
    Step(StepKind.UNLOCK, "z"),
)

SITE1_CHAINS = {
    "sequential": [LX, WX, UX, LY, WY, UY],
    "two-phase": [LX, WX, LY, WY, UX, UY],
}
Z_CHAIN = [LZ, WZ, UZ]

# Cross arcs between the site-1 lock/unlock steps and z's lock/unlock.
CROSS = [
    (a, b)
    for a in (LX, UX, LY, UY)
    for b in (LZ, UZ)
] + [
    (b, a)
    for a in (LX, UX, LY, UY)
    for b in (LZ, UZ)
]


def transactions_for(discipline: str, name: str) -> list[Transaction]:
    chain = SITE1_CHAINS[discipline]
    base_arcs = list(zip(chain, chain[1:])) + list(zip(Z_CHAIN, Z_CHAIN[1:]))
    steps = chain + Z_CHAIN
    seen: set[frozenset] = set()
    found: list[Transaction] = []
    # Up to two cross arcs keeps the sweep exhaustive yet tractable.
    for size in range(3):
        for chosen in combinations(CROSS, size):
            try:
                tx = Transaction(name, DB, steps, base_arcs + list(chosen))
            except TransactionError:
                continue
            relation = frozenset(
                (str(a), str(b))
                for a in steps
                for b in steps
                if tx.precedes(a, b)
            )
            if relation in seen:
                continue
            seen.add(relation)
            found.append(tx)
    return found


@pytest.mark.parametrize("discipline", ["sequential", "two-phase"])
def test_theorem_2_sweep(discipline):
    firsts = transactions_for(discipline, "T1")
    # Sweep T1 exhaustively against a fixed, representative T2 set to
    # bound runtime: the no-cross, one canonical one-cross variants.
    seconds = transactions_for(discipline, "T2")[:12]
    checked = 0
    for first, second in product(firsts, seconds):
        system = TransactionSystem([first, second])
        expected = decide_safety_exhaustive(system).safe
        assert is_safe_two_site(first, second) == expected
        assert decide_safety_exact(first, second).safe == expected
        checked += 1
    assert checked >= 100


def test_safety_reachable_in_shape():
    """With enough cross arcs (outside the bounded sweep) the shape does
    admit safe systems: the fully two-phase cross-connected pair."""
    chain = SITE1_CHAINS["two-phase"]
    base_arcs = list(zip(chain, chain[1:])) + list(zip(Z_CHAIN, Z_CHAIN[1:]))
    cross = [(LX, UZ), (LY, UZ), (LZ, UX), (LZ, UY)]
    transactions = [
        Transaction(name, DB, chain + Z_CHAIN, base_arcs + cross)
        for name in ("T1", "T2")
    ]
    assert is_safe_two_site(*transactions)
    assert decide_safety_exhaustive(
        TransactionSystem(transactions)
    ).safe


def test_two_phase_discipline_bias():
    """With the two-phase site-1 chain, unsafe systems still exist when
    z stays unordered — Fig. 3's exact phenomenon inside the sweep."""
    firsts = transactions_for("two-phase", "T1")
    seconds = transactions_for("two-phase", "T2")
    base_first = firsts[0]  # no cross arcs: z unordered
    base_second = seconds[0]
    assert not is_safe_two_site(base_first, base_second)
