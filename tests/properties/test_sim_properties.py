"""Property-based tests of the simulator against the static theory."""

import random

from hypothesis import given, settings, strategies as st

from repro.core import decide_safety
from repro.sim import RandomDriver, ReplayDriver, run_once
from repro.workloads import random_pair_system

pair_params = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 10**9),
        "sites": st.integers(1, 3),
        "entities": st.integers(2, 4),
        "two_phase": st.booleans(),
    }
)


def build(params):
    rng = random.Random(params["seed"])
    return random_pair_system(
        rng,
        sites=params["sites"],
        entities=params["entities"],
        shared=params["entities"],
        two_phase=params["two_phase"],
    )


@settings(max_examples=40, deadline=None)
@given(pair_params, st.integers(0, 1000))
def test_completed_runs_are_legal_schedules(params, run_seed):
    """The engine can only produce legal schedules; as_schedule() (which
    fully re-validates) must never raise on a completed run."""
    system = build(params)
    result = run_once(system, RandomDriver(run_seed))
    if result.completed:
        result.history.as_schedule()
        assert result.serializable is not None


@settings(max_examples=40, deadline=None)
@given(pair_params, st.integers(0, 1000))
def test_static_safety_bounds_dynamic_behaviour(params, run_seed):
    """A statically safe system never produces a non-serializable run."""
    system = build(params)
    verdict = decide_safety(system, want_certificate=False)
    result = run_once(system, RandomDriver(run_seed))
    if verdict.safe and result.completed:
        assert result.serializable


@settings(max_examples=25, deadline=None)
@given(pair_params)
def test_certificates_replay_to_violations(params):
    """Every certificate schedule replays on the engine to exactly a
    non-serializable execution — static analysis is executable."""
    system = build(dict(params, two_phase=False))
    verdict = decide_safety(system)
    if verdict.safe or verdict.witness is None:
        return
    result = run_once(system, ReplayDriver(verdict.witness))
    assert result.completed
    assert result.outcome == "non-serializable"


@settings(max_examples=30, deadline=None)
@given(pair_params, st.integers(0, 1000))
def test_two_phase_systems_never_misserialize(params, run_seed):
    """2PL ⇒ safe, dynamically: runs complete serializable or deadlock."""
    system = build(dict(params, two_phase=True))
    result = run_once(system, RandomDriver(run_seed))
    if result.completed:
        assert result.serializable
    else:
        assert result.deadlocked  # the only other outcome is deadlock
