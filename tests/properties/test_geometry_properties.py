"""Property-based tests of the geometric method (§3)."""

import random

from hypothesis import given, settings, strategies as st

from repro.core import GeometricPicture, d_graph_of_total_orders
from repro.core.schedule import all_legal_schedules
from repro.graphs import is_strongly_connected
from repro.workloads import random_total_order_pair

total_order_params = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 10**9),
        "entities": st.integers(2, 4),
    }
)


@settings(max_examples=50, deadline=None)
@given(total_order_params)
def test_bits_monotone_along_d_arcs(params):
    """Theorem 1's key invariant: along every arc (x, y) of D(t1, t2),
    any legal curve's bits satisfy b_x <= b_y."""
    rng = random.Random(params["seed"])
    system, t1, t2 = random_total_order_pair(rng, entities=params["entities"])
    picture = GeometricPicture(t1, t2)
    graph = d_graph_of_total_orders(t1, t2)
    name1 = system.names[0]
    for schedule in all_legal_schedules(system, limit=25):
        interleaving = [
            1 if item.transaction == name1 else 2 for item in schedule.steps
        ]
        curve = picture.curve_of(interleaving)
        bits = picture.bits_of_curve(curve)
        for x, y in graph.arcs():
            assert bits[x] <= bits[y]


@settings(max_examples=50, deadline=None)
@given(total_order_params)
def test_proposition_1(params):
    """Separation of two rectangles ⟺ non-serializability."""
    rng = random.Random(params["seed"])
    system, t1, t2 = random_total_order_pair(rng, entities=params["entities"])
    picture = GeometricPicture(t1, t2)
    name1 = system.names[0]
    for schedule in all_legal_schedules(system, limit=25):
        interleaving = [
            1 if item.transaction == name1 else 2 for item in schedule.steps
        ]
        curve = picture.curve_of(interleaving)
        assert picture.separates_two_rectangles(curve) == (
            not schedule.is_serializable()
        )


@settings(max_examples=50, deadline=None)
@given(total_order_params)
def test_centralized_criterion(params):
    """Single-site Theorem 2 via geometry: a separating curve exists iff
    D(t1, t2) is not strongly connected."""
    rng = random.Random(params["seed"])
    _, t1, t2 = random_total_order_pair(rng, entities=params["entities"])
    picture = GeometricPicture(t1, t2)
    assert (picture.find_nonserializable_curve() is None) == (
        is_strongly_connected(d_graph_of_total_orders(t1, t2))
    )


@settings(max_examples=50, deadline=None)
@given(total_order_params)
def test_curve_schedule_roundtrip(params):
    """Reading a found curve back as steps reproduces both orders."""
    rng = random.Random(params["seed"])
    _, t1, t2 = random_total_order_pair(rng, entities=params["entities"])
    picture = GeometricPicture(t1, t2)
    bits = {entity: 0 for entity in picture.entities()}
    curve = picture.find_curve_with_bits(bits)
    assert curve is not None  # all-zero is the serial t1-then-t2 family
    steps = picture.schedule_steps_of_curve(curve)
    assert [s for axis, s in steps if axis == 1] == list(t1)
    assert [s for axis, s in steps if axis == 2] == list(t2)
    assert picture.bits_of_curve(curve) == bits
