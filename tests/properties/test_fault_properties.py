"""Property-based tests of the fault-injection layer.

The headline property (PR 3): under *any* seeded recoverable fault
plan, with abort-youngest resolution and bounded retries, a run either
completes — with a fully re-validated schedule, serializable whenever
the system is statically safe — or reports bounded-retry exhaustion /
an unrecovered crash.  It never hangs: every run carries an explicit
step budget and the engine's idle budget, so termination is structural,
not probabilistic.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core import decide_safety
from repro.faults import FaultPlan, random_plan
from repro.sim import RandomDriver, SimulationEngine
from repro.workloads import random_pair_system

fault_params = st.fixed_dictionaries(
    {
        "system_seed": st.integers(0, 10**9),
        "plan_seed": st.integers(0, 10**9),
        "run_seed": st.integers(0, 10**9),
        "sites": st.integers(1, 3),
        "entities": st.integers(2, 4),
        "two_phase": st.booleans(),
        "max_retries": st.integers(0, 4),
    }
)


def build_system(params):
    rng = random.Random(params["system_seed"])
    return random_pair_system(
        rng,
        sites=params["sites"],
        entities=params["entities"],
        shared=params["entities"],
        two_phase=params["two_phase"],
    )


@settings(max_examples=60, deadline=None)
@given(fault_params)
def test_faulty_runs_terminate_with_an_honest_outcome(params):
    system = build_system(params)
    plan = random_plan(
        system,
        params["plan_seed"],
        site_crashes=2,
        grant_delays=1,
        transaction_crashes=1,
        recoverable=True,
    )
    engine = SimulationEngine(
        system,
        fault_plan=plan,
        deadlock_policy="abort-youngest",
        max_retries=params["max_retries"],
        fault_seed=params["plan_seed"],
    )
    # Explicit step budget: the guard that makes "never hangs" a
    # checked property instead of a hope.
    budget = system.total_steps() * (2 + params["max_retries"]) + 10
    result = engine.run(RandomDriver(params["run_seed"]), max_steps=budget)

    if result.completed:
        # A completed faulty run is still a full legal schedule...
        schedule = result.history.as_schedule()
        assert len(schedule) == system.total_steps()
        # ...and cannot mis-serialize a statically safe system.
        if decide_safety(system, want_certificate=False).safe:
            assert result.serializable
    else:
        # Incomplete runs must say exactly why.
        assert result.outcome in {"retry-exhausted", "crashed", "stalled"}
        if result.outcome == "retry-exhausted":
            assert result.retry_exhausted
        # With a recoverable plan and resolution enabled, a deadlock is
        # never the terminal outcome — it gets resolved.
        assert result.outcome != "deadlock"


@settings(max_examples=25, deadline=None)
@given(fault_params)
def test_faultless_engine_unchanged_by_fault_kwargs(params):
    """The fault layer is pay-for-what-you-use: an empty plan and no
    policy reproduce the plain engine's run exactly."""
    system = build_system(params)
    driver_seed = params["run_seed"]
    plain = SimulationEngine(system).run(RandomDriver(driver_seed))
    gated = SimulationEngine(
        system, fault_plan=FaultPlan(), deadlock_policy=None
    ).run(RandomDriver(driver_seed))
    assert plain.outcome == gated.outcome
    assert [
        (event.transaction, event.step) for event in plain.history.events
    ] == [(event.transaction, event.step) for event in gated.history.events]
