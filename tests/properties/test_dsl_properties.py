"""Property-based round-trip tests of the text DSL."""

import random

from hypothesis import given, settings, strategies as st

from repro.core import decide_safety
from repro.dsl import parse_system, render_system
from repro.workloads import random_pair_system, random_system

pair_params = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 10**9),
        "sites": st.integers(1, 4),
        "entities": st.integers(2, 5),
        "cross_arcs": st.integers(0, 4),
    }
)


@settings(max_examples=50, deadline=None)
@given(pair_params)
def test_render_parse_roundtrip_preserves_structure(params):
    rng = random.Random(params["seed"])
    system = random_pair_system(
        rng,
        sites=params["sites"],
        entities=params["entities"],
        shared=params["entities"],
        cross_arcs=params["cross_arcs"],
    )
    reparsed = parse_system(render_system(system))
    assert reparsed.names == system.names
    for tx in system.transactions:
        other = reparsed[tx.name]
        assert set(map(str, other.steps)) == set(map(str, tx.steps))
        for a in tx.steps:
            for b in tx.steps:
                assert tx.precedes(a, b) == other.precedes(a, b), (
                    f"{tx.name}: {a} < {b} disagrees after round-trip"
                )


@settings(max_examples=25, deadline=None)
@given(pair_params)
def test_roundtrip_preserves_safety_verdict(params):
    rng = random.Random(params["seed"])
    system = random_pair_system(
        rng,
        sites=min(params["sites"], 2),
        entities=min(params["entities"], 4),
        shared=min(params["entities"], 3),
        cross_arcs=params["cross_arcs"],
    )
    reparsed = parse_system(render_system(system))
    assert (
        decide_safety(reparsed, want_certificate=False).safe
        == decide_safety(system, want_certificate=False).safe
    )


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10**9), st.integers(3, 5))
def test_multi_transaction_roundtrip(seed, k):
    rng = random.Random(seed)
    system = random_system(
        rng, transactions=k, sites=2, entities=4, entities_per_transaction=2
    )
    reparsed = parse_system(render_system(system))
    assert reparsed.names == system.names
    assert reparsed.total_steps() == system.total_steps()
