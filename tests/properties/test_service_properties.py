"""Property-based tests for the admission service.

For random two-site workloads, sequential admission through the
registry must agree with the offline :func:`repro.core.decide_safety`
at every step — and stay bit-identical when the verdicts come from a
warmed cache or a parallel vetting pool instead of fresh decisions.
Rejected admissions must carry replayable evidence.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core import TransactionSystem, decide_safety
from repro.service import AdmissionRegistry, PairVettingPool, VerdictCache
from repro.sim import ReplayDriver, run_once
from repro.workloads import random_system

workload_params = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 10**9),
        "transactions": st.integers(3, 5),
        "entities": st.integers(2, 4),
        "per_tx": st.integers(2, 3),
        "cross_arcs": st.integers(0, 2),
    }
)


def build(params) -> TransactionSystem:
    rng = random.Random(params["seed"])
    return random_system(
        rng,
        transactions=params["transactions"],
        sites=2,
        entities=params["entities"],
        entities_per_transaction=min(params["per_tx"], params["entities"]),
        cross_arcs=params["cross_arcs"],
    )


def admit_fleet(system, **registry_kwargs):
    registry = AdmissionRegistry(**registry_kwargs)
    try:
        return registry.admit_system(system, want_certificate=True)
    finally:
        registry.pool.close()


@settings(max_examples=25, deadline=None)
@given(workload_params)
def test_admission_matches_offline_decider_stepwise(params):
    system = build(params)
    registry = AdmissionRegistry()
    accepted = []
    for transaction in system.transactions:
        decision = registry.admit(transaction, want_certificate=False)
        offline = decide_safety(
            TransactionSystem(
                accepted + [transaction], database=system.database
            ),
            want_certificate=False,
        )
        assert decision.admitted == offline.safe
        if decision.admitted:
            accepted.append(transaction)
    assert registry.names == [t.name for t in accepted]


@settings(max_examples=15, deadline=None)
@given(workload_params)
def test_cached_and_parallel_paths_agree(params):
    system = build(params)
    cache = VerdictCache()
    cold = admit_fleet(system, cache=cache)
    warm = admit_fleet(system, cache=cache)
    parallel = admit_fleet(system, pool=PairVettingPool(workers=2))

    cold_bits = [decision.admitted for decision in cold]
    assert [decision.admitted for decision in warm] == cold_bits
    assert [decision.admitted for decision in parallel] == cold_bits
    # The warm pass decided everything from the cache.
    assert sum(decision.pairs_vetted for decision in warm) == 0


@settings(max_examples=15, deadline=None)
@given(workload_params)
def test_pair_rejections_carry_replayable_witnesses(params):
    system = build(params)
    for decision in admit_fleet(system):
        if decision.admitted or decision.failing_pair is None:
            continue
        verdict = decision.verdict
        assert not verdict.safe
        if verdict.witness is None:
            continue  # some methods certify unsafety without a schedule
        first, second = decision.failing_pair
        names = {t.name: t for t in system.transactions}
        pair_system = TransactionSystem(
            [names[first], names[second]], database=system.database
        )
        result = run_once(pair_system, ReplayDriver(verdict.witness))
        assert result.outcome == "non-serializable"
