"""Property-based tests of the paper's theorems.

Strategies draw generator parameters plus a seed and build workloads
through the deterministic generators of :mod:`repro.workloads`, so
every example is a valid model instance by construction and failures
shrink over the parameter space.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core import (
    d_graph,
    decide_safety,
    decide_safety_exact,
    decide_safety_exhaustive,
    is_safe_two_site,
)
from repro.graphs import is_strongly_connected
from repro.workloads import random_pair_system

pair_params = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 10**9),
        "sites": st.integers(1, 4),
        "entities": st.integers(2, 4),
        "shared": st.integers(2, 4),
        "cross_arcs": st.integers(0, 3),
    }
)


def build_pair(params):
    rng = random.Random(params["seed"])
    return random_pair_system(
        rng,
        sites=params["sites"],
        entities=params["entities"],
        shared=min(params["shared"], params["entities"]),
        cross_arcs=params["cross_arcs"],
    )


@settings(max_examples=60, deadline=None)
@given(pair_params)
def test_exact_decider_agrees_with_definition(params):
    """decide_safety_exact ≡ exhaustive schedule search, any sites."""
    system = build_pair(params)
    first, second = system.pair()
    assert (
        decide_safety_exact(first, second).safe
        == decide_safety_exhaustive(system).safe
    )


@settings(max_examples=60, deadline=None)
@given(pair_params)
def test_theorem_1_sufficiency(params):
    """Strong connectivity of D ⇒ safety (at any number of sites)."""
    system = build_pair(params)
    first, second = system.pair()
    if is_strongly_connected(d_graph(first, second)):
        assert decide_safety_exhaustive(system).safe


@settings(max_examples=60, deadline=None)
@given(pair_params)
def test_theorem_2_characterization_at_two_sites(params):
    """At ≤ 2 sites: safe ⟺ D strongly connected."""
    params = dict(params, sites=min(params["sites"], 2))
    system = build_pair(params)
    first, second = system.pair()
    assert is_safe_two_site(first, second) == (
        decide_safety_exhaustive(system).safe
    )


@settings(max_examples=40, deadline=None)
@given(pair_params)
def test_unsafe_two_site_certificates_always_verify(params):
    """Theorem 2's constructive direction: every unsafe two-site system
    yields an independently verifiable certificate."""
    params = dict(params, sites=min(params["sites"], 2))
    system = build_pair(params)
    verdict = decide_safety(system)
    if not verdict.safe:
        assert verdict.certificate is not None
        assert verdict.certificate.verify()
        assert not verdict.certificate.schedule.is_serializable()


@settings(max_examples=40, deadline=None)
@given(pair_params)
def test_witness_schedules_are_legal_and_nonserializable(params):
    system = build_pair(params)
    first, second = system.pair()
    verdict = decide_safety_exact(first, second)
    if not verdict.safe:
        # Schedule construction re-validates legality; check the claim.
        assert not verdict.witness.is_serializable()


@settings(max_examples=40, deadline=None)
@given(pair_params)
def test_serial_schedules_always_serializable(params):
    system = build_pair(params)
    names = system.names
    for order in (names, list(reversed(names))):
        schedule = system.serial_schedule(order)
        assert schedule.is_serializable()
        assert schedule.is_serial()


@settings(max_examples=40, deadline=None)
@given(pair_params)
def test_safety_is_symmetric_in_transaction_order(params):
    """{T1, T2} safe ⟺ {T2, T1} safe (D reverses, connectivity stays)."""
    system = build_pair(params)
    first, second = system.pair()
    assert (
        decide_safety_exact(first, second).safe
        == decide_safety_exact(second, first).safe
    )
