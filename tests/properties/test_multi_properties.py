"""Property-based tests for the many-transaction theory (§6)."""

import random

from hypothesis import given, settings, strategies as st

from repro.core import (
    TransactionSystem,
    decide_safety,
    decide_safety_exhaustive,
    decide_safety_multi,
    interaction_graph,
)
from repro.workloads import random_system

multi_params = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 10**9),
        "transactions": st.integers(3, 4),
        "sites": st.integers(1, 2),
        "entities": st.integers(2, 4),
        "per_tx": st.integers(2, 3),
    }
)


def build(params) -> TransactionSystem:
    rng = random.Random(params["seed"])
    return random_system(
        rng,
        transactions=params["transactions"],
        sites=params["sites"],
        entities=params["entities"],
        entities_per_transaction=min(params["per_tx"], params["entities"]),
    )


@settings(max_examples=30, deadline=None)
@given(multi_params)
def test_proposition_2_matches_definition(params):
    system = build(params)
    assert (
        decide_safety_multi(system).safe
        == decide_safety_exhaustive(system, state_budget=4_000_000).safe
    )


@settings(max_examples=30, deadline=None)
@given(multi_params)
def test_subsystem_monotonicity(params):
    """Safety is monotone under removing transactions: an unsafe
    subsystem makes the whole system unsafe (any schedule of the
    subsystem extends to one of the system by appending the rest)."""
    system = build(params)
    if decide_safety(system, want_certificate=False).safe:
        transactions = system.transactions
        for drop in range(len(transactions)):
            rest = [tx for i, tx in enumerate(transactions) if i != drop]
            sub = TransactionSystem(rest)
            assert decide_safety(sub, want_certificate=False).safe


@settings(max_examples=30, deadline=None)
@given(multi_params)
def test_interaction_graph_is_symmetric(params):
    system = build(params)
    graph = interaction_graph(system)
    for tail, head in graph.arcs():
        assert graph.has_arc(head, tail)


@settings(max_examples=20, deadline=None)
@given(multi_params)
def test_all_two_phase_systems_safe(params):
    rng = random.Random(params["seed"])
    system = random_system(
        rng,
        transactions=params["transactions"],
        sites=params["sites"],
        entities=params["entities"],
        entities_per_transaction=min(params["per_tx"], params["entities"]),
        two_phase=True,
    )
    assert decide_safety_multi(system).safe
