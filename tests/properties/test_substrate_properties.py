"""Property-based tests of the graph/poset substrates."""

import random

from hypothesis import given, settings, strategies as st

from repro.graphs import (
    DiGraph,
    dominators,
    is_acyclic,
    is_dominator,
    is_strongly_connected,
    strongly_connected_components,
    topological_sort,
    transitive_closure,
    transitive_reduction,
)
from repro.posets import Poset, count_linear_extensions, linear_extensions


@st.composite
def digraphs(draw, max_nodes=8):
    n = draw(st.integers(1, max_nodes))
    arcs = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=n * 3,
        )
    )
    return DiGraph(range(n), [(a, b) for a, b in arcs if a != b])


@st.composite
def dags(draw, max_nodes=8):
    n = draw(st.integers(1, max_nodes))
    arcs = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=n * 3,
        )
    )
    return DiGraph(range(n), [(a, b) for a, b in arcs if a < b])


@settings(max_examples=80, deadline=None)
@given(digraphs())
def test_scc_partition(graph):
    components = strongly_connected_components(graph)
    flat = [node for members in components for node in members]
    assert sorted(flat) == sorted(graph.nodes())
    # Mutual reachability inside components.
    for members in components:
        for a in members:
            for b in members:
                assert graph.has_path(a, b)


@settings(max_examples=80, deadline=None)
@given(digraphs())
def test_dominators_definition(graph):
    """Everything enumerate() yields satisfies Definition 2, and a graph
    has a dominator iff it is not strongly connected (the paper's
    observation)."""
    found = list(dominators(graph))
    for dominator in found:
        assert is_dominator(graph, dominator)
    assert bool(found) == (not is_strongly_connected(graph))


@settings(max_examples=80, deadline=None)
@given(dags())
def test_topological_sort_on_dags(graph):
    order = topological_sort(graph)
    position = {node: index for index, node in enumerate(order)}
    assert all(position[a] < position[b] for a, b in graph.arcs())


@settings(max_examples=60, deadline=None)
@given(dags())
def test_closure_and_reduction_same_reachability(graph):
    closed = transitive_closure(graph)
    reduced = transitive_reduction(graph)
    closed_again = transitive_closure(reduced)
    assert set(closed.arcs()) == set(closed_again.arcs())
    assert is_acyclic(reduced)
    assert set(reduced.arcs()) <= set(graph.arcs())


@settings(max_examples=50, deadline=None)
@given(dags(max_nodes=6))
def test_linear_extension_enumeration(graph):
    poset = Poset(graph.nodes(), graph.arcs())
    extensions = list(linear_extensions(poset))
    assert len(extensions) == count_linear_extensions(poset)
    assert len({tuple(e) for e in extensions}) == len(extensions)
    for extension in extensions:
        assert poset.is_linear_extension(extension)


@settings(max_examples=50, deadline=None)
@given(dags(max_nodes=8), st.integers(0, 10**9))
def test_restrict_preserves_order(graph, seed):
    poset = Poset(graph.nodes(), graph.arcs())
    rng = random.Random(seed)
    keep = [item for item in poset.items() if rng.random() < 0.6]
    sub = poset.restrict(keep)
    for a in sub.items():
        for b in sub.items():
            assert sub.precedes(a, b) == poset.precedes(a, b)
