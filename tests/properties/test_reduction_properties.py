"""Property-based tests of Theorem 3's reduction and the SAT substrate."""

import random
from itertools import product

from hypothesis import given, settings, strategies as st

from repro.core.reduction import (
    decide_satisfiability_via_safety,
    reduce_cnf_to_pair,
)
from repro.graphs import dominators
from repro.logic import CnfFormula, Literal, is_satisfiable, to_restricted_form
from repro.workloads import random_restricted_cnf

tiny_formula_params = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 10**9),
        "variables": st.integers(2, 4),
        "clauses": st.integers(1, 3),
    }
)


def brute_force_sat(formula: CnfFormula) -> bool:
    variables = formula.variables()
    return any(
        formula.satisfied_by(dict(zip(variables, values)))
        for values in product([False, True], repeat=len(variables))
    )


@settings(max_examples=25, deadline=None)
@given(tiny_formula_params)
def test_sat_iff_unsafe(params):
    """Theorem 3: F satisfiable ⟺ {T1(F), T2(F)} unsafe."""
    rng = random.Random(params["seed"])
    formula = random_restricted_cnf(
        rng,
        variables=params["variables"],
        clauses=min(params["clauses"], params["variables"]),
    )
    assert decide_satisfiability_via_safety(formula) == brute_force_sat(
        formula
    )


@settings(max_examples=25, deadline=None)
@given(tiny_formula_params)
def test_reduction_dominators_encode_assignments(params):
    """Every dominator of the reduced D is upper cycle + middle units,
    and desirable ⟺ encodes a clause-satisfying consistent assignment."""
    rng = random.Random(params["seed"])
    formula = random_restricted_cnf(
        rng,
        variables=params["variables"],
        clauses=min(params["clauses"], params["variables"]),
    )
    artifacts = reduce_cnf_to_pair(formula)
    upper = set(artifacts.upper_cycle)
    for dominator in dominators(artifacts.d_expected):
        assert upper <= set(dominator)
        assert set(dominator) - upper <= set(artifacts.middle_nodes)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(0, 10**9),
    st.integers(1, 4),
    st.integers(1, 5),
)
def test_restricted_form_transform(seed, variables, clauses):
    """to_restricted_form always yields restricted formulas with the
    same satisfiability."""
    rng = random.Random(seed)
    names = [f"v{i}" for i in range(variables)]
    formula = CnfFormula(
        [
            [
                Literal(rng.choice(names), rng.random() < 0.5)
                for _ in range(rng.randint(1, 4))
            ]
            for _ in range(clauses)
        ]
    )
    restricted = to_restricted_form(formula)
    assert restricted.is_restricted_form()
    assert is_satisfiable(restricted) == brute_force_sat(formula)


@settings(max_examples=30, deadline=None)
@given(tiny_formula_params)
def test_reduction_size_is_linear(params):
    """|T1(F)| = |T2(F)| = 3 * |entities| and entities grow linearly in
    the formula size — the polynomial-time half of Theorem 3."""
    rng = random.Random(params["seed"])
    formula = random_restricted_cnf(
        rng,
        variables=params["variables"],
        clauses=min(params["clauses"], params["variables"]),
    )
    artifacts = reduce_cnf_to_pair(formula)
    literal_count = sum(len(clause) for clause in formula.clauses)
    variable_count = len(formula.variables())
    entities = len(artifacts.database)
    # upper: 2*(1 + L); middle: <= 3 per variable; lower: 2*(1 + 2K).
    assert entities <= 2 * (1 + literal_count) + 3 * variable_count + 2 * (
        1 + 2 * variable_count
    )
    assert len(artifacts.first) == 3 * entities
    assert len(artifacts.second) == 3 * entities
