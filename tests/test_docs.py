"""Documentation hygiene: the generated API reference stays in sync,
every public item has a docstring, and the docs index exists."""

import importlib
import inspect
import pathlib

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent

PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.graphs",
    "repro.posets",
    "repro.logic",
    "repro.sim",
    "repro.faults",
    "repro.policies",
    "repro.workloads",
    "repro.service",
    "repro.cluster",
    "repro.arena",
    "repro.replica",
    "repro.obs",
    "repro.viz",
    "repro.dsl",
    "repro.cli",
]


class TestApiReference:
    def test_generated_api_docs_in_sync(self):
        import sys

        sys.path.insert(0, str(ROOT / "tools"))
        try:
            import gen_api_docs
        finally:
            sys.path.pop(0)
        expected = gen_api_docs.generate()
        actual = (ROOT / "docs" / "api.md").read_text(encoding="utf-8")
        assert actual == expected, (
            "docs/api.md is stale; run `python tools/gen_api_docs.py`"
        )


class TestDocstrings:
    @pytest.mark.parametrize("name", PUBLIC_MODULES)
    def test_module_has_docstring(self, name):
        module = importlib.import_module(name)
        assert module.__doc__ and module.__doc__.strip()

    @pytest.mark.parametrize("name", PUBLIC_MODULES)
    def test_every_public_item_documented(self, name):
        module = importlib.import_module(name)
        exported = getattr(module, "__all__", [])
        undocumented = []
        for attr in exported:
            if attr.startswith("__"):
                continue
            obj = getattr(module, attr)
            if inspect.ismodule(obj):
                continue
            if callable(obj) and not (inspect.getdoc(obj) or "").strip():
                undocumented.append(attr)
        assert not undocumented, f"{name}: missing docstrings: {undocumented}"


class TestDocFiles:
    @pytest.mark.parametrize(
        "filename",
        ["README.md", "DESIGN.md", "EXPERIMENTS.md"],
    )
    def test_top_level_docs_exist_and_mention_the_paper(self, filename):
        text = (ROOT / filename).read_text(encoding="utf-8")
        assert "Kanellakis" in text or "Distributed Locking" in text

    @pytest.mark.parametrize(
        "filename",
        [
            "model.md", "algorithms.md", "reduction.md", "dsl.md",
            "service.md", "faults.md", "api.md", "workloads.md",
        ],
    )
    def test_docs_directory_complete(self, filename):
        path = ROOT / "docs" / filename
        assert path.exists() and path.stat().st_size > 500
