"""Execution histories: serializability, grouping, schedule round-trip."""

import pytest

from repro.core import Step, StepKind
from repro.errors import ScheduleError
from repro.sim import Event, ExecutionHistory, RandomDriver, run_once


@pytest.fixture
def completed_history(simple_safe_pair):
    return run_once(simple_safe_pair, RandomDriver(11)).history


class TestHistory:
    def test_completeness(self, simple_safe_pair, completed_history):
        assert completed_history.is_complete()
        partial = ExecutionHistory(simple_safe_pair)
        assert not partial.is_complete()

    def test_steps_projection(self, completed_history):
        steps = completed_history.steps()
        assert len(steps) == len(completed_history)
        assert all(isinstance(step, Step) for _, step in steps)

    def test_as_schedule_roundtrip(self, completed_history):
        schedule = completed_history.as_schedule()
        assert len(schedule) == len(completed_history)

    def test_as_schedule_rejects_partial(self, simple_safe_pair):
        partial = ExecutionHistory(simple_safe_pair)
        partial.append(
            Event(0, 1, "T1", Step(StepKind.LOCK, "x"))
        )
        with pytest.raises(ScheduleError):
            partial.as_schedule()

    def test_per_site_grouping(self, completed_history):
        grouped = completed_history.per_site()
        total = sum(len(events) for events in grouped.values())
        assert total == len(completed_history)
        for site, events in grouped.items():
            assert all(event.site == site for event in events)

    def test_serial_order_witness(self, simple_safe_pair):
        from repro.sim import ReplayDriver

        serial = simple_safe_pair.serial_schedule(["T1", "T2"])
        history = run_once(simple_safe_pair, ReplayDriver(serial)).history
        assert history.equivalent_serial_order() == ["T1", "T2"]

    def test_describe(self, completed_history):
        text = completed_history.describe()
        assert "events" in text
        assert "s1" in text or "s2" in text
