"""Wait-for graphs and deadlock detection."""

from repro.sim import SiteLockManager, find_deadlock, wait_for_graph


def make_managers():
    return {1: SiteLockManager(1), 2: SiteLockManager(2)}


class TestWaitForGraph:
    def test_no_blocks_no_arcs(self):
        managers = make_managers()
        graph = wait_for_graph(managers.values(), [])
        assert graph.arc_count() == 0

    def test_waiting_arc(self):
        managers = make_managers()
        managers[1].try_lock("x", "T1")
        graph = wait_for_graph(managers.values(), [("T2", "x")])
        assert graph.has_arc("T2", "T1")

    def test_cross_site_cycle(self):
        managers = make_managers()
        managers[1].try_lock("x", "T1")
        managers[2].try_lock("z", "T2")
        blocked = [("T1", "z"), ("T2", "x")]
        graph = wait_for_graph(managers.values(), blocked)
        assert graph.has_arc("T1", "T2") and graph.has_arc("T2", "T1")


class TestFindDeadlock:
    def test_none_without_cycle(self):
        managers = make_managers()
        managers[1].try_lock("x", "T1")
        assert find_deadlock(managers.values(), [("T2", "x")]) is None

    def test_cycle_detected(self):
        managers = make_managers()
        managers[1].try_lock("x", "T1")
        managers[2].try_lock("z", "T2")
        deadlock = find_deadlock(
            managers.values(), [("T1", "z"), ("T2", "x")]
        )
        assert deadlock is not None
        assert sorted(deadlock) == ["T1", "T2"]

    def test_three_party_cycle(self):
        managers = make_managers()
        managers[1].try_lock("a", "T1")
        managers[1].try_lock("b", "T2")
        managers[2].try_lock("c", "T3")
        deadlock = find_deadlock(
            managers.values(),
            [("T1", "b"), ("T2", "c"), ("T3", "a")],
        )
        assert deadlock is not None and len(deadlock) == 3

    def test_self_wait_is_not_deadlock(self):
        managers = make_managers()
        managers[1].try_lock("x", "T1")
        # A request by the holder itself never creates a wait arc.
        assert find_deadlock(managers.values(), [("T1", "x")]) is None
