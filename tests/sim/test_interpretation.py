"""Concrete (affine) interpretations: non-serializability as observable
data corruption."""

import random

import pytest

from repro.core import decide_safety
from repro.core.schedule import all_legal_schedules
from repro.sim.interpretation import AffineInterpretation
from repro.workloads import figure_1, random_pair_system


class TestExecution:
    def test_deterministic_given_seed(self, simple_unsafe_pair):
        serial = simple_unsafe_pair.serial_schedule(["T1", "T2"])
        a = AffineInterpretation(simple_unsafe_pair, seed=7)
        b = AffineInterpretation(simple_unsafe_pair, seed=7)
        assert a.run_schedule(serial) == b.run_schedule(serial)

    def test_initial_state_respected(self, simple_unsafe_pair):
        serial = simple_unsafe_pair.serial_schedule(["T1", "T2"])
        interp = AffineInterpretation(simple_unsafe_pair, seed=1)
        base = interp.run_schedule(serial)
        shifted = interp.run(
            ((i.transaction, i.step) for i in serial.steps),
            initial={"x": 123},
        )
        assert base != shifted

    def test_serial_orders_produce_distinct_states(self, simple_unsafe_pair):
        interp = AffineInterpretation(simple_unsafe_pair, seed=2)
        states = interp.serial_states()
        assert len({tuple(sorted(s.items())) for s in states.values()}) == 2

    def test_untouched_entities_stay_zero(self, simple_unsafe_pair):
        interp = AffineInterpretation(simple_unsafe_pair, seed=3)
        serial = simple_unsafe_pair.serial_schedule(["T1", "T2"])
        state = interp.run_schedule(serial)
        assert state["y"] == 0 and state["w"] == 0  # never updated


class TestViolationDetection:
    def test_witness_schedule_detected(self):
        system = figure_1()
        witness = decide_safety(system).witness
        interp = AffineInterpretation(system, seed=11)
        assert interp.detects_violation(witness)
        assert interp.matching_serial_order(witness) is None

    def test_serial_schedule_matches_itself(self, simple_unsafe_pair):
        interp = AffineInterpretation(simple_unsafe_pair, seed=5)
        serial = simple_unsafe_pair.serial_schedule(["T2", "T1"])
        assert interp.matching_serial_order(serial) == ("T2", "T1")

    @pytest.mark.parametrize("seed", range(10))
    def test_detection_matches_conflict_test(self, seed):
        """Over every legal schedule of small systems: the concrete
        detector fires exactly on the non-serializable ones (odd affine
        maps cannot collide into a false negative, and serializable
        schedules always match their witnessing serial order)."""
        rng = random.Random(seed)
        system = random_pair_system(
            rng, sites=rng.choice([1, 2]), entities=rng.randint(2, 3),
            shared=2, cross_arcs=rng.randint(0, 2),
        )
        interp = AffineInterpretation(system, seed=seed)
        for schedule in all_legal_schedules(system, limit=30):
            assert interp.detects_violation(schedule) == (
                not schedule.is_serializable()
            )
