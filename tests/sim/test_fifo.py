"""FIFO-fair lock grants: fairness restricts interleavings but never
compromises (or masks) safety."""

import random

import pytest

from repro.core import decide_safety
from repro.sim import RandomDriver, SimulationEngine, estimate_violation_rate, run_once
from repro.workloads import figure_1, figure_5, random_pair_system


class TestFifoSemantics:
    def test_first_blocked_requester_wins(self, two_site_db):
        """Engineer: T1 holds x; T2 then T3 block on x; after T1's
        unlock, only T2's lock is executable under FIFO."""
        from repro.core import TransactionBuilder, TransactionSystem

        builders = []
        for name in ("T1", "T2", "T3"):
            builder = TransactionBuilder(name, two_site_db)
            builder.access("x")
            builders.append(builder.build())
        system = TransactionSystem(builders)
        engine = SimulationEngine(system, fifo_grants=True)
        t1, t2, t3 = system.names
        steps = {name: system[name].a_linear_extension() for name in system.names}
        engine._execute(t1, steps[t1][0])  # T1 locks x
        # Both T2 and T3 become blocked; arrival order T2 then T3 is
        # established by the candidate scan (insertion order).
        candidates, blocked = engine._executable()
        assert ("T2", "x") in blocked and ("T3", "x") in blocked
        engine._execute(t1, steps[t1][1])  # update
        engine._execute(t1, steps[t1][2])  # unlock
        candidates, _ = engine._executable()
        lock_candidates = [
            name for name, step in candidates if step.is_lock
        ]
        assert lock_candidates == ["T2"]  # T3 must wait its turn

    def test_without_fifo_any_waiter_may_win(self, two_site_db):
        from repro.core import TransactionBuilder, TransactionSystem

        builders = []
        for name in ("T1", "T2", "T3"):
            builder = TransactionBuilder(name, two_site_db)
            builder.access("x")
            builders.append(builder.build())
        system = TransactionSystem(builders)
        engine = SimulationEngine(system)  # fifo off
        t1 = system.names[0]
        steps = system[t1].a_linear_extension()
        for step in steps:
            engine._execute(t1, step)
        candidates, _ = engine._executable()
        lock_candidates = {name for name, step in candidates if step.is_lock}
        assert lock_candidates == {"T2", "T3"}


class TestFifoPreservesCorrectness:
    @pytest.mark.parametrize("seed", range(10))
    def test_completed_fifo_runs_are_legal(self, seed):
        rng = random.Random(seed)
        system = random_pair_system(
            rng, sites=2, entities=rng.randint(2, 4), shared=2
        )
        result = run_once(system, RandomDriver(seed), fifo_grants=True)
        if result.completed:
            result.history.as_schedule()

    def test_safe_system_stays_clean_under_fifo(self):
        rates = estimate_violation_rate(
            figure_5(), runs=200, seed=3, fifo_grants=True
        )
        assert rates["non-serializable"] == 0.0

    def test_unsafe_system_still_violates_under_fifo(self):
        rates = estimate_violation_rate(
            figure_1(), runs=200, seed=4, fifo_grants=True
        )
        assert rates["non-serializable"] > 0.0

    @pytest.mark.parametrize("seed", range(10))
    def test_fifo_violations_imply_static_unsafety(self, seed):
        rng = random.Random(100 + seed)
        system = random_pair_system(
            rng, sites=2, entities=rng.randint(2, 4), shared=2
        )
        rates = estimate_violation_rate(
            system, runs=40, seed=seed, fifo_grants=True
        )
        if rates["non-serializable"] > 0:
            assert not decide_safety(system, want_certificate=False).safe
