"""Exhaustive distributed deadlock analysis (the paper's open problem,
brute-forced)."""

import random

import pytest

from repro.core import GeometricPicture
from repro.errors import ScheduleError
from repro.sim import (
    RandomDriver,
    deadlock_possible_exhaustive,
    run_once,
)
from repro.workloads import (
    figure_1,
    figure_5,
    random_pair_system,
    random_total_order_pair,
)


class TestKnownSystems:
    def test_figure_1_is_deadlock_free(self):
        report = deadlock_possible_exhaustive(figure_1())
        assert not report.possible
        assert report.states_explored > 0
        assert "deadlock-free" in report.describe()

    def test_figure_5_can_deadlock(self):
        report = deadlock_possible_exhaustive(figure_5())
        assert report.possible
        assert report.prefix and report.blocked
        assert "stuck" in report.describe()

    def test_crossing_two_phase_deadlock(self, two_site_db):
        from repro.core import TransactionBuilder, TransactionSystem

        builders = []
        for name, order in (("T1", ("x", "z")), ("T2", ("z", "x"))):
            builder = TransactionBuilder(name, two_site_db)
            first_lock = builder.lock(order[0])
            builder.update(order[0])
            second_lock = builder.lock(order[1])
            builder.update(order[1])
            u1 = builder.unlock(order[0])
            builder.unlock(order[1])
            builder.precede(first_lock, second_lock)
            builder.precede(second_lock, u1)
            builders.append(builder.build())
        system = TransactionSystem(builders)
        assert deadlock_possible_exhaustive(system).possible

    def test_ordered_acquisition_deadlock_free(self, simple_safe_pair):
        assert not deadlock_possible_exhaustive(simple_safe_pair).possible


class TestReportedPrefixIsReal:
    @pytest.mark.parametrize("seed", range(20))
    def test_prefix_drives_engine_into_deadlock(self, seed):
        rng = random.Random(seed)
        system = random_pair_system(
            rng, sites=rng.randint(1, 3), entities=rng.randint(2, 4),
            shared=rng.randint(2, 3), cross_arcs=rng.randint(0, 3),
        )
        report = deadlock_possible_exhaustive(system)
        if not report.possible:
            return
        from repro.sim import SimulationEngine

        engine = SimulationEngine(system)
        for item in report.prefix:
            engine._execute(item.transaction, item.step)
        candidates, blocked = engine._executable()
        assert candidates == []
        assert sorted(blocked) == report.blocked


class TestAgainstOtherAnalyses:
    @pytest.mark.parametrize("seed", range(25))
    def test_matches_geometric_analysis_on_total_orders(self, seed):
        """On centralized totally ordered pairs the exhaustive state
        search and the O(grid) geometric analysis must agree exactly."""
        rng = random.Random(700 + seed)
        system, t1, t2 = random_total_order_pair(rng, entities=rng.randint(2, 4))
        geometric = GeometricPicture(t1, t2).deadlock_possible()
        exhaustive = deadlock_possible_exhaustive(system).possible
        assert geometric == exhaustive

    @pytest.mark.parametrize("seed", range(15))
    def test_deadlock_free_systems_never_stall_in_simulation(self, seed):
        rng = random.Random(900 + seed)
        system = random_pair_system(
            rng, sites=2, entities=rng.randint(2, 3), shared=2
        )
        if deadlock_possible_exhaustive(system).possible:
            return
        for run_seed in range(10):
            assert run_once(system, RandomDriver(run_seed)).completed


class TestBudget:
    def test_budget_guard(self, simple_safe_pair):
        with pytest.raises(ScheduleError):
            deadlock_possible_exhaustive(simple_safe_pair, state_budget=2)
