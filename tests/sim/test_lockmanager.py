"""Per-site lock tables."""

import pytest

from repro.errors import ScheduleError
from repro.sim import SiteLockManager


@pytest.fixture
def manager():
    return SiteLockManager(site=1)


class TestLocking:
    def test_grant_free_lock(self, manager):
        assert manager.try_lock("x", "T1")
        assert manager.holder("x") == "T1"

    def test_deny_held_lock_and_queue(self, manager):
        manager.try_lock("x", "T1")
        assert not manager.try_lock("x", "T2")
        assert manager.waiters("x") == ["T2"]

    def test_no_duplicate_wait_entries(self, manager):
        manager.try_lock("x", "T1")
        manager.try_lock("x", "T2")
        manager.try_lock("x", "T2")
        assert manager.waiters("x") == ["T2"]

    def test_relock_by_holder_rejected(self, manager):
        manager.try_lock("x", "T1")
        with pytest.raises(ScheduleError):
            manager.try_lock("x", "T1")

    def test_grant_after_unlock(self, manager):
        manager.try_lock("x", "T1")
        manager.try_lock("x", "T2")
        manager.unlock("x", "T1")
        assert manager.try_lock("x", "T2")
        assert manager.waiters("x") == []

    def test_releaser_cannot_starve_queued_waiters(self, manager):
        """Regression: T1 unlocks x and immediately re-requests it while
        T2 (and T3) are queued — the grant must go to the
        longest-waiting requester, with T1 queued at the back."""
        manager.try_lock("x", "T1")
        manager.try_lock("x", "T2")
        manager.try_lock("x", "T3")
        manager.unlock("x", "T1")
        assert not manager.try_lock("x", "T1")  # free, but T2 waited longer
        assert manager.waiters("x") == ["T2", "T3", "T1"]
        assert manager.next_waiter("x") == "T2"
        assert not manager.try_lock("x", "T3")  # still not T3's turn
        assert manager.try_lock("x", "T2")
        assert manager.holder("x") == "T2"
        manager.unlock("x", "T2")
        assert not manager.try_lock("x", "T1")  # T3 is next in line
        assert manager.try_lock("x", "T3")
        manager.unlock("x", "T3")
        assert manager.try_lock("x", "T1")  # finally T1's turn
        assert manager.waiters("x") == []


class TestUnlocking:
    def test_unlock_requires_holder(self, manager):
        manager.try_lock("x", "T1")
        with pytest.raises(ScheduleError):
            manager.unlock("x", "T2")

    def test_unlock_unheld_rejected(self, manager):
        with pytest.raises(ScheduleError):
            manager.unlock("x", "T1")


class TestBookkeeping:
    def test_held_by_and_snapshot(self, manager):
        manager.try_lock("x", "T1")
        manager.try_lock("y", "T1")
        manager.try_lock("z", "T2")
        assert sorted(manager.held_by("T1")) == ["x", "y"]
        assert manager.held_entities() == {"x": "T1", "y": "T1", "z": "T2"}

    def test_release_all(self, manager):
        manager.try_lock("x", "T1")
        manager.try_lock("y", "T1")
        manager.try_lock("x", "T2")  # queues
        released = manager.release_all("T1")
        assert sorted(released) == ["x", "y"]
        assert manager.holder("x") is None

    def test_drop_waiter(self, manager):
        manager.try_lock("x", "T1")
        manager.try_lock("x", "T2")
        manager.drop_waiter("T2")
        assert manager.waiters("x") == []
