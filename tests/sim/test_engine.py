"""The distributed execution engine: completion, legality, deadlock,
replay, and agreement with the static safety analysis."""

import random

import pytest

from repro.core import decide_safety
from repro.errors import ScheduleError
from repro.sim import (
    RandomDriver,
    ReplayDriver,
    RoundRobinDriver,
    SimulationEngine,
    estimate_violation_rate,
    run_once,
)
from repro.workloads import figure_1, figure_5, random_pair_system


class TestBasicExecution:
    def test_completed_run_is_legal_schedule(self, simple_safe_pair):
        result = run_once(simple_safe_pair, RandomDriver(1))
        assert result.completed
        # as_schedule() inside the engine already validated legality;
        # do it again from the outside.
        schedule = result.history.as_schedule()
        assert len(schedule) == simple_safe_pair.total_steps()

    def test_safe_system_always_serializable(self, simple_safe_pair):
        for seed in range(30):
            result = run_once(simple_safe_pair, RandomDriver(seed))
            if result.completed:
                assert result.serializable

    def test_unsafe_system_sometimes_misserializes(self, simple_unsafe_pair):
        outcomes = {
            run_once(simple_unsafe_pair, RandomDriver(seed)).outcome
            for seed in range(40)
        }
        assert "non-serializable" in outcomes

    def test_history_events_have_sites_and_times(self, simple_safe_pair):
        result = run_once(simple_safe_pair, RandomDriver(3))
        times = [event.time for event in result.history.events]
        assert times == sorted(times) == list(range(len(times)))
        sites = {event.site for event in result.history.events}
        assert sites <= {1, 2}

    def test_engine_is_single_use_per_run(self, simple_safe_pair):
        engine = SimulationEngine(simple_safe_pair)
        engine.run(RandomDriver(0))
        # A second run on the same engine has nothing to execute.
        second = engine.run(RandomDriver(0))
        assert second.completed


class TestDrivers:
    def test_replay_certificate_misserializes(self, simple_unsafe_pair):
        verdict = decide_safety(simple_unsafe_pair)
        result = run_once(simple_unsafe_pair, ReplayDriver(verdict.witness))
        assert result.completed
        assert result.outcome == "non-serializable"
        # The engine executed exactly the witness schedule.
        executed = [
            (event.transaction, event.step)
            for event in result.history.events
        ]
        wanted = [
            (item.transaction, item.step) for item in verdict.witness.steps
        ]
        assert executed == wanted

    def test_replay_serial_schedule(self, simple_safe_pair):
        serial = simple_safe_pair.serial_schedule(["T2", "T1"])
        result = run_once(simple_safe_pair, ReplayDriver(serial))
        assert result.completed and result.serializable

    def test_round_robin_completes(self, simple_safe_pair):
        result = run_once(simple_safe_pair, RoundRobinDriver())
        assert result.completed

    def test_replay_rejects_foreign_schedule(
        self, simple_safe_pair, simple_unsafe_pair
    ):
        foreign = decide_safety(simple_unsafe_pair).witness
        with pytest.raises(ScheduleError):
            run_once(simple_safe_pair, ReplayDriver(foreign))


class TestDeadlock:
    def test_two_phase_crossing_deadlocks_sometimes(self, two_site_db):
        from repro.core import TransactionBuilder, TransactionSystem

        t1 = TransactionBuilder("T1", two_site_db)
        lx1 = t1.lock("x")
        t1.update("x")
        lz1 = t1.lock("z")
        t1.update("z")
        ux1 = t1.unlock("x")
        uz1 = t1.unlock("z")
        t1.precede(lx1, lz1)
        t1.precede(lz1, ux1)
        t2 = TransactionBuilder("T2", two_site_db)
        lz2 = t2.lock("z")
        t2.update("z")
        lx2 = t2.lock("x")
        t2.update("x")
        uz2 = t2.unlock("z")
        ux2 = t2.unlock("x")
        t2.precede(lz2, lx2)
        t2.precede(lx2, uz2)
        system = TransactionSystem([t1.build(), t2.build()])
        outcomes = {
            run_once(system, RandomDriver(seed)).outcome
            for seed in range(30)
        }
        assert "deadlock" in outcomes
        # Deadlocked runs name the cycle participants.
        for seed in range(30):
            result = run_once(system, RandomDriver(seed))
            if result.outcome == "deadlock":
                assert sorted(result.deadlocked) == ["T1", "T2"]
                break

    def test_deadlock_never_reported_on_serial_replay(self, simple_unsafe_pair):
        serial = simple_unsafe_pair.serial_schedule(["T1", "T2"])
        result = run_once(simple_unsafe_pair, ReplayDriver(serial))
        assert result.completed

    def test_crash_stall_is_not_misreported_as_deadlock(
        self, simple_safe_pair
    ):
        """Incomplete-because-a-site-died and incomplete-because-of-a-
        wait-cycle are different outcomes (PR 3 outcome split)."""
        from repro.faults import FaultPlan, SiteCrash

        plan = FaultPlan(site_crashes=(SiteCrash(site=1, at=0),))
        result = run_once(simple_safe_pair, RandomDriver(0), fault_plan=plan)
        assert not result.completed
        assert result.outcome == "crashed"
        assert not result.deadlocked


class TestMonteCarlo:
    def test_rates_sum_to_one(self):
        rates = estimate_violation_rate(figure_1(), runs=50, seed=5)
        assert abs(sum(rates.values()) - 1.0) < 1e-9

    def test_unsafe_system_has_violations(self):
        rates = estimate_violation_rate(figure_1(), runs=100, seed=6)
        assert rates["non-serializable"] > 0

    def test_safe_system_has_none(self):
        rates = estimate_violation_rate(figure_5(), runs=100, seed=7)
        assert rates["non-serializable"] == 0

    @pytest.mark.parametrize("seed", range(10))
    def test_simulator_agrees_with_static_analysis(self, seed):
        """A system the simulator mis-serializes must be statically
        unsafe (the converse needs luck, so it is not asserted)."""
        rng = random.Random(seed)
        system = random_pair_system(
            rng, sites=2, entities=rng.randint(2, 4),
            shared=rng.randint(2, 3), cross_arcs=rng.randint(0, 2),
        )
        rates = estimate_violation_rate(system, runs=60, seed=seed)
        if rates["non-serializable"] > 0:
            assert not decide_safety(system).safe
