"""Driver semantics: random reproducibility, round-robin fairness,
replay strictness."""

import random

import pytest

from repro.core import decide_safety
from repro.errors import ScheduleError
from repro.sim import RandomDriver, ReplayDriver, RoundRobinDriver, run_once
from repro.sim.drivers import Candidate


class TestRandomDriver:
    def test_seed_reproducibility(self, simple_safe_pair):
        a = run_once(simple_safe_pair, RandomDriver(42)).history.steps()
        b = run_once(simple_safe_pair, RandomDriver(42)).history.steps()
        assert a == b

    def test_accepts_random_instance(self, simple_safe_pair):
        driver = RandomDriver(random.Random(7))
        assert run_once(simple_safe_pair, driver).completed

    def test_different_seeds_reach_different_interleavings(
        self, simple_safe_pair
    ):
        histories = {
            tuple(map(str, run_once(simple_safe_pair, RandomDriver(s)).history.steps()))
            for s in range(20)
        }
        assert len(histories) > 1


class TestRoundRobinDriver:
    def test_alternates_between_transactions(self, simple_safe_pair):
        result = run_once(simple_safe_pair, RoundRobinDriver())
        assert result.completed
        names = [event.transaction for event in result.history.events]
        # Fair rotation: neither transaction runs all steps in one block.
        first_block = len(
            [1 for n in names[: len(names) // 2] if n == names[0]]
        )
        assert first_block < len(names) // 2

    def test_deterministic(self, simple_safe_pair):
        a = run_once(simple_safe_pair, RoundRobinDriver()).history.steps()
        b = run_once(simple_safe_pair, RoundRobinDriver()).history.steps()
        assert a == b


class TestReplayDriver:
    def test_exhausted_replay_raises(self, simple_safe_pair):
        serial = simple_safe_pair.serial_schedule(["T1", "T2"])
        driver = ReplayDriver(serial)
        run_once(simple_safe_pair, driver)
        dummy: list[Candidate] = [("T1", serial.steps[0].step)]
        with pytest.raises(ScheduleError, match="exhausted"):
            driver(dummy)

    def test_unavailable_step_raises_with_context(self, simple_unsafe_pair):
        witness = decide_safety(simple_unsafe_pair).witness
        driver = ReplayDriver(witness)
        # Offer a candidate list that cannot contain the wanted step.
        wrong: list[Candidate] = [("T2", witness.steps[5].step)]
        with pytest.raises(ScheduleError, match="not executable"):
            driver(wrong)
