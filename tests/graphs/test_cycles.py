"""Simple-cycle enumeration (Johnson), cross-validated with networkx."""

import random

import networkx as nx
import pytest

from repro.graphs import DiGraph, has_cycle, simple_cycles


def canon(cycle):
    """Rotation-invariant canonical form of a cycle."""
    best = min(range(len(cycle)), key=lambda i: str(cycle[i]))
    rotated = cycle[best:] + cycle[:best]
    return tuple(rotated)


class TestSimpleCycles:
    def test_acyclic_yields_nothing(self):
        graph = DiGraph("abc", [("a", "b"), ("b", "c")])
        assert list(simple_cycles(graph)) == []

    def test_self_loop(self):
        graph = DiGraph("a", [("a", "a")])
        assert list(simple_cycles(graph)) == [["a"]]

    def test_two_cycle(self):
        graph = DiGraph("ab", [("a", "b"), ("b", "a")])
        cycles = [canon(c) for c in simple_cycles(graph)]
        assert cycles == [("a", "b")]

    def test_two_triangles_sharing_a_node(self):
        graph = DiGraph(
            "abcde",
            [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d"), ("d", "e"), ("e", "c")],
        )
        cycles = {canon(c) for c in simple_cycles(graph)}
        assert cycles == {("a", "b", "c"), ("c", "d", "e")}

    def test_limit(self):
        graph = DiGraph("ab", [("a", "b"), ("b", "a"), ("a", "a"), ("b", "b")])
        assert len(list(simple_cycles(graph, limit=2))) == 2

    @pytest.mark.parametrize("seed", range(15))
    def test_matches_networkx(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 9)
        graph = DiGraph(range(n))
        for a in range(n):
            for b in range(n):
                if rng.random() < 0.25:
                    graph.add_arc(a, b)
        ours = {canon(c) for c in simple_cycles(graph)}
        nx_graph = nx.DiGraph()
        nx_graph.add_nodes_from(graph.nodes())
        nx_graph.add_edges_from(graph.arcs())
        theirs = {canon(c) for c in nx.simple_cycles(nx_graph)}
        assert ours == theirs


class TestHasCycle:
    def test_dag(self):
        assert not has_cycle(DiGraph("ab", [("a", "b")]))

    def test_self_loop(self):
        assert has_cycle(DiGraph("a", [("a", "a")]))

    def test_long_cycle(self):
        n = 50
        graph = DiGraph(range(n), [(i, (i + 1) % n) for i in range(n)])
        assert has_cycle(graph)
