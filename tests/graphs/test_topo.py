"""Topological sorting: plain, keyed, exhaustive, cycle reporting."""

import random

import pytest

from repro.graphs import (
    CycleError,
    DiGraph,
    all_topological_sorts,
    find_cycle,
    is_acyclic,
    topological_sort,
)


def is_topological(graph: DiGraph, order) -> bool:
    position = {node: index for index, node in enumerate(order)}
    return all(position[a] < position[b] for a, b in graph.arcs())


class TestIsAcyclic:
    def test_empty_and_singleton(self):
        assert is_acyclic(DiGraph())
        assert is_acyclic(DiGraph("a"))

    def test_dag(self):
        assert is_acyclic(DiGraph("abc", [("a", "b"), ("a", "c"), ("b", "c")]))

    def test_cycle(self):
        assert not is_acyclic(DiGraph("ab", [("a", "b"), ("b", "a")]))

    def test_self_loop(self):
        assert not is_acyclic(DiGraph("a", [("a", "a")]))


class TestFindCycle:
    def test_none_on_dag(self):
        assert find_cycle(DiGraph("abc", [("a", "b"), ("b", "c")])) is None

    def test_reports_closed_walk(self):
        graph = DiGraph("abcd", [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")])
        cycle = find_cycle(graph)
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        for tail, head in zip(cycle, cycle[1:]):
            assert graph.has_arc(tail, head)

    def test_self_loop_cycle(self):
        cycle = find_cycle(DiGraph("a", [("a", "a")]))
        assert cycle == ["a", "a"]


class TestTopologicalSort:
    def test_respects_arcs(self):
        graph = DiGraph("dcba", [("a", "b"), ("c", "b"), ("b", "d")])
        order = topological_sort(graph)
        assert is_topological(graph, order)
        assert sorted(order) == ["a", "b", "c", "d"]

    def test_raises_on_cycle_with_witness(self):
        graph = DiGraph("ab", [("a", "b"), ("b", "a")])
        with pytest.raises(CycleError) as excinfo:
            topological_sort(graph)
        assert excinfo.value.cycle  # the witness cycle is attached

    def test_deterministic_without_key(self):
        graph = DiGraph("zyx")
        assert topological_sort(graph) == ["z", "y", "x"]  # insertion order

    def test_key_prioritizes_available(self):
        # b and c both available after a; key pulls c first.
        graph = DiGraph("abc", [("a", "b"), ("a", "c")])
        order = topological_sort(graph, key=lambda n: 0 if n == "c" else 1)
        assert order == ["a", "c", "b"]

    def test_key_cannot_violate_precedence(self):
        graph = DiGraph("ab", [("a", "b")])
        order = topological_sort(graph, key=lambda n: 0 if n == "b" else 1)
        assert order == ["a", "b"]

    @pytest.mark.parametrize("seed", range(10))
    def test_random_dags(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 30)
        graph = DiGraph(range(n))
        for a in range(n):
            for b in range(a + 1, n):
                if rng.random() < 0.2:
                    graph.add_arc(a, b)
        order = topological_sort(graph)
        assert is_topological(graph, order)


class TestAllTopologicalSorts:
    def test_antichain_gives_factorial(self):
        graph = DiGraph("abc")
        assert len(list(all_topological_sorts(graph))) == 6

    def test_chain_gives_one(self):
        graph = DiGraph("abc", [("a", "b"), ("b", "c")])
        assert list(all_topological_sorts(graph)) == [["a", "b", "c"]]

    def test_all_are_valid_and_distinct(self):
        graph = DiGraph("abcd", [("a", "b"), ("c", "d")])
        sorts = list(all_topological_sorts(graph))
        assert len(sorts) == len({tuple(s) for s in sorts}) == 6
        assert all(is_topological(graph, order) for order in sorts)

    def test_limit(self):
        graph = DiGraph("abcde")
        assert len(list(all_topological_sorts(graph, limit=7))) == 7
