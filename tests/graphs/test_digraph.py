"""Unit tests for the DiGraph container."""

import pytest

from repro.graphs import DiGraph


class TestConstruction:
    def test_empty(self):
        graph = DiGraph()
        assert graph.node_count() == 0
        assert graph.arc_count() == 0
        assert graph.nodes() == []
        assert graph.arcs() == []

    def test_nodes_and_arcs_from_init(self):
        graph = DiGraph("abc", [("a", "b"), ("b", "c")])
        assert graph.nodes() == ["a", "b", "c"]
        assert graph.arcs() == [("a", "b"), ("b", "c")]

    def test_add_arc_creates_endpoints(self):
        graph = DiGraph()
        graph.add_arc(1, 2)
        assert graph.has_node(1) and graph.has_node(2)
        assert graph.has_arc(1, 2)
        assert not graph.has_arc(2, 1)

    def test_duplicate_arc_is_idempotent(self):
        graph = DiGraph()
        graph.add_arc("a", "b")
        graph.add_arc("a", "b")
        assert graph.arc_count() == 1

    def test_insertion_order_preserved(self):
        graph = DiGraph()
        for node in ("z", "m", "a"):
            graph.add_node(node)
        assert graph.nodes() == ["z", "m", "a"]

    def test_self_loop_allowed(self):
        graph = DiGraph()
        graph.add_arc("a", "a")
        assert graph.has_arc("a", "a")
        assert graph.without_self_loops().arc_count() == 0

    def test_remove_arc(self):
        graph = DiGraph("ab", [("a", "b")])
        graph.remove_arc("a", "b")
        assert not graph.has_arc("a", "b")
        with pytest.raises(KeyError):
            graph.remove_arc("a", "b")


class TestQueries:
    def test_degrees(self):
        graph = DiGraph("abc", [("a", "b"), ("a", "c"), ("b", "c")])
        assert graph.out_degree("a") == 2
        assert graph.in_degree("c") == 2
        assert graph.in_degree("a") == 0

    def test_successors_predecessors(self):
        graph = DiGraph("abc", [("a", "b"), ("a", "c")])
        assert graph.successors("a") == ["b", "c"]
        assert graph.predecessors("c") == ["a"]

    def test_contains_len_iter(self):
        graph = DiGraph("ab")
        assert "a" in graph
        assert "q" not in graph
        assert len(graph) == 2
        assert list(graph) == ["a", "b"]

    def test_hashable_tuple_nodes(self):
        graph = DiGraph()
        graph.add_arc(("x", 1), ("y", 2))
        assert graph.has_arc(("x", 1), ("y", 2))


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        graph = DiGraph("ab", [("a", "b")])
        clone = graph.copy()
        clone.add_arc("b", "a")
        assert not graph.has_arc("b", "a")

    def test_reversed(self):
        graph = DiGraph("ab", [("a", "b")])
        rev = graph.reversed()
        assert rev.has_arc("b", "a")
        assert not rev.has_arc("a", "b")
        assert rev.nodes() == graph.nodes()

    def test_subgraph(self):
        graph = DiGraph("abc", [("a", "b"), ("b", "c"), ("a", "c")])
        sub = graph.subgraph({"a", "c"})
        assert sub.nodes() == ["a", "c"]
        assert sub.arcs() == [("a", "c")]


class TestReachability:
    def test_reachable_from(self):
        graph = DiGraph("abcd", [("a", "b"), ("b", "c")])
        assert graph.reachable_from("a") == {"a", "b", "c"}
        assert graph.reachable_from("d") == {"d"}

    def test_reaching(self):
        graph = DiGraph("abcd", [("a", "b"), ("b", "c")])
        assert graph.reaching("c") == {"a", "b", "c"}

    def test_has_path(self):
        graph = DiGraph("abc", [("a", "b"), ("b", "c")])
        assert graph.has_path("a", "c")
        assert graph.has_path("a", "a")  # empty path
        assert not graph.has_path("c", "a")

    def test_reachability_on_cycle(self):
        graph = DiGraph("abc", [("a", "b"), ("b", "c"), ("c", "a")])
        assert graph.reachable_from("b") == {"a", "b", "c"}
        assert graph.reaching("b") == {"a", "b", "c"}
