"""Transitive closure (bitset reachability) and reduction."""

import random

import networkx as nx
import pytest

from repro.graphs import (
    CycleError,
    DiGraph,
    TransitiveClosure,
    transitive_closure,
    transitive_reduction,
)


def random_dag(rng: random.Random, n: int, p: float) -> DiGraph:
    graph = DiGraph(range(n))
    for a in range(n):
        for b in range(a + 1, n):
            if rng.random() < p:
                graph.add_arc(a, b)
    return graph


class TestTransitiveClosure:
    def test_strict_reachability(self):
        graph = DiGraph("abc", [("a", "b"), ("b", "c")])
        closure = TransitiveClosure(graph)
        assert closure.reaches("a", "b")
        assert closure.reaches("a", "c")
        assert not closure.reaches("c", "a")
        assert not closure.reaches("a", "a")  # strict: no empty path

    def test_descendants(self):
        graph = DiGraph("abcd", [("a", "b"), ("b", "c")])
        closure = TransitiveClosure(graph)
        assert closure.descendants("a") == {"b", "c"}
        assert closure.descendants("d") == set()

    def test_comparable(self):
        graph = DiGraph("abc", [("a", "b")])
        closure = TransitiveClosure(graph)
        assert closure.comparable("a", "b")
        assert not closure.comparable("a", "c")

    def test_rejects_cycles(self):
        with pytest.raises(CycleError):
            TransitiveClosure(DiGraph("ab", [("a", "b"), ("b", "a")]))

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_networkx(self, seed):
        rng = random.Random(seed)
        graph = random_dag(rng, rng.randint(1, 30), 0.15)
        closed = transitive_closure(graph)
        nx_graph = nx.DiGraph()
        nx_graph.add_nodes_from(graph.nodes())
        nx_graph.add_edges_from(graph.arcs())
        nx_closed = nx.transitive_closure(nx_graph, reflexive=False)
        assert set(closed.arcs()) == set(nx_closed.edges())

    def test_large_chain_fast(self):
        n = 2000
        graph = DiGraph(range(n), [(i, i + 1) for i in range(n - 1)])
        closure = TransitiveClosure(graph)
        assert closure.reaches(0, n - 1)
        assert not closure.reaches(n - 1, 0)


class TestTransitiveReduction:
    def test_removes_shortcut(self):
        graph = DiGraph("abc", [("a", "b"), ("b", "c"), ("a", "c")])
        reduced = transitive_reduction(graph)
        assert set(reduced.arcs()) == {("a", "b"), ("b", "c")}

    def test_keeps_cover_arcs(self):
        graph = DiGraph("abcd", [("a", "b"), ("c", "d")])
        reduced = transitive_reduction(graph)
        assert set(reduced.arcs()) == set(graph.arcs())

    @pytest.mark.parametrize("seed", range(10))
    def test_same_reachability_and_minimal(self, seed):
        rng = random.Random(50 + seed)
        graph = random_dag(rng, rng.randint(2, 20), 0.3)
        reduced = transitive_reduction(graph)
        nx_graph = nx.DiGraph()
        nx_graph.add_nodes_from(graph.nodes())
        nx_graph.add_edges_from(graph.arcs())
        nx_reduced = nx.transitive_reduction(nx_graph)
        assert set(reduced.arcs()) == set(nx_reduced.edges())
