"""Dominator (ancestor-closed set) enumeration — Definition 2."""

import random
from itertools import chain, combinations

import pytest

from repro.graphs import (
    DiGraph,
    dominators,
    enumerate_ancestor_closed_sets,
    is_dominator,
    is_strongly_connected,
    some_dominator,
)


def brute_force_dominators(graph: DiGraph):
    nodes = graph.nodes()
    for size in range(1, len(nodes)):
        for subset in combinations(nodes, size):
            if is_dominator(graph, set(subset)):
                yield frozenset(subset)


class TestIsDominator:
    def test_definition(self):
        graph = DiGraph("abc", [("a", "b"), ("b", "c")])
        assert is_dominator(graph, {"a"})
        assert is_dominator(graph, {"a", "b"})
        assert not is_dominator(graph, {"b"})  # incoming arc from a
        assert not is_dominator(graph, set())  # nonempty required
        assert not is_dominator(graph, {"a", "b", "c"})  # proper required

    def test_scc_granularity(self):
        graph = DiGraph("abc", [("a", "b"), ("b", "a"), ("b", "c")])
        assert is_dominator(graph, {"a", "b"})
        assert not is_dominator(graph, {"a"})  # b -> a enters from outside


class TestEnumeration:
    @pytest.mark.parametrize("seed", range(25))
    def test_matches_brute_force(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 8)
        graph = DiGraph(range(n))
        for a in range(n):
            for b in range(n):
                if a != b and rng.random() < 0.25:
                    graph.add_arc(a, b)
        ours = set(dominators(graph))
        brute = set(brute_force_dominators(graph))
        assert ours == brute

    def test_strongly_connected_graph_has_none(self):
        graph = DiGraph("abc", [("a", "b"), ("b", "c"), ("c", "a")])
        assert list(dominators(graph)) == []
        assert some_dominator(graph) is None

    def test_antichain_has_all_proper_subsets(self):
        graph = DiGraph("abc")
        assert len(set(dominators(graph))) == 2**3 - 2

    def test_include_flags(self):
        graph = DiGraph("ab", [("a", "b")])
        with_empty = set(
            enumerate_ancestor_closed_sets(graph, include_empty=True)
        )
        assert frozenset() in with_empty
        with_full = set(
            enumerate_ancestor_closed_sets(graph, include_full=True)
        )
        assert frozenset({"a", "b"}) in with_full

    def test_limit(self):
        graph = DiGraph("abcdef")
        assert len(list(dominators(graph, limit=5))) == 5


class TestSomeDominator:
    @pytest.mark.parametrize("seed", range(15))
    def test_returns_valid_dominator_or_none(self, seed):
        rng = random.Random(seed + 99)
        n = rng.randint(1, 10)
        graph = DiGraph(range(n))
        for a in range(n):
            for b in range(n):
                if a != b and rng.random() < 0.3:
                    graph.add_arc(a, b)
        found = some_dominator(graph)
        if found is None:
            assert is_strongly_connected(graph)
        else:
            assert is_dominator(graph, found)

    def test_source_scc_chosen(self):
        graph = DiGraph("abc", [("a", "b"), ("b", "a"), ("b", "c")])
        assert some_dominator(graph) == frozenset({"a", "b"})
