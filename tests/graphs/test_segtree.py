"""Max segment tree with deactivation."""

import random

import pytest

from repro.graphs import MaxSegmentTree
from repro.graphs.segtree import NEG_INF


class BruteForce:
    """Reference implementation."""

    def __init__(self, values):
        self.values = list(values)

    def deactivate(self, index):
        self.values[index] = NEG_INF

    def prefix_argmax(self, end):
        end = min(end, len(self.values))
        best_index, best_value = -1, NEG_INF
        for index in range(end):
            if self.values[index] > best_value:
                best_index, best_value = index, self.values[index]
        return best_index, best_value


class TestBasics:
    def test_empty_prefix(self):
        tree = MaxSegmentTree([1.0, 2.0])
        assert tree.prefix_argmax(0) == (-1, NEG_INF)

    def test_single_element(self):
        tree = MaxSegmentTree([5.0])
        assert tree.prefix_argmax(1) == (0, 5.0)
        tree.deactivate(0)
        assert tree.prefix_argmax(1) == (-1, NEG_INF)

    def test_ties_return_some_argmax(self):
        tree = MaxSegmentTree([3.0, 3.0, 3.0])
        index, value = tree.prefix_argmax(3)
        assert value == 3.0
        assert 0 <= index < 3

    def test_value_at(self):
        tree = MaxSegmentTree([1.0, 9.0, 4.0])
        assert tree.value_at(1) == 9.0

    def test_extract_above(self):
        tree = MaxSegmentTree([1.0, 9.0, 4.0])
        assert tree.extract_above(3, 5.0) == 1
        assert tree.extract_above(3, 5.0) is None  # 9 gone, rest <= 5
        assert tree.extract_above(3, 0.5) == 2  # max remaining is 4

    def test_extract_respects_prefix(self):
        tree = MaxSegmentTree([1.0, 9.0, 4.0])
        assert tree.extract_above(1, 0.0) == 0
        assert tree.extract_above(1, 0.0) is None


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_operations(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 40)
        values = [float(rng.randint(0, 50)) for _ in range(n)]
        tree = MaxSegmentTree(values)
        brute = BruteForce(values)
        for _ in range(100):
            if rng.random() < 0.4:
                index = rng.randrange(n)
                tree.deactivate(index)
                brute.deactivate(index)
            else:
                end = rng.randint(0, n + 2)
                got_index, got_value = tree.prefix_argmax(end)
                want_index, want_value = brute.prefix_argmax(end)
                assert got_value == want_value
                if want_value != NEG_INF:
                    # Any argmax position with the max value is fine.
                    assert brute.values[got_index] == want_value
                    assert got_index < min(end, n)
