"""Tarjan SCC and condensation, cross-validated against networkx."""

import random

import networkx as nx
import pytest

from repro.graphs import (
    DiGraph,
    condensation,
    is_strongly_connected,
    strongly_connected_components,
)


def random_digraph(rng: random.Random, nodes: int, arc_prob: float) -> DiGraph:
    graph = DiGraph(range(nodes))
    for a in range(nodes):
        for b in range(nodes):
            if a != b and rng.random() < arc_prob:
                graph.add_arc(a, b)
    return graph


class TestTarjan:
    def test_empty_graph(self):
        assert strongly_connected_components(DiGraph()) == []

    def test_singleton(self):
        assert strongly_connected_components(DiGraph("a")) == [["a"]]

    def test_two_cycle(self):
        graph = DiGraph("ab", [("a", "b"), ("b", "a")])
        components = strongly_connected_components(graph)
        assert len(components) == 1
        assert sorted(components[0]) == ["a", "b"]

    def test_chain_gives_singletons(self):
        graph = DiGraph("abc", [("a", "b"), ("b", "c")])
        components = strongly_connected_components(graph)
        assert sorted(len(c) for c in components) == [1, 1, 1]

    def test_reverse_topological_emission_order(self):
        # Tarjan emits sinks first: arcs between components always go
        # from later-emitted to earlier-emitted.
        graph = DiGraph("abcd", [("a", "b"), ("b", "c"), ("c", "b"), ("c", "d")])
        components = strongly_connected_components(graph)
        index_of = {}
        for position, members in enumerate(components):
            for member in members:
                index_of[member] = position
        for tail, head in graph.arcs():
            if index_of[tail] != index_of[head]:
                assert index_of[tail] > index_of[head]

    @pytest.mark.parametrize("seed", range(20))
    def test_matches_networkx(self, seed):
        rng = random.Random(seed)
        graph = random_digraph(rng, rng.randint(1, 25), rng.uniform(0.02, 0.3))
        ours = {
            frozenset(component)
            for component in strongly_connected_components(graph)
        }
        nx_graph = nx.DiGraph()
        nx_graph.add_nodes_from(graph.nodes())
        nx_graph.add_edges_from(graph.arcs())
        theirs = {
            frozenset(component)
            for component in nx.strongly_connected_components(nx_graph)
        }
        assert ours == theirs

    def test_deep_graph_no_recursion_error(self):
        # 10k-node chain: the iterative implementation must survive.
        n = 10_000
        graph = DiGraph(range(n), [(i, i + 1) for i in range(n - 1)])
        assert len(strongly_connected_components(graph)) == n


class TestIsStronglyConnected:
    def test_empty_convention(self):
        assert is_strongly_connected(DiGraph())
        assert not is_strongly_connected(DiGraph(), empty_is_connected=False)

    def test_singleton_is_connected(self):
        assert is_strongly_connected(DiGraph("a"))

    def test_cycle_connected(self):
        graph = DiGraph("abc", [("a", "b"), ("b", "c"), ("c", "a")])
        assert is_strongly_connected(graph)

    def test_chain_not_connected(self):
        graph = DiGraph("ab", [("a", "b")])
        assert not is_strongly_connected(graph)

    @pytest.mark.parametrize("seed", range(20))
    def test_matches_networkx(self, seed):
        rng = random.Random(100 + seed)
        graph = random_digraph(rng, rng.randint(1, 20), rng.uniform(0.05, 0.5))
        nx_graph = nx.DiGraph()
        nx_graph.add_nodes_from(graph.nodes())
        nx_graph.add_edges_from(graph.arcs())
        assert is_strongly_connected(graph) == nx.is_strongly_connected(
            nx_graph
        )


class TestCondensation:
    def test_condensation_is_dag_and_partition(self):
        rng = random.Random(7)
        graph = random_digraph(rng, 15, 0.2)
        dag, component_of, components = condensation(graph)
        # Partition covers all nodes exactly once.
        flat = [node for members in components for node in members]
        assert sorted(flat, key=str) == sorted(graph.nodes(), key=str)
        # No arcs inside a component in the DAG; DAG acyclic.
        from repro.graphs import is_acyclic

        assert is_acyclic(dag)
        for tail, head in graph.arcs():
            if component_of[tail] != component_of[head]:
                assert dag.has_arc(component_of[tail], component_of[head])

    def test_single_scc_condenses_to_point(self):
        graph = DiGraph("abc", [("a", "b"), ("b", "c"), ("c", "a")])
        dag, _, components = condensation(graph)
        assert dag.node_count() == 1
        assert len(components) == 1
