"""The exception hierarchy: every error is catchable as ReproError and
carries an informative message."""

import pytest

from repro.errors import (
    CertificateError,
    DatabaseError,
    LockingError,
    ModelError,
    ReductionError,
    ReproError,
    ScheduleError,
    SiteOrderError,
    TransactionError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [
            CertificateError,
            DatabaseError,
            LockingError,
            ModelError,
            ReductionError,
            ScheduleError,
            SiteOrderError,
            TransactionError,
        ],
    )
    def test_all_are_repro_errors(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_model_errors_are_value_errors(self):
        assert issubclass(ModelError, ValueError)
        assert issubclass(DatabaseError, ValueError)

    def test_locking_and_site_order_are_transaction_errors(self):
        assert issubclass(LockingError, TransactionError)
        assert issubclass(SiteOrderError, TransactionError)


class TestMessages:
    def test_database_error_names_entity(self):
        from repro.core import DistributedDatabase

        db = DistributedDatabase({"x": 1})
        with pytest.raises(DatabaseError, match="ghost"):
            db.site_of("ghost")

    def test_locking_error_names_transaction_and_entity(self):
        from repro.core import DistributedDatabase, Step, StepKind, Transaction

        db = DistributedDatabase({"x": 1})
        with pytest.raises(LockingError, match="T9.*x"):
            Transaction("T9", db, [Step(StepKind.LOCK, "x")], [])

    def test_schedule_error_is_specific(self):
        from repro.core import TransactionBuilder, TransactionSystem, Schedule

        db_builder = TransactionBuilder(
            "T",
            __import__("repro.core", fromlist=["DistributedDatabase"])
            .DistributedDatabase({"x": 1}),
        )
        db_builder.access("x")
        system = TransactionSystem([db_builder.build()])
        with pytest.raises(ScheduleError, match="total order"):
            Schedule(system, [])

    def test_one_catch_all(self):
        """A caller can wrap the whole library in one except clause."""
        from repro.core import DistributedDatabase

        try:
            DistributedDatabase({})
        except ReproError as exc:
            assert "entity" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("expected ReproError")
