"""Schedules: legality clauses (a)/(b), serializability, enumeration."""

import pytest

from repro.core import (
    DistributedDatabase,
    Schedule,
    ScheduledStep,
    TransactionBuilder,
    TransactionSystem,
    all_legal_schedules,
    find_nonserializable_schedule,
)
from repro.errors import ScheduleError, TransactionError


@pytest.fixture
def db():
    return DistributedDatabase({"x": 1, "z": 2})


@pytest.fixture
def pair(db):
    t1 = TransactionBuilder("T1", db)
    t1.access("x")
    t1.access("z")
    t2 = TransactionBuilder("T2", db)
    t2.access("x")
    t2.access("z")
    return TransactionSystem([t1.build(), t2.build()])


def steps_of(system, name):
    return [
        ScheduledStep(name, step) for step in system[name].a_linear_extension()
    ]


class TestTransactionSystem:
    def test_needs_transactions(self):
        with pytest.raises(TransactionError):
            TransactionSystem([])

    def test_rejects_duplicate_names(self, db):
        t = TransactionBuilder("T", db)
        t.access("x")
        tx = t.build()
        with pytest.raises(TransactionError):
            TransactionSystem([tx, tx])

    def test_rejects_mixed_databases(self, db):
        other_db = DistributedDatabase({"x": 1, "z": 1})
        a = TransactionBuilder("A", db)
        a.access("x")
        b = TransactionBuilder("B", other_db)
        b.access("x")
        with pytest.raises(TransactionError):
            TransactionSystem([a.build(), b.build()])

    def test_shared_locked_entities(self, pair):
        assert sorted(pair.shared_locked_entities()) == ["x", "z"]

    def test_pair_accessor(self, pair):
        first, second = pair.pair()
        assert {first.name, second.name} == {"T1", "T2"}

    def test_total_steps(self, pair):
        assert pair.total_steps() == 12


class TestSerialSchedules:
    def test_serial_schedule_is_legal_and_serial(self, pair):
        schedule = pair.serial_schedule(["T1", "T2"])
        assert schedule.is_serial()
        assert schedule.is_serializable()

    def test_serial_needs_permutation(self, pair):
        with pytest.raises(ScheduleError):
            pair.serial_schedule(["T1"])


class TestLegality:
    def test_missing_step_rejected(self, pair):
        steps = steps_of(pair, "T1") + steps_of(pair, "T2")
        with pytest.raises(ScheduleError):
            Schedule(pair, steps[:-1])

    def test_repeated_step_rejected(self, pair):
        steps = steps_of(pair, "T1") + steps_of(pair, "T2")
        with pytest.raises(ScheduleError):
            Schedule(pair, steps + [steps[0]])

    def test_partial_order_violation_rejected(self, pair):
        steps = steps_of(pair, "T1") + steps_of(pair, "T2")
        steps[0], steps[1] = steps[1], steps[0]  # swap Lx and x of T1
        with pytest.raises(ScheduleError):
            Schedule(pair, steps)

    def test_lock_exclusion_violation_rejected(self, pair):
        # Interleave T2's Lx inside T1's x-critical-section.
        t1 = steps_of(pair, "T1")
        t2 = steps_of(pair, "T2")
        mixed = [t1[0], t2[0]] + t1[1:] + t2[1:]
        with pytest.raises(ScheduleError):
            Schedule(pair, mixed)

    def test_interleaved_legal_schedule(self, pair):
        t1 = steps_of(pair, "T1")
        t2 = steps_of(pair, "T2")
        # T1 finishes x, then T2 takes x, etc.
        mixed = t1[:3] + t2[:3] + t1[3:] + t2[3:]
        schedule = Schedule(pair, mixed)
        assert not schedule.is_serial()
        assert schedule.is_serializable()

    def test_accepts_bare_tuples(self, pair):
        items = [
            (item.transaction, item.step)
            for item in steps_of(pair, "T1") + steps_of(pair, "T2")
        ]
        assert len(Schedule(pair, items)) == 12


class TestSerializability:
    def test_nonserializable_interleaving(self, pair):
        t1 = steps_of(pair, "T1")
        t2 = steps_of(pair, "T2")
        # T1 first on x; T2 first on z.  (T1: Lx x Ux Lz z Uz)
        mixed = t1[:3] + t2[3:] + t2[:3] + t1[3:]
        schedule = Schedule(pair, mixed)
        assert not schedule.is_serializable()
        assert schedule.equivalent_serial_order() is None

    def test_equivalent_serial_order_witness(self, pair):
        schedule = pair.serial_schedule(["T2", "T1"])
        assert schedule.equivalent_serial_order() == ["T2", "T1"]

    def test_position_lookup(self, pair):
        schedule = pair.serial_schedule(["T1", "T2"])
        first = pair["T1"].a_linear_extension()[0]
        assert schedule.position("T1", first) == 0


class TestEnumeration:
    def test_all_legal_schedules_are_legal_and_distinct(self, pair):
        schedules = list(all_legal_schedules(pair, limit=200))
        seen = {tuple(map(str, s.steps)) for s in schedules}
        assert len(seen) == len(schedules)

    def test_single_transaction_single_schedule(self, db):
        t = TransactionBuilder("T", db)
        t.access("x")
        system = TransactionSystem([t.build()])
        schedules = list(all_legal_schedules(system))
        assert len(schedules) == 1

    def test_find_nonserializable_on_unsafe(self, simple_unsafe_pair):
        witness = find_nonserializable_schedule(simple_unsafe_pair)
        assert witness is not None
        assert not witness.is_serializable()

    def test_find_nonserializable_on_safe(self, simple_safe_pair):
        assert find_nonserializable_schedule(simple_safe_pair) is None

    def test_budget_guard(self, pair):
        from repro.core.schedule import SearchBudgetExceeded

        with pytest.raises(SearchBudgetExceeded):
            list(all_legal_schedules(pair, state_budget=3))
