"""Many-transaction systems — §6, Proposition 2."""

import random

import pytest

from repro.core import (
    DistributedDatabase,
    TransactionBuilder,
    TransactionSystem,
    b_graph_of_cycle,
    b_graph_of_triple,
    decide_safety,
    decide_safety_exhaustive,
    decide_safety_multi,
    interaction_graph,
)
from repro.workloads import random_system


def chain_transaction(name, db, entities, two_phase=False):
    """Totally ordered transaction accessing *entities* in sequence."""
    builder = TransactionBuilder(name, db)
    if two_phase:
        locks = [builder.lock(entity) for entity in entities]
        for entity in entities:
            builder.update(entity)
        unlocks = [builder.unlock(entity) for entity in entities]
        steps = locks + unlocks
    else:
        steps = []
        for entity in entities:
            steps.extend(builder.access(entity))
    previous = None
    for step in steps:
        if previous is not None:
            builder.precede(previous, step)
        previous = step
    return builder.build()


@pytest.fixture
def db():
    return DistributedDatabase.single_site(["a", "b", "c"])


class TestInteractionGraph:
    def test_edge_iff_common_entity(self, db):
        t1 = chain_transaction("T1", db, ["a", "b"])
        t2 = chain_transaction("T2", db, ["b", "c"])
        t3 = chain_transaction("T3", db, ["c"])
        graph = interaction_graph(TransactionSystem([t1, t2, t3]))
        assert graph.has_arc("T1", "T2") and graph.has_arc("T2", "T1")
        assert graph.has_arc("T2", "T3")
        assert not graph.has_arc("T1", "T3")


class TestBGraphs:
    def test_b_graph_nodes_are_shared_entities(self, db):
        t1 = chain_transaction("T1", db, ["a", "b"])
        t2 = chain_transaction("T2", db, ["a", "b", "c"])
        t3 = chain_transaction("T3", db, ["c"])
        graph = b_graph_of_triple(t1, t2, t3)
        pair12 = frozenset({"T1", "T2"})
        pair23 = frozenset({"T2", "T3"})
        assert set(graph.nodes()) == {
            ("a", pair12), ("b", pair12), ("c", pair23)
        }

    def test_arc_lx_before_uy_in_middle(self, db):
        # In T2 = a then b then c: La precedes Uc, so (a_12, c_23).
        t1 = chain_transaction("T1", db, ["a"])
        t2 = chain_transaction("T2", db, ["a", "c"])
        t3 = chain_transaction("T3", db, ["c"])
        graph = b_graph_of_triple(t1, t2, t3)
        assert graph.has_arc(
            ("a", frozenset({"T1", "T2"})), ("c", frozenset({"T2", "T3"}))
        )

    def test_lock_order_arcs_within_pair(self, db):
        t1 = chain_transaction("T1", db, ["a", "b"])
        t2 = chain_transaction("T2", db, ["a", "b"])
        t3 = chain_transaction("T3", db, ["a"])
        graph = b_graph_of_triple(t1, t2, t3)
        pair12 = frozenset({"T1", "T2"})
        # In T2, La precedes Lb: arc (a_12, b_12).
        assert graph.has_arc(("a", pair12), ("b", pair12))

    def test_b_graph_of_cycle_unions_triples(self, db):
        t1 = chain_transaction("T1", db, ["a", "b"], two_phase=True)
        t2 = chain_transaction("T2", db, ["b", "c"], two_phase=True)
        t3 = chain_transaction("T3", db, ["c", "a"], two_phase=True)
        system = TransactionSystem([t1, t2, t3])
        union = b_graph_of_cycle(system, ["T1", "T2", "T3"])
        assert union.node_count() == 3  # b_12, c_23, a_31


class TestProposition2:
    def test_unsafe_pair_caught_by_condition_a(self, db):
        t1 = chain_transaction("T1", db, ["a", "b"])
        t2 = chain_transaction("T2", db, ["b", "a"])
        t3 = chain_transaction("T3", db, ["c"])
        verdict = decide_safety_multi(TransactionSystem([t1, t2, t3]))
        assert not verdict.safe
        assert "subsystem" in verdict.detail

    def test_two_phase_triangle_is_safe(self, db):
        t1 = chain_transaction("T1", db, ["a", "b"], two_phase=True)
        t2 = chain_transaction("T2", db, ["b", "c"], two_phase=True)
        t3 = chain_transaction("T3", db, ["c", "a"], two_phase=True)
        system = TransactionSystem([t1, t2, t3])
        verdict = decide_safety_multi(system)
        assert verdict.safe
        assert decide_safety_exhaustive(system).safe

    def test_pairwise_safe_globally_unsafe_triangle(self, db):
        """The classical phenomenon Proposition 2's condition (b) exists
        for: every pair safe, the three-cycle not."""
        # Each Ti accesses its two entities in one lock-couple region so
        # that each pair shares exactly ONE entity (pairs trivially
        # safe), but the triangle can mis-serialize.
        t1 = chain_transaction("T1", db, ["a", "b"])
        t2 = chain_transaction("T2", db, ["b", "c"])
        t3 = chain_transaction("T3", db, ["c", "a"])
        system = TransactionSystem([t1, t2, t3])
        for pair_names in (("T1", "T2"), ("T2", "T3"), ("T1", "T3")):
            sub = TransactionSystem([system[n] for n in pair_names])
            assert decide_safety(sub).safe  # one shared entity each
        exhaustive = decide_safety_exhaustive(system)
        verdict = decide_safety_multi(system)
        assert not exhaustive.safe
        assert not verdict.safe
        assert "cycle" in verdict.detail

    @pytest.mark.parametrize("seed", range(25))
    def test_matches_exhaustive_on_random_systems(self, seed):
        rng = random.Random(seed)
        system = random_system(
            rng,
            transactions=3,
            sites=rng.choice([1, 2]),
            entities=rng.randint(2, 4),
            entities_per_transaction=2,
            cross_arcs=0,
        )
        verdict = decide_safety_multi(system)
        exhaustive = decide_safety_exhaustive(system, state_budget=4_000_000)
        assert verdict.safe == exhaustive.safe, (
            f"Prop2={verdict.safe} ({verdict.detail}) vs "
            f"exhaustive={exhaustive.safe}"
        )

    def test_front_end_routes_multi(self, db):
        t1 = chain_transaction("T1", db, ["a", "b"], two_phase=True)
        t2 = chain_transaction("T2", db, ["b", "c"], two_phase=True)
        t3 = chain_transaction("T3", db, ["c", "a"], two_phase=True)
        verdict = decide_safety(TransactionSystem([t1, t2, t3]))
        assert verdict.method == "proposition-2"
