"""Unsafeness certificates — Theorem 2's constructive proof and
Corollary 2."""

import random

import pytest

from repro.core import (
    certificate_from_dominator,
    certificate_via_corollary_2,
    d_graph,
    decide_safety_exhaustive,
    dominators_of,
    is_closed,
)
from repro.errors import CertificateError
from repro.workloads import figure_1, figure_3, random_pair_system


class TestConstruction:
    def test_figure_1_certificate(self):
        first, second = figure_1().pair()
        certificate = certificate_from_dominator(first, second)
        assert certificate.verify()
        assert not certificate.schedule.is_serializable()

    def test_strongly_connected_pair_refused(self, simple_safe_pair):
        first, second = simple_safe_pair.pair()
        with pytest.raises(CertificateError):
            certificate_from_dominator(first, second)

    def test_non_dominator_refused(self, simple_unsafe_pair):
        first, second = simple_unsafe_pair.pair()
        with pytest.raises(CertificateError):
            certificate_from_dominator(first, second, {"z"})

    def test_every_dominator_yields_certificate_at_two_sites(self):
        first, second = figure_3().pair()
        graph = d_graph(first, second)
        count = 0
        for dominator in dominators_of(graph):
            certificate = certificate_from_dominator(first, second, dominator)
            assert certificate.verify()
            assert certificate.dominator == dominator
            count += 1
        assert count >= 1

    @pytest.mark.parametrize("seed", range(40))
    def test_random_two_site_certificates_verify(self, seed):
        rng = random.Random(seed)
        system = random_pair_system(
            rng, sites=rng.choice([1, 2]), entities=rng.randint(2, 5),
            shared=rng.randint(2, 4), cross_arcs=rng.randint(0, 3),
        )
        first, second = system.pair()
        from repro.graphs import is_strongly_connected

        if is_strongly_connected(d_graph(first, second)):
            return  # safe: nothing to certify
        certificate = certificate_from_dominator(first, second)
        assert certificate.verify()
        # The certificate's schedule is itself definitional proof:
        assert not decide_safety_exhaustive(system).safe


class TestCorollary2:
    def test_corollary_2_on_closed_system(self, simple_unsafe_pair):
        first, second = simple_unsafe_pair.pair()
        assert is_closed(first, second, {"x"})
        certificate = certificate_via_corollary_2(first, second, {"x"})
        assert certificate.verify()

    def test_corollary_2_requires_closedness(self):
        # figure_3 is not closed w.r.t. {x, y} (z-triples trigger);
        # if it is closed, corollary applies; otherwise refuse.
        first, second = figure_3().pair()
        if not is_closed(first, second, {"x", "y"}):
            with pytest.raises(CertificateError):
                certificate_via_corollary_2(first, second, {"x", "y"})
        else:
            assert certificate_via_corollary_2(
                first, second, {"x", "y"}
            ).verify()


class TestVerification:
    @pytest.fixture
    def certificate(self):
        first, second = figure_1().pair()
        return certificate_from_dominator(first, second)

    def test_describe_mentions_dominator(self, certificate):
        text = certificate.describe()
        assert "dominator" in text
        assert "non-serializable" in text

    def test_tampered_bits_detected(self, certificate):
        certificate.bits = {key: 0 for key in certificate.bits}
        with pytest.raises(CertificateError):
            certificate.verify()

    def test_tampered_t1_detected(self, certificate):
        certificate.t1 = list(reversed(certificate.t1))
        with pytest.raises(CertificateError):
            certificate.verify()

    def test_tampered_schedule_detected(self, certificate):
        certificate.schedule.steps.reverse()
        with pytest.raises(CertificateError):
            certificate.verify()
