"""The Theorem 3 reduction — Figs. 8-9 — validated end-to-end."""

import random

import pytest

from repro.core import decide_safety_exact
from repro.core.reduction import (
    ReductionArtifacts,
    decide_satisfiability_via_safety,
    propagate_units,
    reduce_cnf_to_pair,
)
from repro.errors import ReductionError
from repro.graphs import is_strongly_connected
from repro.logic import CnfFormula, all_models, is_satisfiable, solve
from repro.workloads import figure_8_formula, random_restricted_cnf


@pytest.fixture(scope="module")
def fig8() -> ReductionArtifacts:
    return reduce_cnf_to_pair(figure_8_formula())


class TestConstruction:
    def test_d_graph_matches_design(self, fig8):
        # Checked internally at build time; re-assert the public fact.
        from repro.core import d_graph

        actual = d_graph(fig8.first, fig8.second)
        assert set(actual.arcs()) == set(fig8.d_expected.arcs())

    def test_d_not_strongly_connected(self, fig8):
        assert not is_strongly_connected(fig8.d_expected)

    def test_entities_one_per_site(self, fig8):
        db = fig8.database
        sites = [db.site_of(entity) for entity in db.entities]
        assert len(set(sites)) == len(sites)

    def test_middle_row_structure(self, fig8):
        # x2 appears twice unnegated in Fig. 8's F: doubled w-copies.
        assert len(fig8.w_copies_of["x2"]) == 2
        assert len(fig8.w_copies_of["x1"]) == 1
        assert len(fig8.w_copies_of["x3"]) == 1

    def test_rejects_unrestricted_formula(self):
        fat = CnfFormula.parse("(a | b | c | d)")
        with pytest.raises(ReductionError):
            reduce_cnf_to_pair(fat)

    def test_rejects_unit_clauses(self):
        unit = CnfFormula.parse("(a) & (a | b)")
        with pytest.raises(ReductionError):
            reduce_cnf_to_pair(unit)


class TestDominatorsAsAssignments:
    def test_dominators_are_upper_plus_middle_units(self, fig8):
        """Fig. 8's characterization of the dominators of D."""
        from repro.graphs import dominators

        upper = set(fig8.upper_cycle)
        units = fig8.middle_scc_units()
        count = 0
        for dominator in dominators(fig8.d_expected):
            count += 1
            assert upper <= set(dominator)
            remainder = set(dominator) - upper
            # The remainder is a union of complete middle units.
            for unit in units:
                overlap = remainder & set(unit)
                assert overlap in (set(), set(unit))
            assert remainder <= set(fig8.middle_nodes)
        assert count == 2 ** len(units)

    def test_assignment_roundtrip(self, fig8):
        assignment = {"x1": True, "x2": False, "x3": True}
        dominator = fig8.dominator_for_assignment(assignment)
        read_back = fig8.assignment_for_dominator(dominator)
        assert read_back == assignment

    def test_satisfying_assignment_gives_desirable_dominator(self, fig8):
        model = solve(fig8.formula)
        assert model is not None
        dominator = fig8.dominator_for_assignment(model)
        assert fig8.is_desirable(dominator)

    def test_falsifying_assignment_gives_undesirable_dominator(self, fig8):
        # x2 = False with x1 = False, x3 = False falsifies clause 1.
        falsifying = {"x1": False, "x2": False, "x3": False}
        assert not fig8.formula.satisfied_by(falsifying)
        dominator = fig8.dominator_for_assignment(falsifying)
        assert not fig8.is_desirable(dominator)

    def test_mixed_dominator_rejected_by_reader(self, fig8):
        both = set(fig8.upper_cycle)
        both.update(fig8.w_copies_of["x1"])
        both.add(fig8.w_neg_of["x1"])
        with pytest.raises(ReductionError):
            fig8.assignment_for_dominator(frozenset(both))


class TestBiconditional:
    def test_fig8_formula_is_satisfiable_hence_unsafe(self, fig8):
        assert is_satisfiable(fig8.formula)
        verdict = decide_safety_exact(fig8.first, fig8.second)
        assert not verdict.safe
        assert verdict.witness is not None
        assert not verdict.witness.is_serializable()

    def test_unsatisfiable_formula_gives_safe_pair(self):
        unsat = CnfFormula.parse(
            "(p | y1) & (p | ~y1) & (q | y2) & (q | ~y2) & (~p | ~q)"
        )
        assert not is_satisfiable(unsat)
        artifacts = reduce_cnf_to_pair(unsat)
        verdict = decide_safety_exact(artifacts.first, artifacts.second)
        assert verdict.safe

    @pytest.mark.parametrize("seed", range(12))
    def test_random_formulas_roundtrip(self, seed):
        rng = random.Random(seed)
        formula = random_restricted_cnf(
            rng, variables=rng.randint(2, 4), clauses=rng.randint(1, 3)
        )
        assert decide_satisfiability_via_safety(formula) == is_satisfiable(
            formula
        )

    def test_realizable_dominators_are_exactly_desirable_models(self, fig8):
        """The fine-grained correspondence: a dominator yields an unsafe
        schedule iff it is desirable, and desirable dominators map onto
        clause-satisfying (partial) assignments."""
        from repro.core.safety import _combined_step_graph, _realizes_bits
        from repro.graphs import dominators

        base = _combined_step_graph(fig8.first, fig8.second)
        shared = fig8.d_expected.nodes()
        for dominator in dominators(fig8.d_expected):
            bits = {e: 0 if e in dominator else 1 for e in shared}
            schedule = _realizes_bits(fig8.first, fig8.second, base, bits)
            assert (schedule is not None) == fig8.is_desirable(dominator)


class TestPropagateUnits:
    def test_no_units_is_identity_shape(self):
        formula = CnfFormula.parse("(a | b) & (~a | c)")
        result = propagate_units(formula)
        assert isinstance(result, CnfFormula)
        assert len(result) == 2

    def test_unit_chain_resolves_true(self):
        formula = CnfFormula.parse("(a) & (~a | b)")
        assert propagate_units(formula) is True

    def test_contradiction_resolves_false(self):
        formula = CnfFormula.parse("(a) & (~a)")
        assert propagate_units(formula) is False

    def test_propagation_shrinks_clauses(self):
        formula = CnfFormula.parse("(a) & (~a | b | c) & (c | d)")
        result = propagate_units(formula)
        assert isinstance(result, CnfFormula)
        assert all(len(clause) >= 2 for clause in result.clauses)

    def test_pipeline_handles_units(self):
        assert decide_satisfiability_via_safety(
            CnfFormula.parse("(a) & (~a | b)")
        )
        assert not decide_satisfiability_via_safety(
            CnfFormula.parse("(a) & (~a)")
        )
