"""DistributedDatabase = (E, m, σ) — §2 model tests."""

import pytest

from repro.core import DistributedDatabase
from repro.errors import DatabaseError


class TestConstruction:
    def test_basic(self):
        db = DistributedDatabase({"x": 1, "y": 2})
        assert db.sites == 2
        assert db.entities == ["x", "y"]
        assert db.site_of("x") == 1

    def test_sites_defaults_to_max_used(self):
        db = DistributedDatabase({"x": 3})
        assert db.sites == 3

    def test_explicit_extra_sites_allowed(self):
        db = DistributedDatabase({"x": 1}, sites=5)
        assert db.sites == 5
        assert db.entities_at(4) == []

    def test_declared_sites_below_used_rejected(self):
        with pytest.raises(DatabaseError):
            DistributedDatabase({"x": 3}, sites=2)

    def test_empty_rejected(self):
        with pytest.raises(DatabaseError):
            DistributedDatabase({})

    @pytest.mark.parametrize("bad_site", [0, -1, "1", 1.5])
    def test_bad_site_rejected(self, bad_site):
        with pytest.raises(DatabaseError):
            DistributedDatabase({"x": bad_site})

    @pytest.mark.parametrize("bad_entity", ["", 42, None])
    def test_bad_entity_rejected(self, bad_entity):
        with pytest.raises(DatabaseError):
            DistributedDatabase({bad_entity: 1})


class TestFactories:
    def test_single_site(self):
        db = DistributedDatabase.single_site(["a", "b", "c"])
        assert db.sites == 1
        assert all(db.site_of(entity) == 1 for entity in db.entities)

    def test_one_entity_per_site(self):
        db = DistributedDatabase.one_entity_per_site(["a", "b", "c"])
        assert db.sites == 3
        assert {db.site_of(e) for e in db.entities} == {1, 2, 3}


class TestQueries:
    @pytest.fixture
    def db(self):
        return DistributedDatabase({"x": 1, "y": 1, "z": 2})

    def test_entities_at(self, db):
        assert db.entities_at(1) == ["x", "y"]
        assert db.entities_at(2) == ["z"]

    def test_same_site(self, db):
        assert db.same_site("x", "y")
        assert not db.same_site("x", "z")

    def test_unknown_entity(self, db):
        with pytest.raises(DatabaseError):
            db.site_of("nope")

    def test_contains_len(self, db):
        assert "x" in db and "q" not in db
        assert len(db) == 3

    def test_equality(self, db):
        assert db == DistributedDatabase({"x": 1, "y": 1, "z": 2})
        assert db != DistributedDatabase({"x": 1, "y": 1, "z": 2}, sites=3)
