"""Final-state (Herbrand) serializability — the paper's definition —
against the conflict test the library uses everywhere.

With the §2 update semantics every write first reads its own entity, so
there are no blind writes and the two notions coincide; these tests
turn that textbook fact into a machine-checked invariant of the
implementation.
"""

import random

import pytest

from repro.core.herbrand import (
    herbrand_state_of,
    is_final_state_serializable,
    serializability_tests_agree,
)
from repro.core.schedule import all_legal_schedules
from repro.workloads import figure_1, random_pair_system, random_total_order_pair


class TestHerbrandState:
    def test_serial_schedules_differ_when_order_matters(self, simple_unsafe_pair):
        s12 = simple_unsafe_pair.serial_schedule(["T1", "T2"])
        s21 = simple_unsafe_pair.serial_schedule(["T2", "T1"])
        assert herbrand_state_of(s12) != herbrand_state_of(s21)

    def test_untouched_entities_keep_initial_value(self, two_site_db):
        from repro.core import TransactionBuilder, TransactionSystem

        builder = TransactionBuilder("T", two_site_db)
        builder.access("x")
        system = TransactionSystem([builder.build()])
        schedule = system.serial_schedule(["T"])
        state = herbrand_state_of(schedule)
        assert state["y"] == ("init", "y")
        assert state["x"][0] == "f"

    def test_state_extension_independent_for_serial(self, simple_unsafe_pair):
        """Different linear extensions of the same serial execution give
        the same symbolic state (temps depend only on per-entity
        history)."""
        base = simple_unsafe_pair.serial_schedule(["T1", "T2"])
        state = herbrand_state_of(base)
        # Rebuild with another extension of T1 (if any).
        first, second = simple_unsafe_pair.pair()
        from repro.core import Schedule, ScheduledStep

        for extension in first.linear_extensions(limit=4):
            steps = [ScheduledStep("T1", s) for s in extension] + [
                ScheduledStep("T2", s) for s in second.a_linear_extension()
            ]
            assert herbrand_state_of(Schedule(simple_unsafe_pair, steps)) == state


class TestDefinitionAgreement:
    def test_figure_1_witness_not_final_state_serializable(self):
        from repro.core import decide_safety

        system = figure_1()
        witness = decide_safety(system).witness
        assert not is_final_state_serializable(witness)

    @pytest.mark.parametrize("seed", range(12))
    def test_exhaustive_agreement_on_random_pairs(self, seed):
        """Every legal schedule of small random systems: the conflict
        test and the definitional Herbrand test agree."""
        rng = random.Random(seed)
        system = random_pair_system(
            rng, sites=rng.choice([1, 2]), entities=rng.randint(2, 3),
            shared=2, cross_arcs=rng.randint(0, 2),
        )
        checked = 0
        for schedule in all_legal_schedules(system, limit=40):
            assert serializability_tests_agree(schedule)
            checked += 1
        assert checked > 0

    @pytest.mark.parametrize("seed", range(8))
    def test_agreement_on_centralized_pairs(self, seed):
        rng = random.Random(100 + seed)
        system, _, _ = random_total_order_pair(rng, entities=3)
        for schedule in all_legal_schedules(system, limit=30):
            assert serializability_tests_agree(schedule)

    def test_agreement_on_three_transaction_system(self):
        from repro.core import DistributedDatabase, TransactionBuilder, TransactionSystem

        db = DistributedDatabase.single_site(["a", "b", "c"])
        transactions = []
        for name, entities in (
            ("T1", ["a", "b"]),
            ("T2", ["b", "c"]),
            ("T3", ["c", "a"]),
        ):
            builder = TransactionBuilder(name, db)
            previous = None
            for entity in entities:
                for step in builder.access(entity):
                    if previous is not None:
                        builder.precede(previous, step)
                    previous = step
            transactions.append(builder.build())
        system = TransactionSystem(transactions)
        for schedule in all_legal_schedules(system, limit=60):
            assert serializability_tests_agree(schedule)
