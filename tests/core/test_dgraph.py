"""D(T1, T2) — Definition 1 — and dominators over it."""

import random

import pytest

from repro.core import (
    DistributedDatabase,
    TransactionBuilder,
    d_graph,
    d_graph_of_total_orders,
    dominators_of,
    is_d_strongly_connected,
    is_dominator_of,
    shared_locked_entities,
    some_dominator_of,
)
from repro.workloads import figure_3, figure_5, random_pair_system


class TestVertexSet:
    def test_only_shared_entities(self):
        db = DistributedDatabase({"x": 1, "y": 1, "z": 2})
        t1 = TransactionBuilder("T1", db)
        t1.access("x")
        t1.access("y")
        t2 = TransactionBuilder("T2", db)
        t2.access("x")
        t2.access("z")
        first, second = t1.build(), t2.build()
        assert shared_locked_entities(first, second) == ["x"]
        assert d_graph(first, second).nodes() == ["x"]

    def test_no_self_loops(self, simple_unsafe_pair):
        graph = d_graph(*simple_unsafe_pair.pair())
        assert all(tail != head for tail, head in graph.arcs())


class TestArcSemantics:
    def test_funnel_pair_gives_single_arc(self, simple_unsafe_pair):
        # T1: x before z; T2: z before x -> only (x, z) qualifies... no:
        # arc (x,z) needs Lx <1 Uz (yes) and Lz <2 Ux (yes) -> arc.
        # arc (z,x) needs Lz <1 Ux (no: z after x in T1).
        graph = d_graph(*simple_unsafe_pair.pair())
        assert set(graph.arcs()) == {("x", "z")}

    def test_two_phase_pair_gives_complete_digraph(self, simple_safe_pair):
        graph = d_graph(*simple_safe_pair.pair())
        assert set(graph.arcs()) == {("x", "z"), ("z", "x")}

    def test_argument_order_reverses_arcs(self, simple_unsafe_pair):
        first, second = simple_unsafe_pair.pair()
        forward = set(d_graph(first, second).arcs())
        backward = set(d_graph(second, first).arcs())
        assert backward == {(b, a) for a, b in forward}

    def test_concurrent_lock_unlock_gives_no_arc(self):
        # Cross-site steps left unordered do not satisfy "precedes".
        db = DistributedDatabase({"x": 1, "z": 2})
        t1 = TransactionBuilder("T1", db)
        t1.access("x")
        t1.access("z")
        t2 = TransactionBuilder("T2", db)
        t2.access("x")
        t2.access("z")
        graph = d_graph(t1.build(), t2.build())
        assert graph.arcs() == []


class TestAgainstTotalOrderVariant:
    @pytest.mark.parametrize("seed", range(25))
    def test_total_order_d_matches_transaction_d(self, seed):
        """For totally ordered transactions the two constructions agree."""
        rng = random.Random(seed)
        from repro.workloads import random_total_order_pair

        system, t1, t2 = random_total_order_pair(rng, entities=4)
        first, second = system.pair()
        from_tx = set(d_graph(first, second).arcs())
        from_orders = set(d_graph_of_total_orders(t1, t2).arcs())
        assert from_tx == from_orders

    @pytest.mark.parametrize("seed", range(25))
    def test_extension_d_contains_transaction_d(self, seed):
        """Linear extensions only add precedences, so D(T1,T2) ⊆ D(t1,t2)."""
        rng = random.Random(500 + seed)
        system = random_pair_system(
            rng, sites=3, entities=4, shared=3, cross_arcs=1
        )
        first, second = system.pair()
        base = set(d_graph(first, second).arcs())
        t1 = first.a_linear_extension()
        t2 = second.a_linear_extension()
        extended = set(d_graph_of_total_orders(t1, t2).arcs())
        assert base <= extended


class TestDominators:
    def test_figure_3_dominator(self):
        graph = d_graph(*figure_3().pair())
        assert is_dominator_of(graph, {"x", "y"})
        assert not is_dominator_of(graph, {"x"})  # y -> x enters

    def test_figure_5_unique_dominator(self):
        graph = d_graph(*figure_5().pair())
        assert list(dominators_of(graph)) == [frozenset({"x1", "x2"})]

    def test_some_dominator_none_iff_strongly_connected(
        self, simple_safe_pair, simple_unsafe_pair
    ):
        safe_graph = d_graph(*simple_safe_pair.pair())
        assert some_dominator_of(safe_graph) is None
        unsafe_graph = d_graph(*simple_unsafe_pair.pair())
        assert some_dominator_of(unsafe_graph) == frozenset({"x"})

    def test_is_d_strongly_connected(self, simple_safe_pair, simple_unsafe_pair):
        assert is_d_strongly_connected(*simple_safe_pair.pair())
        assert not is_d_strongly_connected(*simple_unsafe_pair.pair())
