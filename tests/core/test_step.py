"""Step values and their paper-style rendering."""

from repro.core import Step, StepKind, lock, unlock, update


class TestConstruction:
    def test_factories(self):
        assert lock("x") == Step(StepKind.LOCK, "x")
        assert unlock("x") == Step(StepKind.UNLOCK, "x")
        assert update("x", 2) == Step(StepKind.UPDATE, "x", 2)

    def test_kind_predicates(self):
        assert lock("x").is_lock
        assert unlock("x").is_unlock
        assert update("x").is_update
        assert not lock("x").is_update


class TestRendering:
    def test_paper_notation(self):
        assert str(lock("x")) == "Lx"
        assert str(unlock("x")) == "Ux"
        assert str(update("x")) == "x"
        assert str(update("x", 3)) == "x#3"


class TestValueSemantics:
    def test_equality_and_hash(self):
        assert lock("x") == lock("x")
        assert hash(lock("x")) == hash(lock("x"))
        assert lock("x") != unlock("x")
        assert update("x", 0) != update("x", 1)

    def test_usable_in_sets(self):
        steps = {lock("x"), lock("x"), unlock("x")}
        assert len(steps) == 2

    def test_frozen(self):
        import dataclasses

        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            lock("x").entity = "y"  # type: ignore[misc]
