"""Transaction validation — every §2 constraint, including failure
injection for each way a transaction can be malformed."""

import pytest

from repro.core import (
    DistributedDatabase,
    Step,
    StepKind,
    Transaction,
    TransactionBuilder,
)
from repro.errors import (
    LockingError,
    SiteOrderError,
    TransactionError,
)


@pytest.fixture
def db():
    return DistributedDatabase({"x": 1, "y": 1, "z": 2})


def triple(entity):
    return (
        Step(StepKind.LOCK, entity),
        Step(StepKind.UPDATE, entity),
        Step(StepKind.UNLOCK, entity),
    )


class TestBuilderHappyPath:
    def test_access_produces_valid_transaction(self, db):
        builder = TransactionBuilder("T", db)
        builder.access("x")
        builder.access("z")
        tx = builder.build()
        assert len(tx) == 6
        assert set(tx.locked_entities()) == {"x", "z"}

    def test_site_chain_is_automatic(self, db):
        builder = TransactionBuilder("T", db)
        lx, ux = builder.lock("x"), None
        builder.update("x")
        ux = builder.unlock("x")
        ly = builder.lock("y")
        builder.update("y")
        builder.unlock("y")
        tx = builder.build()
        # x steps precede y steps: same site, appended later.
        assert tx.precedes(ux, ly)

    def test_cross_site_steps_unordered_without_precede(self, db):
        builder = TransactionBuilder("T", db)
        lx, _, _ = builder.access("x")
        lz, _, _ = builder.access("z")
        tx = builder.build()
        assert tx.concurrent(lx, lz)

    def test_precede_orders_across_sites(self, db):
        builder = TransactionBuilder("T", db)
        _, _, ux = builder.access("x")
        lz, _, _ = builder.access("z")
        builder.precede(ux, lz)
        tx = builder.build()
        assert tx.precedes(ux, lz)

    def test_duplicate_step_rejected(self, db):
        builder = TransactionBuilder("T", db)
        builder.lock("x")
        with pytest.raises(TransactionError):
            builder.lock("x")


class TestLockingConstraints:
    def test_lock_without_unlock_rejected(self, db):
        steps = [Step(StepKind.LOCK, "x"), Step(StepKind.UPDATE, "x")]
        with pytest.raises(LockingError):
            Transaction("T", db, steps, [tuple(steps)])

    def test_unlock_without_lock_rejected(self, db):
        steps = [Step(StepKind.UPDATE, "x"), Step(StepKind.UNLOCK, "x")]
        with pytest.raises(LockingError):
            Transaction("T", db, steps, [tuple(steps)])

    def test_unlock_before_lock_rejected(self, db):
        l, u_, un = triple("x")
        with pytest.raises(LockingError):
            Transaction("T", db, [un, u_, l], [(un, u_), (u_, l)])

    def test_no_update_between_pair_rejected(self, db):
        # "superfluously locked": Lx-Ux with the update outside.
        l, upd, un = triple("x")
        with pytest.raises(LockingError):
            Transaction("T", db, [l, un, upd], [(l, un), (un, upd)])

    def test_update_outside_pair_rejected(self, db):
        l, upd, un = triple("x")
        second_update = Step(StepKind.UPDATE, "x", 1)
        with pytest.raises(LockingError):
            Transaction(
                "T",
                db,
                [l, upd, un, second_update],
                [(l, upd), (upd, un), (un, second_update)],
            )

    def test_unlocked_update_rejected(self, db):
        upd = Step(StepKind.UPDATE, "x")
        with pytest.raises(LockingError):
            Transaction("T", db, [upd], [])

    def test_multiple_updates_inside_pair_allowed(self, db):
        l, upd, un = triple("x")
        upd2 = Step(StepKind.UPDATE, "x", 1)
        tx = Transaction(
            "T", db, [l, upd, upd2, un], [(l, upd), (upd, upd2), (upd2, un)]
        )
        assert len(tx.update_steps("x")) == 2

    def test_validate_locking_false_skips_checks(self, db):
        upd = Step(StepKind.UPDATE, "x")
        tx = Transaction("T", db, [upd], [], validate_locking=False)
        assert len(tx) == 1


class TestStructuralConstraints:
    def test_unknown_entity_rejected(self, db):
        l, upd, un = triple("q")
        with pytest.raises(TransactionError):
            Transaction("T", db, [l, upd, un], [(l, upd), (upd, un)])

    def test_same_site_steps_must_be_ordered(self, db):
        # x and y are both at site 1; leaving them unordered is illegal.
        lx, ux_, unx = triple("x")
        ly, uy_, uny = triple("y")
        with pytest.raises(SiteOrderError):
            Transaction(
                "T",
                db,
                [lx, ux_, unx, ly, uy_, uny],
                [(lx, ux_), (ux_, unx), (ly, uy_), (uy_, uny)],
            )

    def test_cyclic_precedence_rejected(self, db):
        l, upd, un = triple("x")
        with pytest.raises(TransactionError):
            Transaction(
                "T", db, [l, upd, un], [(l, upd), (upd, un), (un, l)]
            )

    def test_empty_name_rejected(self, db):
        with pytest.raises(TransactionError):
            Transaction("", db, [], [])

    def test_duplicate_steps_rejected(self, db):
        l, upd, un = triple("x")
        with pytest.raises(TransactionError):
            Transaction("T", db, [l, l, upd, un], [])


class TestQueries:
    @pytest.fixture
    def tx(self, db):
        builder = TransactionBuilder("T", db)
        builder.access("x")
        builder.access("z")
        return builder.build()

    def test_lock_unlock_lookup(self, tx):
        assert tx.lock_step("x") == Step(StepKind.LOCK, "x")
        assert tx.unlock_step("z") == Step(StepKind.UNLOCK, "z")
        assert tx.lock_step("nope") is None

    def test_sites_used(self, tx):
        assert tx.sites_used() == {1, 2}

    def test_steps_at_site_in_order(self, tx):
        names = [str(step) for step in tx.steps_at_site(1)]
        assert names == ["Lx", "x", "Ux"]

    def test_is_totally_ordered(self, db):
        builder = TransactionBuilder("T", db)
        builder.access("x")
        assert builder.build().is_totally_ordered()
        builder2 = TransactionBuilder("T", db)
        builder2.access("x")
        builder2.access("z")
        assert not builder2.build().is_totally_ordered()

    def test_linear_extensions_compatible(self, tx):
        extensions = list(tx.linear_extensions(limit=50))
        assert extensions
        assert all(tx.is_linear_extension(ext) for ext in extensions)

    def test_with_precedences_returns_strengthened_copy(self, tx):
        ux = tx.unlock_step("x")
        lz = tx.lock_step("z")
        stronger = tx.with_precedences([(ux, lz)])
        assert stronger.precedes(ux, lz)
        assert tx.concurrent(ux, lz)

    def test_with_precedences_rejects_cycles(self, tx):
        ux = tx.unlock_step("x")
        lz = tx.lock_step("z")
        stronger = tx.with_precedences([(ux, lz)])
        with pytest.raises(TransactionError):
            stronger.with_precedences([(lz, ux)])

    def test_describe_mentions_sites(self, tx):
        text = tx.describe()
        assert "site 1" in text and "site 2" in text
