"""Deadlock geometry: grid analysis vs the simulator's lock manager.

The paper remarks (§6) that in the centralized case deadlocks can be
studied side by side with correctness; these tests machine-check the
correspondence between the geometric deadlock states of the coordinated
plane and actual lock-manager deadlocks.
"""

import random

import pytest

from repro.core import GeometricPicture
from repro.sim import RandomDriver, SimulationEngine, run_once
from repro.workloads import random_total_order_pair


def replay_prefix(system, t1, t2, path):
    """Drive the engine along the curve prefix; return the engine."""
    engine = SimulationEngine(system)
    name1, name2 = system.names
    for (i0, j0), (i1, j1) in zip(path, path[1:]):
        if i1 == i0 + 1:
            engine._execute(name1, t1[i0])
        else:
            engine._execute(name2, t2[j0])
    return engine


class TestDeadlockGeometry:
    def test_crossing_two_phase_pair_has_deadlock_state(self):
        from repro.core import DistributedDatabase, TransactionBuilder, TransactionSystem

        db = DistributedDatabase.single_site(["x", "z"])
        t1 = TransactionBuilder("t1", db)
        t1.lock("x")
        t1.update("x")
        t1.lock("z")
        t1.update("z")
        t1.unlock("x")
        t1.unlock("z")
        t2 = TransactionBuilder("t2", db)
        t2.lock("z")
        t2.update("z")
        t2.lock("x")
        t2.update("x")
        t2.unlock("z")
        t2.unlock("x")
        first, second = t1.build(), t2.build()
        picture = GeometricPicture(
            first.a_linear_extension(), second.a_linear_extension()
        )
        assert picture.deadlock_possible()

    def test_ordered_acquisition_has_none(self):
        from repro.core import DistributedDatabase, TransactionBuilder

        db = DistributedDatabase.single_site(["x", "z"])
        orders = []
        for name in ("t1", "t2"):
            builder = TransactionBuilder(name, db)
            builder.lock("x")
            builder.update("x")
            builder.lock("z")
            builder.update("z")
            builder.unlock("x")
            builder.unlock("z")
            orders.append(builder.build().a_linear_extension())
        picture = GeometricPicture(*orders)
        assert not picture.deadlock_possible()

    @pytest.mark.parametrize("seed", range(40))
    def test_geometric_deadlock_replays_on_engine(self, seed):
        """Every geometric deadlock state converts into an actual engine
        state with all transactions blocked."""
        rng = random.Random(seed)
        system, t1, t2 = random_total_order_pair(rng, entities=rng.randint(2, 5))
        picture = GeometricPicture(t1, t2)
        path = picture.find_deadlock_state()
        if path is None:
            return
        engine = replay_prefix(system, t1, t2, path)
        candidates, blocked = engine._executable()
        assert candidates == []  # nothing can move
        assert blocked  # both are waiting on locks

    @pytest.mark.parametrize("seed", range(30))
    def test_no_geometric_deadlock_means_no_engine_deadlock(self, seed):
        """If the plane has no deadlock state, no random run deadlocks."""
        rng = random.Random(500 + seed)
        system, t1, t2 = random_total_order_pair(rng, entities=rng.randint(2, 4))
        picture = GeometricPicture(t1, t2)
        if picture.deadlock_possible():
            return
        for run_seed in range(15):
            result = run_once(system, RandomDriver(run_seed))
            assert result.completed

    @pytest.mark.parametrize("seed", range(30))
    def test_deadlock_and_safety_are_independent(self, seed):
        """Safety and deadlock-freedom are different axes; both
        combinations occur in random workloads (counted globally in the
        E12 bench — here we only assert the analyses run together)."""
        rng = random.Random(900 + seed)
        _, t1, t2 = random_total_order_pair(rng, entities=3)
        picture = GeometricPicture(t1, t2)
        # Both analyses on the same picture must be self-consistent.
        deadlock = picture.deadlock_possible()
        unsafe = picture.find_nonserializable_curve() is not None
        assert deadlock in (True, False)
        assert unsafe in (True, False)
