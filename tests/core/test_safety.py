"""The safety deciders and their agreement — Theorems 1-2, the exact
bit-vector decider, and the exhaustive ground truth."""

import random

import pytest

from repro.core import (
    TransactionSystem,
    decide_safety,
    decide_safety_exact,
    decide_safety_exhaustive,
    is_safe_sufficient,
    is_safe_two_site,
)
from repro.core.safety import sites_of_pair
from repro.errors import TransactionError
from repro.workloads import (
    figure_1,
    figure_3,
    figure_5,
    random_pair_system,
)


class TestTheorem1:
    def test_strongly_connected_reports_safe(self, simple_safe_pair):
        assert is_safe_sufficient(*simple_safe_pair.pair()) is True

    def test_not_connected_is_silent(self, simple_unsafe_pair):
        assert is_safe_sufficient(*simple_unsafe_pair.pair()) is None

    def test_silent_on_figure_5_despite_safety(self):
        # The criterion is one-sided: Fig. 5 is safe but D is not SC.
        assert is_safe_sufficient(*figure_5().pair()) is None

    @pytest.mark.parametrize("seed", range(30))
    def test_sufficiency_never_contradicts_ground_truth(self, seed):
        rng = random.Random(seed)
        system = random_pair_system(
            rng, sites=rng.randint(1, 4), entities=rng.randint(2, 4),
            shared=rng.randint(2, 3), cross_arcs=rng.randint(0, 2),
        )
        if is_safe_sufficient(*system.pair()) is True:
            assert decide_safety_exhaustive(system).safe


class TestTheorem2:
    def test_two_site_exact_characterization(
        self, simple_safe_pair, simple_unsafe_pair
    ):
        assert is_safe_two_site(*simple_safe_pair.pair())
        assert not is_safe_two_site(*simple_unsafe_pair.pair())

    def test_refuses_three_site_pairs(self):
        first, second = figure_5().pair()  # four sites
        with pytest.raises(TransactionError):
            is_safe_two_site(first, second)

    @pytest.mark.parametrize("seed", range(60))
    def test_matches_exhaustive_at_two_sites(self, seed):
        rng = random.Random(seed)
        system = random_pair_system(
            rng, sites=rng.choice([1, 2]), entities=rng.randint(2, 5),
            shared=rng.randint(2, 4), cross_arcs=rng.randint(0, 3),
        )
        first, second = system.pair()
        assert is_safe_two_site(first, second) == (
            decide_safety_exhaustive(system).safe
        )


class TestExactDecider:
    @pytest.mark.parametrize("seed", range(60))
    def test_matches_exhaustive_at_any_sites(self, seed):
        rng = random.Random(7000 + seed)
        system = random_pair_system(
            rng, sites=rng.randint(1, 4), entities=rng.randint(2, 4),
            shared=rng.randint(2, 4), cross_arcs=rng.randint(0, 3),
        )
        first, second = system.pair()
        exact = decide_safety_exact(first, second)
        exhaustive = decide_safety_exhaustive(system)
        assert exact.safe == exhaustive.safe
        if not exact.safe:
            assert exact.witness is not None
            assert not exact.witness.is_serializable()

    def test_figure_5_decided_safe(self):
        verdict = decide_safety_exact(*figure_5().pair())
        assert verdict.safe

    def test_trivial_with_fewer_than_two_shared(self):
        rng = random.Random(1)
        system = random_pair_system(
            rng, sites=2, entities=3, shared=1, cross_arcs=0
        )
        verdict = decide_safety_exact(*system.pair())
        assert verdict.safe and verdict.method == "trivial"

    def test_dominator_limit_raises_when_hit(self, simple_unsafe_pair):
        first, second = simple_unsafe_pair.pair()
        # limit=0 would return unsafe before the limit on this instance;
        # build a SAFE multi-dominator system instead:
        verdict = decide_safety_exact(first, second, dominator_limit=10)
        assert not verdict.safe  # found witness before limit


class TestLemma1Decider:
    @pytest.mark.parametrize("seed", range(25))
    def test_agrees_with_exact(self, seed):
        from repro.core.safety import decide_safety_via_lemma_1

        rng = random.Random(5000 + seed)
        system = random_pair_system(
            rng, sites=rng.randint(1, 3), entities=rng.randint(2, 4),
            shared=rng.randint(2, 3), cross_arcs=rng.randint(0, 2),
        )
        first, second = system.pair()
        lemma = decide_safety_via_lemma_1(first, second)
        exact = decide_safety_exact(first, second)
        assert lemma.safe == exact.safe
        if not lemma.safe and lemma.witness is not None:
            assert not lemma.witness.is_serializable()

    def test_pair_limit_guard(self):
        from repro.core.safety import decide_safety_via_lemma_1

        rng = random.Random(1)
        # A SAFE pair with many extensions: enumeration must run to the
        # limit because no unsafe pair exists to exit early on.
        system = random_pair_system(
            rng, sites=4, entities=4, shared=4, two_phase=True
        )
        first, second = system.pair()
        with pytest.raises(TransactionError):
            decide_safety_via_lemma_1(first, second, pair_limit=3)


class TestNaiveAblationReference:
    @pytest.mark.parametrize("seed", range(30))
    def test_naive_and_pruned_agree(self, seed):
        """The dominator pruning must never change the verdict."""
        from repro.core.safety import decide_safety_exact_naive

        rng = random.Random(4000 + seed)
        system = random_pair_system(
            rng, sites=rng.randint(1, 4), entities=rng.randint(2, 4),
            shared=rng.randint(2, 4), cross_arcs=rng.randint(0, 3),
        )
        first, second = system.pair()
        assert (
            decide_safety_exact(first, second).safe
            == decide_safety_exact_naive(first, second).safe
        )

    def test_naive_witnesses_are_nonserializable(self, simple_unsafe_pair):
        from repro.core.safety import decide_safety_exact_naive

        verdict = decide_safety_exact_naive(*simple_unsafe_pair.pair())
        assert not verdict.safe
        assert not verdict.witness.is_serializable()


class TestFrontEnd:
    def test_single_transaction_trivially_safe(self, two_site_db):
        from repro.core import TransactionBuilder

        t = TransactionBuilder("T", two_site_db)
        t.access("x")
        verdict = decide_safety(TransactionSystem([t.build()]))
        assert verdict.safe and verdict.method == "trivial"

    def test_two_site_safe_via_theorem_2(self, simple_safe_pair):
        verdict = decide_safety(simple_safe_pair)
        assert verdict.safe and verdict.method == "theorem-2"

    def test_two_site_unsafe_with_certificate(self, simple_unsafe_pair):
        verdict = decide_safety(simple_unsafe_pair)
        assert not verdict.safe
        assert verdict.method == "theorem-2"
        assert verdict.certificate is not None
        assert verdict.certificate.verify()
        assert verdict.witness is verdict.certificate.schedule

    def test_certificate_can_be_skipped(self, simple_unsafe_pair):
        verdict = decide_safety(simple_unsafe_pair, want_certificate=False)
        assert not verdict.safe and verdict.certificate is None

    def test_multisite_routes_to_exact(self):
        verdict = decide_safety(figure_5())
        assert verdict.safe
        assert verdict.method in ("theorem-1", "exact-bit-vector")

    def test_verdict_truthiness(self, simple_safe_pair, simple_unsafe_pair):
        assert decide_safety(simple_safe_pair)
        assert not decide_safety(simple_unsafe_pair)

    def test_figures_regression(self):
        assert not decide_safety(figure_1()).safe
        assert not decide_safety(figure_3()).safe
        assert decide_safety(figure_5()).safe

    def test_sites_of_pair(self, simple_unsafe_pair):
        assert sites_of_pair(*simple_unsafe_pair.pair()) == {1, 2}
