"""The geometric method (§3, Fig. 2, Proposition 1)."""

import random

import pytest

from repro.core import GeometricPicture, d_graph_of_total_orders
from repro.graphs import is_strongly_connected
from repro.workloads import figure_2_total_orders, random_total_order_pair


@pytest.fixture
def fig2():
    _, t1, t2 = figure_2_total_orders()
    return GeometricPicture(t1, t2)


class TestRectangles:
    def test_shared_entities_get_rectangles(self, fig2):
        assert sorted(fig2.rectangles) == ["x", "y", "z"]

    def test_rectangle_bounds_follow_lock_positions(self, fig2):
        rect = fig2.rectangles["x"]
        # t1 = Lx Ly x y Ux Uy Lz z Uz: Lx at 1, Ux at 5.
        assert (rect.x_lo, rect.x_hi) == (1, 4)

    def test_unshared_entity_has_no_rectangle(self):
        from repro.core import DistributedDatabase, TransactionBuilder

        db = DistributedDatabase.single_site(["a", "b"])
        t1 = TransactionBuilder("t1", db)
        t1.access("a")
        t1.access("b")
        t2 = TransactionBuilder("t2", db)
        t2.access("a")
        pic = GeometricPicture(
            t1.build().a_linear_extension(), t2.build().a_linear_extension()
        )
        assert list(pic.rectangles) == ["a"]

    def test_forbidden_points(self, fig2):
        rect = fig2.rectangles["x"]
        assert fig2.is_forbidden(rect.x_lo, rect.y_lo)
        assert fig2.is_forbidden(rect.x_hi, rect.y_hi)
        assert not fig2.is_forbidden(0, 0)
        assert not fig2.is_forbidden(fig2.m1, fig2.m2)


class TestCurves:
    def test_serial_curves_are_legal(self, fig2):
        right_then_up = [1] * fig2.m1 + [2] * fig2.m2
        up_then_right = [2] * fig2.m2 + [1] * fig2.m1
        for interleaving in (right_then_up, up_then_right):
            curve = fig2.curve_of(interleaving)
            assert fig2.is_legal_curve(curve)

    def test_serial_curves_do_not_separate(self, fig2):
        below = fig2.curve_of([1] * fig2.m1 + [2] * fig2.m2)
        assert set(fig2.bits_of_curve(below).values()) == {0}
        above = fig2.curve_of([2] * fig2.m2 + [1] * fig2.m1)
        assert set(fig2.bits_of_curve(above).values()) == {1}
        assert not fig2.separates_two_rectangles(below)

    def test_wrong_step_count_rejected(self, fig2):
        with pytest.raises(Exception):
            fig2.curve_of([1, 2])

    def test_fig2_has_separating_curve(self, fig2):
        curve = fig2.find_nonserializable_curve()
        assert curve is not None
        assert fig2.is_legal_curve(curve)
        assert fig2.separates_two_rectangles(curve)
        bits = fig2.bits_of_curve(curve)
        assert set(bits.values()) == {0, 1}

    def test_curve_to_schedule_roundtrip(self, fig2):
        curve = fig2.find_nonserializable_curve()
        steps = fig2.schedule_steps_of_curve(curve)
        assert len(steps) == fig2.m1 + fig2.m2
        assert [s for axis, s in steps if axis == 1] == fig2.t1
        assert [s for axis, s in steps if axis == 2] == fig2.t2


class TestBitRealizability:
    def test_all_zero_always_realizable(self, fig2):
        bits = {entity: 0 for entity in fig2.entities()}
        assert fig2.find_curve_with_bits(bits) is not None

    def test_all_one_always_realizable(self, fig2):
        bits = {entity: 1 for entity in fig2.entities()}
        assert fig2.find_curve_with_bits(bits) is not None

    def test_curve_realizes_requested_bits(self, fig2):
        bits = {"x": 1, "y": 1, "z": 0}
        curve = fig2.find_curve_with_bits(bits)
        if curve is not None:
            assert fig2.bits_of_curve(curve) == bits


class TestPropositionOne:
    """Proposition 1: separation <=> non-serializability, checked by
    running actual schedules on both sides."""

    @pytest.mark.parametrize("seed", range(30))
    def test_separation_iff_nonserializable(self, seed):
        from repro.core import Schedule, ScheduledStep, all_legal_schedules

        rng = random.Random(seed)
        system, t1, t2 = random_total_order_pair(rng, entities=3)
        picture = GeometricPicture(t1, t2)
        name1, name2 = system.names
        count = 0
        for schedule in all_legal_schedules(system, limit=40):
            interleaving = [
                1 if item.transaction == name1 else 2
                for item in schedule.steps
            ]
            curve = picture.curve_of(interleaving)
            assert picture.is_legal_curve(curve)
            assert picture.separates_two_rectangles(curve) == (
                not schedule.is_serializable()
            )
            count += 1
        assert count > 0

    @pytest.mark.parametrize("seed", range(30))
    def test_centralized_safety_iff_strongly_connected(self, seed):
        """The single-site case of Theorem 2, via geometry: a separating
        curve exists iff D(t1, t2) is not strongly connected."""
        rng = random.Random(1000 + seed)
        _, t1, t2 = random_total_order_pair(rng, entities=rng.randint(2, 4))
        picture = GeometricPicture(t1, t2)
        curve = picture.find_nonserializable_curve()
        connected = is_strongly_connected(d_graph_of_total_orders(t1, t2))
        assert (curve is None) == connected
