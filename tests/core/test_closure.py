"""Closure with respect to a dominator — Lemmas 2-3, Definition 3."""

import random

import pytest

from repro.core import (
    close_with_respect_to,
    closure_violations,
    d_graph,
    dominators_of,
    is_closed,
    is_dominator_of,
)
from repro.core.closure import ClosureContradiction
from repro.workloads import figure_5, random_pair_system


class TestClosureChecks:
    def test_total_orders_are_always_closed(self, rng):
        """"Two total orders are closed with respect to any dominator of
        D(t1, t2)" — §4."""
        from repro.workloads import random_total_order_pair

        for _ in range(20):
            system, _, _ = random_total_order_pair(rng, entities=3)
            first, second = system.pair()
            graph = d_graph(first, second)
            for dominator in dominators_of(graph):
                assert is_closed(first, second, dominator)

    def test_closed_system_has_no_violations(self, simple_unsafe_pair):
        first, second = simple_unsafe_pair.pair()
        graph = d_graph(first, second)
        for dominator in dominators_of(graph):
            if is_closed(first, second, dominator):
                assert closure_violations(first, second, dominator) == []


class TestCloseWithRespectTo:
    @pytest.mark.parametrize("seed", range(30))
    def test_two_site_closure_succeeds_and_preserves_dominator(self, seed):
        """Lemma 3: at two sites, closure terminates with X still a
        dominator, and the result is closed."""
        rng = random.Random(seed)
        system = random_pair_system(
            rng, sites=2, entities=rng.randint(2, 5), shared=rng.randint(2, 4),
            cross_arcs=rng.randint(0, 3),
        )
        first, second = system.pair()
        graph = d_graph(first, second)
        for dominator in dominators_of(graph):
            result = close_with_respect_to(first, second, dominator)
            assert is_closed(result.first, result.second, dominator)
            strengthened = d_graph(result.first, result.second)
            assert is_dominator_of(strengthened, dominator)

    def test_closure_adds_nothing_when_already_closed(self, simple_unsafe_pair):
        first, second = simple_unsafe_pair.pair()
        result = close_with_respect_to(first, second, {"x"})
        assert result.added_to_first == []
        assert result.added_to_second == []
        assert result.rounds == 0

    def test_figure_5_closure_contradiction(self):
        """The four-site phenomenon: closing w.r.t. the only dominator
        forces Ux1 to both precede and follow Ux2 — a cycle."""
        first, second = figure_5().pair()
        with pytest.raises(ClosureContradiction):
            close_with_respect_to(first, second, {"x1", "x2"})

    def test_round_cap_guards_termination(self, simple_unsafe_pair):
        first, second = simple_unsafe_pair.pair()
        # max_rounds=0 means "no additions allowed": either already
        # closed (fine) or a ClosureContradiction surfaces immediately.
        result = close_with_respect_to(
            first, second, {"x"}, max_rounds=0
        )
        assert result.rounds == 0
