"""The near-linear centralized safety test (the paper's [5, 14] bound)."""

import random

import pytest

from repro.core import (
    d_graph_of_total_orders,
    decide_safety_exhaustive,
    is_d_strongly_connected_fast,
    is_safe_total_orders_fast,
)
from repro.graphs import is_strongly_connected
from repro.workloads import figure_2_total_orders, random_total_order_pair


class TestAgreement:
    @pytest.mark.parametrize("seed", range(60))
    def test_matches_materialized_d_graph(self, seed):
        rng = random.Random(seed)
        _, t1, t2 = random_total_order_pair(rng, entities=rng.randint(1, 8))
        assert is_d_strongly_connected_fast(t1, t2) == is_strongly_connected(
            d_graph_of_total_orders(t1, t2)
        )

    @pytest.mark.parametrize("seed", range(20))
    def test_matches_exhaustive_safety(self, seed):
        rng = random.Random(1000 + seed)
        system, t1, t2 = random_total_order_pair(
            rng, entities=rng.randint(2, 4)
        )
        assert is_safe_total_orders_fast(t1, t2) == (
            decide_safety_exhaustive(system).safe
        )

    def test_fig2_unsafe(self):
        _, t1, t2 = figure_2_total_orders()
        assert not is_safe_total_orders_fast(t1, t2)


class TestEdgeCases:
    def test_no_shared_entities_is_safe(self):
        from repro.core import DistributedDatabase, TransactionBuilder

        db = DistributedDatabase.single_site(["a", "b"])
        t1 = TransactionBuilder("t1", db)
        t1.access("a")
        t2 = TransactionBuilder("t2", db)
        t2.access("b")
        assert is_safe_total_orders_fast(
            t1.build().a_linear_extension(), t2.build().a_linear_extension()
        )

    def test_single_shared_entity_is_safe(self):
        from repro.core import DistributedDatabase, TransactionBuilder

        db = DistributedDatabase.single_site(["a"])
        t1 = TransactionBuilder("t1", db)
        t1.access("a")
        t2 = TransactionBuilder("t2", db)
        t2.access("a")
        assert is_safe_total_orders_fast(
            t1.build().a_linear_extension(), t2.build().a_linear_extension()
        )

    def test_large_instance_fast(self):
        rng = random.Random(77)
        _, t1, t2 = random_total_order_pair(rng, entities=800)
        # Just completing quickly (and agreeing on a spot-check shape)
        # is the point; the ablation bench quantifies the speedup.
        result = is_safe_total_orders_fast(t1, t2)
        assert result in (True, False)
