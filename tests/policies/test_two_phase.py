"""Distributed two-phase locking and its safety theorem."""

import random

import pytest

from repro.core import TransactionSystem, decide_safety
from repro.errors import TransactionError
from repro.policies import (
    is_two_phase,
    lock_point,
    two_phase_completion,
    two_phase_pair_is_safe,
)
from repro.workloads import random_pair_system, random_transaction


class TestIsTwoPhase:
    def test_detects_two_phase(self, simple_safe_pair):
        first, second = simple_safe_pair.pair()
        assert is_two_phase(first) and is_two_phase(second)

    def test_detects_non_two_phase(self, simple_unsafe_pair):
        first, second = simple_unsafe_pair.pair()
        assert not is_two_phase(first)
        assert not is_two_phase(second)

    def test_concurrent_lock_unlock_is_not_two_phase(self, two_site_db):
        """Partial-order subtlety: Lz concurrent with Ux fails the
        distributed two-phase property even though no unlock strictly
        precedes a lock."""
        from repro.core import TransactionBuilder

        builder = TransactionBuilder("T", two_site_db)
        builder.access("x")
        builder.access("z")  # cross-site, unordered
        assert not is_two_phase(builder.build())

    def test_generator_two_phase_flag(self, rng):
        for _ in range(10):
            tx = random_transaction(
                "T",
                random_pair_system(rng, sites=2, entities=4).database,
                rng,
                two_phase=True,
            )
            assert is_two_phase(tx)


class TestLockPoint:
    def test_lock_point_of_total_order(self, two_site_db):
        from repro.core import TransactionBuilder

        builder = TransactionBuilder("T", two_site_db)
        lx = builder.lock("x")
        builder.update("x")
        ly = builder.lock("y")
        builder.update("y")
        builder.unlock("x")
        builder.unlock("y")
        tx = builder.build()
        assert lock_point(tx) == ly

    def test_none_for_partial_order(self, two_site_db):
        from repro.core import TransactionBuilder

        builder = TransactionBuilder("T", two_site_db)
        builder.access("x")
        builder.access("z")  # cross-site, unordered: genuinely partial
        assert lock_point(builder.build()) is None


class TestSafetyTheorem:
    def test_two_phase_pair_is_safe_chain(self, simple_safe_pair):
        assert two_phase_pair_is_safe(*simple_safe_pair.pair())

    def test_rejects_non_two_phase_input(self, simple_unsafe_pair):
        with pytest.raises(TransactionError):
            two_phase_pair_is_safe(*simple_unsafe_pair.pair())

    @pytest.mark.parametrize("seed", range(30))
    def test_random_two_phase_pairs_safe(self, seed):
        """2PL ⇒ safe at any number of sites — Theorem 1 applied."""
        rng = random.Random(seed)
        system = random_pair_system(
            rng, sites=rng.randint(1, 4), entities=rng.randint(2, 5),
            shared=rng.randint(2, 4), two_phase=True,
        )
        assert two_phase_pair_is_safe(*system.pair())
        assert decide_safety(system).safe


class TestCompletion:
    def test_completion_creates_two_phase(self, two_site_db):
        from repro.core import TransactionBuilder

        builder = TransactionBuilder("T", two_site_db)
        builder.access("x")
        builder.access("z")  # unordered cross-site: not 2PL
        tx = builder.build()
        assert not is_two_phase(tx)
        completed = two_phase_completion(tx)
        assert is_two_phase(completed)

    def test_completion_is_identity_on_two_phase(self, simple_safe_pair):
        first, _ = simple_safe_pair.pair()
        assert two_phase_completion(first) is first

    def test_completion_impossible_when_unlock_precedes_lock(
        self, simple_unsafe_pair
    ):
        first, _ = simple_unsafe_pair.pair()  # Ux before Lz by design
        with pytest.raises(TransactionError):
            two_phase_completion(first)

    def test_completion_makes_unsafe_pair_safe(self, two_site_db):
        """The classic fix: 2PL-ify both transactions of an unsafe pair
        (when possible) and the pair becomes safe."""
        from repro.core import TransactionBuilder

        t1 = TransactionBuilder("T1", two_site_db)
        t1.access("x")
        t1.access("z")
        t2 = TransactionBuilder("T2", two_site_db)
        t2.access("z")
        t2.access("x")
        loose = TransactionSystem([t1.build(), t2.build()])
        assert not decide_safety(loose).safe
        tightened = TransactionSystem(
            [two_phase_completion(tx) for tx in loose.transactions]
        )
        assert decide_safety(tightened).safe
