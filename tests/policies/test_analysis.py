"""The §6 policy correspondence: distributed policy safe iff its
centralized image is."""

import random

import pytest

from repro.policies import (
    centralized_image,
    centralized_image_is_safe,
    policy_sample_is_safe,
    total_order_pair_is_safe,
)
from repro.workloads import random_pair_system, random_transaction


class TestCentralizedImage:
    def test_image_contains_all_extensions(self, simple_unsafe_pair):
        first, second = simple_unsafe_pair.pair()
        image = centralized_image([first, second])
        expected = sum(
            1 for _ in first.linear_extensions()
        ) + sum(1 for _ in second.linear_extensions())
        assert len(image) == expected
        assert all(
            first.is_linear_extension(t) or second.is_linear_extension(t)
            for t in image
        )

    def test_limit_respected(self, simple_unsafe_pair):
        first, second = simple_unsafe_pair.pair()
        image = centralized_image(
            [first, second], per_transaction_limit=1
        )
        assert len(image) == 2


class TestTotalOrderPairSafety:
    def test_agrees_with_exhaustive(self, rng):
        from repro.core import decide_safety_exhaustive
        from repro.workloads import random_total_order_pair

        for _ in range(20):
            system, t1, t2 = random_total_order_pair(rng, entities=3)
            assert total_order_pair_is_safe(t1, t2) == (
                decide_safety_exhaustive(system).safe
            )


class TestPolicyEquivalence:
    @pytest.mark.parametrize("seed", range(20))
    def test_distributed_safe_iff_centralized_image_safe(self, seed):
        """§6's closing claim, machine-checked on random samples."""
        rng = random.Random(seed)
        system = random_pair_system(
            rng, sites=rng.choice([1, 2, 3]), entities=rng.randint(2, 4),
            shared=rng.randint(2, 3), cross_arcs=rng.randint(0, 2),
        )
        sample = system.transactions
        assert policy_sample_is_safe(sample) == centralized_image_is_safe(
            sample
        )

    def test_two_phase_policy_both_safe(self, rng):
        system = random_pair_system(
            rng, sites=2, entities=4, shared=3, two_phase=True
        )
        sample = system.transactions
        assert policy_sample_is_safe(sample)
        assert centralized_image_is_safe(sample)
