"""Tree (hierarchical) protocol — the non-two-phase safe family."""

import random

import pytest

from repro.core import DistributedDatabase, TransactionSystem, decide_safety
from repro.errors import ModelError
from repro.policies import (
    EntityTree,
    follows_tree_protocol,
    is_two_phase,
    random_tree_transaction,
)


@pytest.fixture
def db():
    # Entities spread over two sites.
    return DistributedDatabase(
        {"r": 1, "a": 1, "b": 2, "c": 2, "d": 1}
    )


@pytest.fixture
def tree():
    return EntityTree(
        {"r": None, "a": "r", "b": "r", "c": "a", "d": "a"}
    )


class TestEntityTree:
    def test_single_root_required(self):
        with pytest.raises(ModelError):
            EntityTree({"a": None, "b": None})
        with pytest.raises(ModelError):
            EntityTree({"a": "b", "b": "a"})

    def test_unknown_parent_rejected(self):
        with pytest.raises(ModelError):
            EntityTree({"a": None, "b": "zz"})

    def test_children(self, tree):
        assert sorted(tree.children_of("r")) == ["a", "b"]
        assert tree.children_of("c") == []


class TestProtocolCheck:
    def test_crab_walk_follows(self, db, tree, rng):
        tx = random_tree_transaction("T", db, tree, rng, walk_length=3)
        assert follows_tree_protocol(tx, tree)

    def test_orphan_lock_violates(self, db, tree):
        from repro.core import TransactionBuilder

        builder = TransactionBuilder("T", db)
        la = builder.lock("a")
        builder.update("a")
        ua = builder.unlock("a")
        lc = builder.lock("c")
        builder.update("c")
        uc = builder.unlock("c")
        builder.precede(la, lc)
        builder.precede(ua, lc)  # parent released BEFORE child locked
        builder.precede(lc, uc)
        tx = builder.build()
        order = [s for s in tx.a_linear_extension()]
        assert not follows_tree_protocol(tx, tree, order)

    def test_first_lock_anywhere(self, db, tree):
        from repro.core import TransactionBuilder

        builder = TransactionBuilder("T", db)
        builder.access("c")  # first (and only) lock: allowed anywhere
        assert follows_tree_protocol(builder.build(), tree)


class TestGeneratedWorkloads:
    @pytest.mark.parametrize("seed", range(15))
    def test_pairs_are_safe(self, db, tree, seed):
        rng = random.Random(seed)
        t1 = random_tree_transaction("T1", db, tree, rng, walk_length=4)
        t2 = random_tree_transaction("T2", db, tree, rng, walk_length=4)
        system = TransactionSystem([t1, t2])
        assert decide_safety(system).safe

    def test_long_walks_are_not_two_phase(self, db, tree):
        rng = random.Random(4)
        found_non_2pl = False
        for seed in range(20):
            tx = random_tree_transaction(
                "T", db, tree, random.Random(seed), walk_length=4
            )
            if len(tx.locked_entities()) >= 3 and not is_two_phase(tx):
                found_non_2pl = True
                break
        assert found_non_2pl

    def test_walks_respect_length(self, db, tree, rng):
        tx = random_tree_transaction("T", db, tree, rng, walk_length=2)
        assert len(tx.locked_entities()) <= 2
