"""DPLL solver, validated against brute-force model enumeration."""

import random
from itertools import product

import pytest

from repro.logic import CnfFormula, Literal, all_models, is_satisfiable, solve, verify_model


def brute_force_sat(formula: CnfFormula) -> bool:
    variables = formula.variables()
    for values in product([False, True], repeat=len(variables)):
        if formula.satisfied_by(dict(zip(variables, values))):
            return True
    return False


class TestSolve:
    def test_trivially_sat(self):
        model = solve(CnfFormula.parse("(a | b)"))
        assert model is not None
        assert verify_model(CnfFormula.parse("(a | b)"), model)

    def test_trivially_unsat(self):
        assert solve(CnfFormula.parse("(a) & (~a)")) is None

    def test_unit_propagation_chain(self):
        formula = CnfFormula.parse("(a) & (~a | b) & (~b | c)")
        model = solve(formula)
        assert model == {"a": True, "b": True, "c": True}

    def test_pure_literal(self):
        formula = CnfFormula.parse("(a | b) & (a | c)")
        model = solve(formula)
        assert model is not None and verify_model(formula, model)

    def test_model_is_complete_over_variables(self):
        formula = CnfFormula.parse("(a | b) & (c | ~c)")
        model = solve(formula)
        assert set(model) == {"a", "b", "c"}

    @pytest.mark.parametrize("seed", range(40))
    def test_matches_brute_force(self, seed):
        rng = random.Random(seed)
        variables = [f"v{i}" for i in range(rng.randint(1, 6))]
        clauses = []
        for _ in range(rng.randint(1, 10)):
            size = rng.randint(1, 3)
            clauses.append(
                [
                    Literal(rng.choice(variables), rng.random() < 0.5)
                    for _ in range(size)
                ]
            )
        formula = CnfFormula(clauses)
        expected = brute_force_sat(formula)
        assert is_satisfiable(formula) == expected
        model = solve(formula)
        if expected:
            assert verify_model(formula, model)
        else:
            assert model is None


class TestAllModels:
    def test_counts_models(self):
        formula = CnfFormula.parse("(a | b)")
        assert len(list(all_models(formula))) == 3

    def test_every_model_verifies(self):
        formula = CnfFormula.parse("(a | b) & (~a | c)")
        models = list(all_models(formula))
        assert models
        assert all(verify_model(formula, model) for model in models)

    def test_limit(self):
        formula = CnfFormula.parse("(a | ~a) & (b | ~b) & (c | ~c)")
        assert len(list(all_models(formula, limit=3))) == 3

    def test_unsat_yields_nothing(self):
        assert list(all_models(CnfFormula.parse("(a) & (~a)"))) == []
