"""CNF model, parser and the restricted-form transform."""

import random

import pytest

from repro.errors import ReductionError
from repro.logic import CnfFormula, Clause, Literal, neg, pos, to_restricted_form
from repro.logic.solver import is_satisfiable


class TestLiterals:
    def test_invert(self):
        assert ~pos("x") == neg("x")
        assert ~~pos("x") == pos("x")

    def test_str(self):
        assert str(pos("x")) == "x"
        assert str(neg("x")) == "~x"

    def test_value_under(self):
        assert pos("x").value_under({"x": True})
        assert neg("x").value_under({"x": False})


class TestClauses:
    def test_empty_clause_rejected(self):
        with pytest.raises(ReductionError):
            Clause(())

    def test_satisfied_by(self):
        clause = Clause((pos("a"), neg("b")))
        assert clause.satisfied_by({"a": True, "b": True})
        assert clause.satisfied_by({"a": False, "b": False})
        assert not clause.satisfied_by({"a": False, "b": True})


class TestParsing:
    def test_pipe_and_ampersand(self):
        formula = CnfFormula.parse("(x1 | ~x2) & (x2 | x3)")
        assert len(formula) == 2
        assert formula.variables() == ["x1", "x2", "x3"]

    def test_newline_separated(self):
        formula = CnfFormula.parse("x1 | x2\n~x1 | x3")
        assert len(formula) == 2

    def test_negation_markers(self):
        formula = CnfFormula.parse("(~a | !b | -c)")
        assert all(lit.negated for lit in formula.clauses[0])

    def test_str_roundtrip(self):
        text = "(x1 | ~x2) & (x2 | x3)"
        formula = CnfFormula.parse(text)
        assert CnfFormula.parse(str(formula)).variables() == formula.variables()

    def test_empty_rejected(self):
        with pytest.raises(ReductionError):
            CnfFormula([])


class TestRestrictedForm:
    def test_occurrence_counts(self):
        formula = CnfFormula.parse("(a | b) & (a | ~b)")
        assert formula.occurrence_counts() == {"a": (2, 0), "b": (1, 1)}

    def test_detection(self):
        assert CnfFormula.parse("(a | b) & (~a | b)").is_restricted_form()
        assert not CnfFormula.parse("(a | b | c | d)").is_restricted_form()
        assert not CnfFormula.parse(
            "(a | b) & (a | c) & (a | d)"
        ).is_restricted_form()  # a three times positive
        assert not CnfFormula.parse(
            "(~a | b) & (~a | c)"
        ).is_restricted_form()  # a twice negative


class TestToRestrictedForm:
    def test_splits_long_clauses(self):
        formula = CnfFormula.parse("(a | b | c | d | e)")
        restricted = to_restricted_form(formula)
        assert restricted.is_restricted_form()
        assert all(len(clause) <= 3 for clause in restricted.clauses)

    def test_limits_occurrences(self):
        formula = CnfFormula.parse("(a | b) & (a | c) & (a | d) & (a | e)")
        restricted = to_restricted_form(formula)
        assert restricted.is_restricted_form()

    def test_handles_negative_occurrences(self):
        formula = CnfFormula.parse("(~a | b) & (~a | c) & (a | d)")
        restricted = to_restricted_form(formula)
        assert restricted.is_restricted_form()

    @pytest.mark.parametrize("seed", range(25))
    def test_preserves_satisfiability(self, seed):
        rng = random.Random(seed)
        variables = [f"v{i}" for i in range(rng.randint(2, 5))]
        clauses = []
        for _ in range(rng.randint(1, 6)):
            size = rng.randint(1, 4)
            clauses.append(
                [
                    Literal(rng.choice(variables), rng.random() < 0.5)
                    for _ in range(size)
                ]
            )
        formula = CnfFormula(clauses)
        restricted = to_restricted_form(formula)
        assert restricted.is_restricted_form()
        assert is_satisfiable(formula) == is_satisfiable(restricted)
