"""The arena: deterministic policy × workload × fault-plan sweeps.

What the E17 acceptance hinges on: cell seeds are a pure function of
the arena seed and the cell coordinates; a memory-transport cell's
fingerprints are bit-identical when re-run standalone; every cell of a
fault-free and a faulted sweep passes the serializability audit; and
the report's JSON shape is what the benchmark gate reads.
"""

import pytest

from repro.arena import NO_FAULTS, ArenaCell, cell_seed, run_arena, run_cell
from repro.faults import FaultPlan
from repro.workloads import TrafficSpec

SPEC = TrafficSpec.from_dict(
    {
        "name": "arena-unit",
        "entities": 6,
        "sites": 2,
        "transactions": 4,
        "keys": {"distribution": "zipfian", "skew": 1.2},
        "mix": {"entities_per_txn": 2},
        "arrival": {"process": "closed", "concurrency": 3},
    }
)

OPEN_SPEC = TrafficSpec.from_dict(
    {
        "name": "arena-open",
        "entities": 6,
        "sites": 2,
        "transactions": 4,
        "keys": {"distribution": "uniform"},
        "mix": {"entities_per_txn": 2},
        "arrival": {"process": "open", "rate_per_1000_ticks": 100.0},
    }
)

HOTSPOT_PLAN = FaultPlan.from_dict(
    {
        "site_crashes": [
            {"site": 2, "at": 6, "recover_at": 14, "semantics": "freeze"}
        ],
        "grant_delays": [{"entity": "e0", "at": 2, "until": 8}],
    }
)


class TestCellSeed:
    def test_pure_function_of_coordinates(self):
        assert cell_seed(7, "2pl", "w", "none") == cell_seed(7, "2pl", "w", "none")
        assert cell_seed(7, "2pl", "w", "none") != cell_seed(8, "2pl", "w", "none")
        assert cell_seed(7, "2pl", "w", "none") != cell_seed(7, "tree", "w", "none")
        assert cell_seed(7, "2pl", "w", "none") != cell_seed(7, "2pl", "w", "hot")

    def test_fits_in_31_bits(self):
        assert 0 <= cell_seed(2**40, "p", "w", "f") < 2**31


class TestRunCell:
    @pytest.mark.parametrize("policy", ["2pl", "tree", "vetted-optimal"])
    def test_memory_cell_is_bit_deterministic(self, policy):
        first = run_cell(SPEC, policy=policy, seed=11)
        second = run_cell(SPEC, policy=policy, seed=11)
        assert first.history_fingerprint == second.history_fingerprint
        assert first.outcome_fingerprint == second.outcome_fingerprint
        assert first.committed == second.committed
        assert first.retries_total == second.retries_total

    def test_cell_passes_audit_and_counts(self):
        cell = run_cell(SPEC, policy="2pl", seed=1)
        assert cell.ok
        assert cell.transactions == SPEC.transactions
        assert cell.committed + cell.retry_exhausted + cell.errors == cell.transactions
        assert cell.seed == cell_seed(1, "2pl", SPEC.name, NO_FAULTS)
        assert cell.p50_ms is not None and cell.p50_ms > 0
        assert cell.throughput_txn_s > 0

    def test_faulted_cell_still_serializable(self):
        cell = run_cell(
            SPEC,
            policy="2pl",
            fault_plan=HOTSPOT_PLAN,
            fault_plan_name="hotspot",
            seed=1,
        )
        assert cell.ok
        assert cell.fault_plan == "hotspot"

    def test_open_loop_cell_runs(self):
        cell = run_cell(OPEN_SPEC, policy="tree", seed=2)
        assert cell.ok
        assert cell.committed == OPEN_SPEC.transactions

    def test_rates(self):
        cell = ArenaCell(
            policy="2pl",
            workload="w",
            fault_plan="none",
            seed=0,
            transport="memory",
            mode="vetted-safe",
            transactions=4,
            committed=3,
            retry_exhausted=1,
            errors=0,
            retries_total=2,
            throughput_txn_s=10.0,
            p50_ms=1.0,
            p99_ms=2.0,
            serializable=True,
            audit_complete=True,
            history_fingerprint="h",
            outcome_fingerprint="o",
            wall_seconds=0.1,
        )
        assert cell.abort_rate == pytest.approx(0.25)
        assert cell.retry_rate == pytest.approx(0.5)
        assert cell.ok

    def test_incomplete_audit_is_not_ok(self):
        cell = run_cell(SPEC, policy="2pl", seed=1)
        cell.audit_complete = False
        assert not cell.ok


class TestRunArena:
    def test_sweep_covers_cross_product(self):
        report = run_arena(
            [SPEC, OPEN_SPEC],
            policies=["2pl", "tree"],
            fault_plans=[(NO_FAULTS, None), ("hotspot", HOTSPOT_PLAN)],
            seed=7,
        )
        assert len(report.cells) == 2 * 2 * 2
        assert report.all_ok and not report.failures
        labels = {(c.policy, c.workload, c.fault_plan) for c in report.cells}
        assert ("tree", "arena-open", "hotspot") in labels

    def test_sweep_cells_match_standalone_runs(self):
        """A cell's fingerprints do not depend on what else the sweep
        ran — the property that makes per-cell baselines meaningful."""
        report = run_arena([SPEC], policies=["2pl", "tree"], seed=3)
        for cell in report.cells:
            alone = run_cell(SPEC, policy=cell.policy, seed=3)
            assert alone.history_fingerprint == cell.history_fingerprint
            assert alone.outcome_fingerprint == cell.outcome_fingerprint

    def test_to_dict_shape(self):
        report = run_arena([SPEC], policies=["2pl"], seed=0)
        payload = report.to_dict()
        assert payload["all_ok"] is True
        assert payload["policies"] == ["2pl"]
        assert payload["workloads"] == ["arena-unit"]
        assert payload["fault_plans"] == ["none"]
        (cell,) = payload["cells"]
        assert cell["policy"] == "2pl"
        assert set(cell) >= {
            "history_fingerprint",
            "outcome_fingerprint",
            "throughput_txn_s",
            "p50_ms",
            "p99_ms",
            "abort_rate",
            "retry_rate",
            "serializable",
            "audit_complete",
        }

    def test_render_mentions_every_cell(self):
        report = run_arena([SPEC], policies=["2pl"], seed=0)
        text = report.render()
        assert "arena: 1 policies × 1 workloads × 1 fault plans" in text
        assert "arena-unit" in text
        assert "1 cells in" in text
