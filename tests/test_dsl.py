"""The text DSL: parsing, validation errors, render round-trip."""

import pytest

from repro.dsl import DslError, parse_system, render_system
from repro.core import decide_safety

FIG3_LIKE = """
# comment line
database
  site 1: x y
  site 2: z

transaction T1
  site 1: Lx x Ly y Ux Uy
  site 2: Lz z Uz

transaction T2
  site 1: Ly y Lx x Uy Ux
  site 2: Lz z Uz
"""


class TestParsing:
    def test_basic_system(self):
        system = parse_system(FIG3_LIKE)
        assert system.names == ["T1", "T2"]
        assert system.database.sites == 2
        assert sorted(system.shared_locked_entities()) == ["x", "y", "z"]

    def test_verdict_matches_hand_built(self):
        system = parse_system(FIG3_LIKE)
        assert not decide_safety(system).safe

    def test_precede_directive(self):
        text = """
database
  site 1: x
  site 2: z
transaction T1
  site 1: Lx x Ux
  site 2: Lz z Uz
  precede Ux -> Lz
"""
        system = parse_system(text)
        tx = system["T1"]
        assert tx.precedes(tx.unlock_step("x"), tx.lock_step("z"))

    def test_repeated_update_token(self):
        text = """
database
  site 1: x
transaction T1
  site 1: Lx x x#1 Ux
"""
        system = parse_system(text)
        assert len(system["T1"].update_steps("x")) == 2

    def test_comments_and_blanks_ignored(self):
        system = parse_system(FIG3_LIKE + "\n\n# trailing comment\n")
        assert len(system) == 2


class TestErrors:
    def test_unknown_entity_in_step(self):
        text = """
database
  site 1: x
transaction T1
  site 1: Lq q Uq
"""
        with pytest.raises(DslError, match="cannot resolve"):
            parse_system(text)

    def test_wrong_site_for_entity(self):
        text = """
database
  site 1: x
  site 2: z
transaction T1
  site 1: Lx x Ux Lz z Uz
"""
        with pytest.raises(DslError, match="stored at site"):
            parse_system(text)

    def test_transaction_before_database(self):
        with pytest.raises(DslError, match="declare the database"):
            parse_system("transaction T1\n  site 1: Lx x Ux\n")

    def test_duplicate_entity_declaration(self):
        with pytest.raises(DslError, match="declared twice"):
            parse_system("database\n  site 1: x\n  site 2: x\n")

    def test_duplicate_step(self):
        text = """
database
  site 1: x
transaction T1
  site 1: Lx x x Ux
"""
        with pytest.raises(DslError, match="repeated"):
            parse_system(text)

    def test_locking_violation_reported_with_line_info(self):
        text = """
database
  site 1: x
transaction T1
  site 1: Lx Ux x
"""
        with pytest.raises(DslError):
            parse_system(text)

    def test_unknown_directive(self):
        with pytest.raises(DslError, match="unrecognized"):
            parse_system("database\n  site 1: x\nfrobnicate\n")

    def test_empty_input(self):
        with pytest.raises(DslError):
            parse_system("")

    def test_precede_on_undeclared_step(self):
        text = """
database
  site 1: x
  site 2: z
transaction T1
  site 1: Lx x Ux
  precede Ux -> Lz
"""
        with pytest.raises(DslError, match="not declared"):
            parse_system(text)


class TestRoundTrip:
    def test_render_then_parse_same_verdict(self):
        original = parse_system(FIG3_LIKE)
        rendered = render_system(original)
        reparsed = parse_system(rendered)
        assert reparsed.names == original.names
        assert (
            decide_safety(reparsed).safe == decide_safety(original).safe
        )

    def test_figures_round_trip(self):
        from repro.workloads import figure_1, figure_3, figure_5

        for build in (figure_1, figure_3, figure_5):
            original = build()
            reparsed = parse_system(render_system(original))
            assert (
                decide_safety(reparsed, want_certificate=False).safe
                == decide_safety(original, want_certificate=False).safe
            )
            for tx in original.transactions:
                other = reparsed[tx.name]
                assert len(other) == len(tx)
                # Same precedence relation on identical step sets.
                for a in tx.steps:
                    for b in tx.steps:
                        assert tx.precedes(a, b) == other.precedes(a, b)
