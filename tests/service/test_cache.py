"""The bounded LRU verdict cache."""

import pytest

from repro.errors import AdmissionError
from repro.service import CachedVerdict, VerdictCache

SAFE = CachedVerdict(safe=True, method="theorem-2", detail="ok")
UNSAFE = CachedVerdict(safe=False, method="theorem-2", detail="not ok")


class TestBasics:
    def test_roundtrip(self):
        cache = VerdictCache()
        cache.put(("a", "b"), SAFE)
        assert cache.get(("a", "b")) == SAFE
        assert ("a", "b") in cache
        assert len(cache) == 1

    def test_miss_returns_none(self):
        cache = VerdictCache()
        assert cache.get(("a", "b")) is None

    def test_put_refreshes_value(self):
        cache = VerdictCache()
        cache.put(("a", "b"), SAFE)
        cache.put(("a", "b"), UNSAFE)
        assert cache.get(("a", "b")) == UNSAFE
        assert len(cache) == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(AdmissionError):
            VerdictCache(0)


class TestLru:
    def test_insertion_beyond_capacity_evicts_oldest(self):
        cache = VerdictCache(2)
        cache.put(("a", "a"), SAFE)
        cache.put(("b", "b"), SAFE)
        cache.put(("c", "c"), SAFE)
        assert ("a", "a") not in cache
        assert ("b", "b") in cache and ("c", "c") in cache
        assert cache.evictions == 1

    def test_get_refreshes_recency(self):
        cache = VerdictCache(2)
        cache.put(("a", "a"), SAFE)
        cache.put(("b", "b"), SAFE)
        cache.get(("a", "a"))  # now ("b", "b") is the LRU entry
        cache.put(("c", "c"), SAFE)
        assert ("a", "a") in cache
        assert ("b", "b") not in cache


class TestCounters:
    def test_hits_plus_misses_counts_gets(self):
        cache = VerdictCache()
        cache.put(("a", "a"), SAFE)
        cache.get(("a", "a"))
        cache.get(("b", "b"))
        cache.get(("a", "a"))
        assert cache.hits == 2 and cache.misses == 1
        assert cache.hit_rate() == pytest.approx(2 / 3)

    def test_hit_rate_defined_before_any_lookup(self):
        assert VerdictCache().hit_rate() == 0.0

    def test_clear_keeps_lifetime_counters(self):
        cache = VerdictCache()
        cache.put(("a", "a"), SAFE)
        cache.get(("a", "a"))
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_stats_dict(self):
        cache = VerdictCache(8)
        cache.put(("a", "a"), SAFE)
        cache.get(("a", "a"))
        stats = cache.stats()
        assert stats["capacity"] == 8
        assert stats["entries"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 0
        assert stats["hit_rate"] == 1.0
