"""Circuit breaker, pool degradation and admission timeouts."""

from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.errors import AdmissionTimeout
from repro.service import AdmissionRegistry, CircuitBreaker, PairVettingPool
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN
from repro.service.pool import _vet_chunk


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN and not breaker.allow()

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_cooldown_half_opens_then_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=10.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.now = 9.9
        assert breaker.state == OPEN
        clock.now = 10.0
        assert breaker.state == HALF_OPEN and breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_open_failure_reopens_immediately(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=3, cooldown_seconds=5.0, clock=clock
        )
        for _ in range(3):
            breaker.record_failure()
        clock.now = 5.0
        assert breaker.state == HALF_OPEN
        breaker.record_failure()  # one strike in half-open is enough
        assert breaker.state == OPEN

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)

    def test_as_dict(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        assert breaker.as_dict() == {
            "state": "closed",
            "consecutive_failures": 1,
        }


class _BrokenExecutor:
    """Every submitted future dies of a broken process pool."""

    def submit(self, fn, chunk):
        future: Future = Future()
        future.set_exception(BrokenProcessPool("worker died"))
        return future

    def shutdown(self, **kwargs):
        pass


class _WorkingExecutor:
    """Runs chunks synchronously in-process."""

    def submit(self, fn, chunk):
        future: Future = Future()
        future.set_result(fn(chunk))
        return future

    def shutdown(self, **kwargs):
        pass


class _StuckExecutor:
    """Futures that never complete (for timeout tests)."""

    def submit(self, fn, chunk):
        return Future()

    def shutdown(self, **kwargs):
        pass


def _scripted_pool(executors, monkeypatch, **kwargs) -> PairVettingPool:
    """A pool whose executor "respawns" walk through *executors*."""
    pool = PairVettingPool(workers=2, **kwargs)
    script = list(executors)

    def next_executor():
        if pool._executor is None:
            pool._executor = script.pop(0)
        return pool._executor

    monkeypatch.setattr(pool, "_ensure_executor", next_executor)
    monkeypatch.setattr(pool, "_discard_executor", lambda: setattr(pool, "_executor", None))
    return pool


class TestPoolDegradation:
    def pairs(self, simple_safe_pair, count=4):
        first, second = simple_safe_pair.transactions
        return [(first, second)] * count

    def test_worker_death_retries_without_losing_the_batch(
        self, simple_safe_pair, monkeypatch
    ):
        pool = _scripted_pool(
            [_BrokenExecutor(), _WorkingExecutor()], monkeypatch
        )
        pairs = self.pairs(simple_safe_pair)
        verdicts = pool.vet(pairs)
        assert len(verdicts) == len(pairs)
        assert pool.retries == 1 and pool.fallbacks == 0
        # The eventual clean pass reset the breaker.
        assert pool.breaker.state == CLOSED

    def test_exhausted_retries_fall_back_inline(
        self, simple_safe_pair, monkeypatch
    ):
        pool = _scripted_pool(
            [_BrokenExecutor()] * 3, monkeypatch, max_retries=1
        )
        pairs = self.pairs(simple_safe_pair)
        verdicts = pool.vet(pairs)
        assert len(verdicts) == len(pairs)
        assert pool.fallbacks == 1
        # Inline results agree with a direct vet.
        direct = _vet_chunk([(0, *pairs[0])])[0]
        assert verdicts[0].safe == direct[1]

    def test_open_breaker_skips_the_pool_entirely(
        self, simple_safe_pair, monkeypatch
    ):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        pool = _scripted_pool([], monkeypatch, breaker=breaker)
        verdicts = pool.vet(self.pairs(simple_safe_pair))
        assert len(verdicts) == 4
        assert pool.fallbacks == 1  # never touched an executor

    def test_parallel_timeout_raises_admission_timeout(
        self, simple_safe_pair, monkeypatch
    ):
        pool = _scripted_pool([_StuckExecutor()], monkeypatch)
        with pytest.raises(AdmissionTimeout):
            pool.vet(self.pairs(simple_safe_pair), timeout=0.05)

    def test_inline_timeout_raises_admission_timeout(self, simple_safe_pair):
        pool = PairVettingPool(workers=1)
        with pytest.raises(AdmissionTimeout):
            pool.vet(self.pairs(simple_safe_pair, count=8), timeout=0.0)

    def test_health_dict_shape(self):
        pool = PairVettingPool(workers=2)
        health = pool.health_dict()
        assert health["workers"] == 2
        assert health["breaker"]["state"] == CLOSED


class TestRegistryTimeout:
    def test_timed_out_admission_is_counted_and_rolled_back(
        self, simple_safe_pair
    ):
        registry = AdmissionRegistry(admission_timeout=0.0)
        first, second = simple_safe_pair.transactions
        registry.admit(first)  # no pairs to vet, cannot time out
        with pytest.raises(AdmissionTimeout):
            registry.admit(second)
        assert registry.stats.admission_timeouts == 1
        assert second.name not in registry  # nothing half-admitted
        assert registry.stats_dict()["pool"]["breaker"]["state"] == CLOSED
