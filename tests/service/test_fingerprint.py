"""Content-addressed transaction fingerprints."""

import random

from repro.core import DistributedDatabase, TransactionBuilder
from repro.service import fingerprint_of, pair_key
from repro.workloads import random_database, random_transaction


def chain(name, db, entities):
    builder = TransactionBuilder(name, db)
    steps = []
    for entity in entities:
        steps.extend(builder.access(entity))
    for before, after in zip(steps, steps[1:]):
        builder.precede(before, after)
    return builder.build()


class TestFingerprintOf:
    def test_name_independent(self):
        db = DistributedDatabase.single_site(["a", "b"])
        assert fingerprint_of(chain("T1", db, ["a", "b"])) == fingerprint_of(
            chain("SomethingElse", db, ["a", "b"])
        )

    def test_structure_sensitive(self):
        db = DistributedDatabase.single_site(["a", "b"])
        assert fingerprint_of(chain("T", db, ["a", "b"])) != fingerprint_of(
            chain("T", db, ["b", "a"])
        )

    def test_site_assignment_sensitive(self):
        one_site = DistributedDatabase.single_site(["a", "b"])
        two_sites = DistributedDatabase({"a": 1, "b": 2}, sites=2)
        assert fingerprint_of(chain("T", one_site, ["a", "b"])) != (
            fingerprint_of(chain("T", two_sites, ["a", "b"]))
        )

    def test_stable_across_calls(self):
        rng = random.Random(7)
        db = random_database(rng, entities=4, sites=2)
        transaction = random_transaction("T", db, rng, cross_arcs=2)
        assert fingerprint_of(transaction) == fingerprint_of(transaction)

    def test_is_a_hex_digest(self):
        db = DistributedDatabase.single_site(["a"])
        digest = fingerprint_of(chain("T", db, ["a"]))
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")


class TestPairKey:
    def test_symmetric(self):
        assert pair_key("aa", "bb") == pair_key("bb", "aa") == ("aa", "bb")

    def test_reflexive_pair_allowed(self):
        assert pair_key("aa", "aa") == ("aa", "aa")
