"""ServiceStats: counters, phase timers, and the shared-registry
mirror — including the contract that a phase which *raises* still
records its elapsed time and counts the error."""

import pytest

from repro.obs import metrics, trace
from repro.service.stats import ServiceStats


@pytest.fixture(autouse=True)
def clean_registry():
    metrics.REGISTRY.reset()
    yield
    metrics.REGISTRY.reset()


class TestCounters:
    def test_count_accumulates(self):
        stats = ServiceStats()
        stats.count("admitted")
        stats.count("admitted", 2)
        assert stats.admitted == 3

    def test_unknown_counter_rejected(self):
        with pytest.raises(KeyError):
            ServiceStats().count("frobnications")

    def test_count_mirrors_into_registry(self):
        stats = ServiceStats()
        stats.count("rejected", 4)
        dump = metrics.REGISTRY.to_dict()["repro_service_events_total"]
        assert dump["series"]['{event="rejected"}'] == 4

    def test_instances_are_independent_but_share_the_registry(self):
        first, second = ServiceStats(), ServiceStats()
        first.count("admitted")
        second.count("admitted")
        assert first.admitted == second.admitted == 1
        dump = metrics.REGISTRY.to_dict()["repro_service_events_total"]
        assert dump["series"]['{event="admitted"}'] == 2


class TestPhase:
    def test_phase_accumulates_seconds(self):
        stats = ServiceStats()
        with stats.phase("pairs"):
            pass
        with stats.phase("pairs"):
            pass
        assert stats.phase_seconds["pairs"] > 0
        assert stats.phase_errors == {}
        hist = metrics.REGISTRY.to_dict()["repro_service_phase_seconds"]
        assert hist["series"]['{phase="pairs"}']["count"] == 2

    def test_phase_that_raises_still_records_timing(self):
        stats = ServiceStats()
        with pytest.raises(RuntimeError, match="vetting exploded"):
            with stats.phase("pairs"):
                raise RuntimeError("vetting exploded")
        assert stats.phase_seconds["pairs"] > 0
        assert stats.phase_errors == {"pairs": 1}
        errors = metrics.REGISTRY.to_dict()[
            "repro_service_phase_errors_total"
        ]
        assert errors["series"]['{phase="pairs"}'] == 1
        hist = metrics.REGISTRY.to_dict()["repro_service_phase_seconds"]
        assert hist["series"]['{phase="pairs"}']["count"] == 1

    def test_phase_span_marked_error_on_exception(self, tmp_path):
        import json

        path = str(tmp_path / "t.jsonl")
        trace.start_tracing(path)
        stats = ServiceStats()
        with pytest.raises(ValueError):
            with stats.phase("cycles"):
                raise ValueError("nope")
        trace.stop_tracing()
        with open(path, encoding="utf-8") as handle:
            (record,) = [json.loads(line) for line in handle]
        assert record["span"] == "service.cycles"
        assert record["attrs"]["error"] is True
        assert record["attrs"]["error_type"] == "ValueError"


class TestRendering:
    def test_as_dict_shape(self):
        stats = ServiceStats()
        stats.count("admitted")
        with stats.phase("fingerprint"):
            pass
        payload = stats.as_dict()
        assert payload["admitted"] == 1
        assert "fingerprint" in payload["phase_seconds"]
        assert "phase_errors" not in payload  # only present after errors

    def test_as_dict_includes_phase_errors_after_failure(self):
        stats = ServiceStats()
        with pytest.raises(RuntimeError):
            with stats.phase("pairs"):
                raise RuntimeError
        assert stats.as_dict()["phase_errors"] == {"pairs": 1}

    def test_render_mentions_errors(self):
        stats = ServiceStats()
        with pytest.raises(RuntimeError):
            with stats.phase("pairs"):
                raise RuntimeError
        assert "1 error(s)" in stats.render()
