"""The admission service."""
