"""Process-pool pair vetting."""

import random

from repro.core import TransactionSystem, decide_safety
from repro.service import PairVettingPool
from repro.workloads import random_pair_system


def sample_pairs(count, *, seed=400):
    pairs = []
    for offset in range(count):
        rng = random.Random(seed + offset)
        system = random_pair_system(
            rng, sites=2, entities=3, shared=2, cross_arcs=rng.randint(0, 2)
        )
        pairs.append(tuple(system.transactions))
    return pairs


class TestSerial:
    def test_matches_decide_safety(self):
        pairs = sample_pairs(6)
        with PairVettingPool(workers=1) as pool:
            verdicts = pool.vet(pairs)
        for (first, second), verdict in zip(pairs, verdicts):
            expected = decide_safety(TransactionSystem([first, second]))
            assert verdict.safe == expected.safe
            assert verdict.method == expected.method

    def test_empty_batch(self):
        with PairVettingPool(workers=1) as pool:
            assert pool.vet([]) == []


class TestParallel:
    def test_matches_serial_in_order(self):
        pairs = sample_pairs(9)
        with PairVettingPool(workers=1) as serial:
            expected = serial.vet(pairs)
        with PairVettingPool(workers=2) as parallel:
            assert parallel.vet(pairs) == expected

    def test_executor_reused_between_batches(self):
        pairs = sample_pairs(4)
        with PairVettingPool(workers=2) as pool:
            pool.vet(pairs)
            first_executor = pool._executor
            pool.vet(pairs)
            assert pool._executor is first_executor
        assert pool._executor is None  # closed on exit

    def test_single_pair_stays_inline(self):
        pairs = sample_pairs(1)
        with PairVettingPool(workers=4) as pool:
            pool.vet(pairs)
            assert pool._executor is None


class TestChunking:
    def test_default_two_chunks_per_worker(self):
        pool = PairVettingPool(workers=2)
        chunks = pool._chunks_of(list(range(8)))
        assert [len(chunk) for chunk in chunks] == [2, 2, 2, 2]

    def test_explicit_chunk_size(self):
        pool = PairVettingPool(workers=2, chunk_size=3)
        chunks = pool._chunks_of(list(range(8)))
        assert [len(chunk) for chunk in chunks] == [3, 3, 2]

    def test_chunks_cover_everything_in_order(self):
        pool = PairVettingPool(workers=3)
        items = list(range(11))
        chunks = pool._chunks_of(items)
        assert [item for chunk in chunks for item in chunk] == items
