"""The incremental admission state machine."""

import pytest

from repro.core import (
    DistributedDatabase,
    TransactionBuilder,
    TransactionSystem,
    decide_safety,
)
from repro.errors import AdmissionError
from repro.service import AdmissionRegistry, VerdictCache


def chain(name, db, entities, two_phase=False):
    """Totally ordered transaction accessing *entities* in sequence."""
    builder = TransactionBuilder(name, db)
    if two_phase:
        steps = [builder.lock(entity) for entity in entities]
        for entity in entities:
            builder.update(entity)
        steps += [builder.unlock(entity) for entity in entities]
    else:
        steps = []
        for entity in entities:
            steps.extend(builder.access(entity))
    for before, after in zip(steps, steps[1:]):
        builder.precede(before, after)
    return builder.build()


@pytest.fixture
def db():
    return DistributedDatabase.single_site(["a", "b", "c"])


class TestAdmission:
    def test_safe_pair_admitted(self, db):
        registry = AdmissionRegistry()
        registry.admit(chain("T1", db, ["a", "b"], two_phase=True))
        decision = registry.admit(chain("T2", db, ["a", "b"], two_phase=True))
        assert decision.admitted
        assert decision.verdict.method == "admission"
        assert decision.pairs_vetted == 1
        assert registry.names == ["T1", "T2"]

    def test_unsafe_pair_rejected_and_registry_unchanged(self, db):
        registry = AdmissionRegistry()
        registry.admit(chain("T1", db, ["a", "b"]))
        decision = registry.admit(chain("T2", db, ["b", "a"]))
        assert not decision.admitted
        assert decision.failing_pair == ("T2", "T1")
        assert "unsafe" in decision.verdict.detail
        assert registry.names == ["T1"]

    def test_rejection_carries_certificate_on_request(self, db):
        registry = AdmissionRegistry()
        registry.admit(chain("T1", db, ["a", "b"]))
        decision = registry.admit(
            chain("T2", db, ["b", "a"]), want_certificate=True
        )
        assert decision.verdict.certificate is not None
        assert decision.verdict.witness is not None

    def test_trivial_pair_not_vetted(self, db):
        registry = AdmissionRegistry()
        registry.admit(chain("T1", db, ["a", "b"]))
        decision = registry.admit(chain("T2", db, ["b", "c"]))
        assert decision.admitted
        assert decision.pairs_trivial == 1
        assert decision.pairs_vetted == 0

    def test_verdict_matches_offline_decider(self, db):
        registry = AdmissionRegistry()
        first = chain("T1", db, ["a", "b"])
        second = chain("T2", db, ["a", "b"], two_phase=True)
        registry.admit(first)
        decision = registry.admit(second)
        offline = decide_safety(TransactionSystem([first, second]))
        assert decision.admitted == offline.safe


class TestProtocolErrors:
    def test_duplicate_name(self, db):
        registry = AdmissionRegistry()
        registry.admit(chain("T1", db, ["a"]))
        with pytest.raises(AdmissionError, match="already live"):
            registry.admit(chain("T1", db, ["b"]))

    def test_database_mismatch(self, db):
        other_db = DistributedDatabase({"a": 1, "b": 2}, sites=2)
        registry = AdmissionRegistry()
        registry.admit(chain("T1", db, ["a"]))
        with pytest.raises(AdmissionError, match="different database"):
            registry.admit(chain("T2", other_db, ["a"]))

    def test_evict_unknown(self, db):
        with pytest.raises(AdmissionError, match="unknown transaction"):
            AdmissionRegistry().evict("ghost")

    def test_member_unknown(self, db):
        with pytest.raises(AdmissionError, match="no live transaction"):
            AdmissionRegistry().member("ghost")


class TestCycleCondition:
    def triangle(self, db):
        return [
            chain("T1", db, ["a", "b"]),
            chain("T2", db, ["b", "c"]),
            chain("T3", db, ["c", "a"]),
        ]

    def test_pairwise_safe_triangle_rejected(self, db):
        registry = AdmissionRegistry()
        t1, t2, t3 = self.triangle(db)
        assert registry.admit(t1).admitted
        assert registry.admit(t2).admitted
        decision = registry.admit(t3)
        assert not decision.admitted
        assert decision.verdict.method == "proposition-2"
        assert decision.failing_cycle is not None
        assert set(decision.failing_cycle) == {"T1", "T2", "T3"}

    def test_eviction_reopens_admission(self, db):
        registry = AdmissionRegistry()
        t1, t2, t3 = self.triangle(db)
        registry.admit(t1)
        registry.admit(t2)
        registry.evict(t2.name)
        assert registry.admit(t3).admitted
        assert registry.names == ["T1", "T3"]

    def test_cycle_limit_raises_rather_than_guessing(self, db):
        registry = AdmissionRegistry(cycle_limit=1)
        t1, t2, t3 = self.triangle(db)
        registry.admit(t1)
        registry.admit(t2)
        with pytest.raises(AdmissionError, match="cycle enumeration"):
            registry.admit(t3)

    def test_admit_system_skips_rejections(self, db):
        registry = AdmissionRegistry()
        decisions = registry.admit_system(TransactionSystem(self.triangle(db)))
        assert [decision.admitted for decision in decisions] == [
            True, True, False,
        ]
        assert registry.names == ["T1", "T2"]


class TestEvictionIndex:
    def test_evicted_member_no_longer_blocks(self, db):
        registry = AdmissionRegistry()
        registry.admit(chain("T1", db, ["a", "b"]))
        registry.admit(chain("T2", db, ["b", "c"]))
        assert not registry.admit(chain("T3", db, ["b", "a"])).admitted
        registry.evict("T1")
        assert registry.admit(chain("T3", db, ["b", "a"])).admitted

    def test_interaction_edges_follow_evictions(self, db):
        registry = AdmissionRegistry()
        registry.admit(chain("T1", db, ["a", "b"]))
        registry.admit(chain("T2", db, ["b", "c"]))
        assert registry.interaction_edges() == [("T1", "T2")]
        registry.evict("T1")
        assert registry.interaction_edges() == []


class TestCacheSharing:
    def test_second_registry_reuses_verdicts(self, db):
        cache = VerdictCache()
        fleet = [
            chain("T1", db, ["a", "b"], two_phase=True),
            chain("T2", db, ["a", "b"], two_phase=True),
        ]
        first = AdmissionRegistry(cache=cache)
        for transaction in fleet:
            first.admit(transaction)
        assert first.stats.pairs_vetted == 1

        second = AdmissionRegistry(cache=cache)
        decisions = [second.admit(t) for t in fleet]
        assert all(decision.admitted for decision in decisions)
        assert second.stats.pairs_vetted == 0
        assert second.stats.pairs_from_cache == 1

    def test_unsafe_verdict_cached_but_evidence_fresh(self, db):
        cache = VerdictCache()
        first = AdmissionRegistry(cache=cache)
        first.admit(chain("T1", db, ["a", "b"]))
        first.admit(chain("T2", db, ["b", "a"]))

        second = AdmissionRegistry(cache=cache)
        second.admit(chain("T1", db, ["a", "b"]))
        decision = second.admit(
            chain("T2", db, ["b", "a"]), want_certificate=True
        )
        assert not decision.admitted
        assert decision.pairs_from_cache == 1
        assert decision.verdict.certificate is not None


class TestIntrospection:
    def test_stats_dict_shape(self, db):
        registry = AdmissionRegistry()
        registry.admit(chain("T1", db, ["a"]))
        payload = registry.stats_dict()
        assert payload["live_transactions"] == 1
        assert payload["service"]["admitted"] == 1
        assert "hit_rate" in payload["cache"]

    def test_system_roundtrip(self, db):
        registry = AdmissionRegistry()
        registry.admit(chain("T1", db, ["a", "b"], two_phase=True))
        registry.admit(chain("T2", db, ["b", "c"], two_phase=True))
        system = registry.system()
        assert [t.name for t in system.transactions] == ["T1", "T2"]
        assert decide_safety(system).safe

    def test_system_requires_a_database(self):
        with pytest.raises(AdmissionError, match="no database"):
            AdmissionRegistry().system()
