"""The simulator event timeline: validation, round-trips, determinism."""

import pytest

from repro.obs.events import KINDS, EventLog
from repro.sim import RandomDriver, run_once
from repro.workloads import figure_3


class TestEventLog:
    def test_seq_is_the_logical_clock(self):
        log = EventLog()
        first = log.emit("grant", transaction="T1", entity="x", site=1)
        second = log.emit("release", transaction="T1", entity="x", site=1)
        assert (first.seq, second.seq) == (0, 1)
        assert len(log) == 2

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            EventLog().emit("teleport")

    def test_of_kind_filters_in_order(self):
        log = EventLog()
        log.emit("grant", transaction="T1", entity="x")
        log.emit("block", transaction="T2", entity="x")
        log.emit("grant", transaction="T1", entity="y")
        assert [e.entity for e in log.of_kind("grant")] == ["x", "y"]

    def test_jsonl_roundtrip(self):
        log = EventLog()
        log.emit("grant", transaction="T1", entity="x", site=2)
        log.emit("deadlock", detail="T1 -> T2 -> T1")
        rebuilt = EventLog.from_jsonl(log.to_jsonl())
        assert rebuilt.events == log.events

    def test_render_is_line_per_event(self):
        log = EventLog()
        log.emit("grant", transaction="T1", entity="x", site=1)
        text = log.render()
        assert text.splitlines()[0] == "timeline: 1 events"
        assert "grant" in text and "T1" in text

    def test_empty_log_jsonl(self):
        assert EventLog().to_jsonl() == ""
        assert EventLog.from_jsonl("").events == []


class TestSimulatorTimeline:
    def run_logged(self, seed):
        log = EventLog()
        result = run_once(figure_3(), RandomDriver(seed), event_log=log)
        return result, log

    def test_deterministic_under_fixed_seed(self):
        _, first = self.run_logged(7)
        _, second = self.run_logged(7)
        assert first.to_jsonl() == second.to_jsonl()
        assert len(first) > 0

    def test_grants_and_releases_are_paired(self):
        result, log = self.run_logged(3)
        if result.completed:
            assert len(log.of_kind("grant")) == len(log.of_kind("release"))

    def test_terminal_event_matches_outcome(self):
        for seed in range(6):
            result, log = self.run_logged(seed)
            last = log.events[-1]
            if result.completed:
                assert last.kind == "complete"
                assert last.detail == (
                    "serializable"
                    if result.serializable
                    else "non-serializable"
                )
            else:
                assert last.kind == "deadlock"
                assert result.deadlocked
        assert result.event_log is log

    def test_every_emitted_kind_is_known(self):
        _, log = self.run_logged(11)
        assert {event.kind for event in log} <= set(KINDS)
