"""Observability tests mutate process-global switches (the tracer, the
metrics registry, the log verbosity); every test here starts and ends
with all three in their defaults."""

import pytest

from repro.obs import log, metrics, trace


@pytest.fixture(autouse=True)
def clean_obs_globals():
    trace.stop_tracing()
    metrics.REGISTRY.reset()
    log.set_verbosity(0)
    log.use_plain_output()
    yield
    trace.stop_tracing()
    metrics.REGISTRY.reset()
    log.set_verbosity(0)
    log.use_plain_output()
