"""The insight tier: flight recorder, contention analytics, wait-for
stitching and post-mortem bundles."""

import json

import pytest

from repro.cluster import run_cluster_sync
from repro.core.entity import DistributedDatabase
from repro.core.schedule import TransactionSystem
from repro.core.step import lock, unlock, update
from repro.core.transaction import Transaction
from repro.obs import distributed
from repro.obs.events import EventLog
from repro.obs.insight import (
    ClusterStatus,
    ContentionTally,
    FlightRecorder,
    contention_from_records,
    deadlock_cycles,
    dump_postmortem,
    load_postmortem,
    render_contention,
    render_postmortem,
    wait_for_graph,
)


def chain_tx(name, database, entities):
    steps = []
    for entity in entities:
        steps.append(lock(entity))
        steps.append(update(entity))
    for entity in entities:
        steps.append(unlock(entity))
    order = [(steps[i], steps[i + 1]) for i in range(len(steps) - 1)]
    return Transaction(name, database, steps, order)


@pytest.fixture
def contended_system():
    database = DistributedDatabase({"x": 1, "y": 2})
    return TransactionSystem(
        [
            chain_tx("T1", database, ["x", "y"]),
            chain_tx("T2", database, ["y", "x"]),
        ]
    )


class TestFlightRecorder:
    def test_ring_wraps_at_capacity(self):
        ring = FlightRecorder(capacity=4)
        for i in range(10):
            ring.record("probe", value=i)
        assert len(ring) == 4
        assert ring.seq == 10
        assert ring.dropped == 6
        values = [entry["value"] for entry in ring.snapshot()]
        assert values == [6, 7, 8, 9]  # oldest first
        seqs = [entry["seq"] for entry in ring.snapshot()]
        assert seqs == sorted(seqs)

    def test_below_capacity_keeps_everything(self):
        ring = FlightRecorder(capacity=8)
        for i in range(3):
            ring.record("probe", value=i)
        assert len(ring) == 3
        assert ring.dropped == 0
        assert [e["value"] for e in ring.snapshot()] == [0, 1, 2]

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_event_adapter_namespaces_fields(self):
        ring = FlightRecorder()
        log = EventLog()
        log.ring = ring
        log.emit("grant", transaction="T1", entity="x", site=1)
        (entry,) = ring.snapshot()
        assert entry["kind"] == "event"
        assert entry["event_kind"] == "grant"
        assert entry["event_seq"] == 0
        assert entry["transaction"] == "T1"

    def test_to_jsonl_roundtrips(self):
        ring = FlightRecorder()
        ring.record("probe", value=1)
        lines = ring.to_jsonl().splitlines()
        assert json.loads(lines[0])["value"] == 1

    def test_recorder_activates_wire_observer(self):
        observer = distributed.WireObserver()
        assert not observer.active
        ring = FlightRecorder()
        observer.attach_recorder(ring)
        assert observer.active
        observer.sent({"type": "lock", "id": 1, "txn": "T1"}, 42, 0, site=1)
        observer.received({"type": "reply", "id": 1}, 24, site=1)
        observer.detach_recorder()
        assert not observer.active
        kinds = [entry["kind"] for entry in ring.snapshot()]
        assert kinds == ["send", "recv"]
        assert ring.snapshot()[0]["bytes"] == 42


class TestRecorderInCluster:
    def test_ring_is_deterministic_on_memory_transport(self, contended_system):
        first = FlightRecorder()
        second = FlightRecorder()
        run_cluster_sync(contended_system, rounds=2, seed=11, recorder=first)
        run_cluster_sync(contended_system, rounds=2, seed=11, recorder=second)
        assert first.seq == second.seq
        assert first.to_jsonl() == second.to_jsonl()

    def test_outcome_fingerprint_identical_recorder_on_vs_off(
        self, contended_system
    ):
        instrumented = run_cluster_sync(
            contended_system, rounds=2, seed=11, recorder=FlightRecorder()
        )
        bare = run_cluster_sync(
            contended_system, rounds=2, seed=11, recorder=False
        )
        assert instrumented.outcome_fingerprint == bare.outcome_fingerprint
        assert instrumented.history_fingerprint == bare.history_fingerprint

    def test_disabled_recorder_records_nothing(self, contended_system):
        ring = FlightRecorder()
        run_cluster_sync(contended_system, rounds=1, seed=3, recorder=False)
        # Nothing attached the ring, and the observer is quiescent.
        assert len(ring) == 0
        assert not distributed.WIRE.active

    def test_report_carries_contention_ranking(self, contended_system):
        report = run_cluster_sync(contended_system, rounds=3, seed=11)
        assert report.contention, "contended run must rank hot entities"
        row = report.contention[0]
        assert set(row) >= {"entity", "waits", "grants", "wait_ms_p95"}
        assert row["entity"] in ("x", "y")
        # The ranking rides in to_dict but never in the fingerprints.
        assert "contention" in report.to_dict()


class TestContentionTally:
    def test_counts_and_ranking(self):
        tally = ContentionTally()
        tally.granted("x")
        tally.blocked("x", depth=2)
        tally.waited("x", 2_000_000)
        tally.blocked("y", depth=1)
        tally.waited("y", 1_000_000)
        tally.blocked("y", depth=4)
        tally.waited("y", 3_000_000, result="denied")
        rows = tally.rows()
        assert [row["entity"] for row in rows] == ["y", "x"]
        y = rows[0]
        assert y["waits"] == 2
        assert y["denied"] == 1
        assert y["queue_depth_max"] == 4

    def test_merge_accumulates(self):
        a, b = ContentionTally(), ContentionTally()
        a.blocked("x", depth=1)
        a.waited("x", 5)
        b.blocked("x", depth=3)
        b.waited("x", 7)
        a.merge(b)
        (row,) = a.rows()
        assert row["waits"] == 2
        assert row["queue_depth_max"] == 3

    def test_empty_tally_is_falsy(self):
        assert not ContentionTally()


def _span(entity, txn, start, dur, pid=1):
    return {
        "span": "site.lock_wait",
        "start_ns": start,
        "dur_ns": dur,
        "pid": pid,
        "attrs": {"entity": entity, "txn": txn, "site": 1},
    }


class TestContentionFromRecords:
    def test_percentiles_and_convoy(self):
        # Three overlapping waiters on x -> convoy; y is quiet.
        records = [
            _span("x", "T1", 0, 100),
            _span("x", "T2", 10, 100),
            _span("x", "T3", 20, 100),
            _span("y", "T9", 0, 50),
        ]
        rows = contention_from_records(records)
        x = next(row for row in rows if row["entity"] == "x")
        assert x["waits"] == 3
        assert x["queue_depth_max"] == 3
        assert x["convoy"] is True

    def test_starvation_flags_outlier(self):
        records = [_span("x", f"T{i}", i * 1000, 10) for i in range(6)]
        records.append(_span("x", "T99", 0, 10_000))
        (row,) = contention_from_records(records)
        assert "T99" in row["starved"]

    def test_ignores_other_spans(self):
        assert contention_from_records([{"span": "cluster.run", "dur_ns": 5}]) == []

    def test_render_contention_mentions_flags(self):
        records = [
            _span("x", "T1", 0, 100),
            _span("x", "T2", 10, 100),
            _span("x", "T3", 20, 100),
        ]
        text = render_contention(contention_from_records(records))
        assert "convoy" in text
        assert "x" in text

    def test_render_empty(self):
        assert "no lock waits" in render_contention([])


class TestWaitForStitching:
    def test_cross_site_cycle_detected(self):
        statuses = [
            {"site": 1, "wait_for": [["T1", "T2"]]},
            {"site": 2, "wait_for": [["T2", "T1"]]},
        ]
        graph = wait_for_graph(statuses)
        cycles = deadlock_cycles(graph)
        assert cycles, "cross-site cycle must be found"
        assert set(cycles[0]) >= {"T1", "T2"}

    def test_acyclic_graph_is_clean(self):
        statuses = [{"site": 1, "wait_for": [["T1", "T2"], ["T2", "T3"]]}]
        assert deadlock_cycles(wait_for_graph(statuses)) == []

    def test_cluster_status_renders_cycle_and_errors(self):
        status = ClusterStatus(
            [
                {
                    "site": 1,
                    "role": "site",
                    "processed": 9,
                    "committed": 1,
                    "lock_table": [
                        {"entity": "x", "holder": "T1", "waiters": ["T2"]}
                    ],
                    "pending": [
                        {"txn": "T2", "entity": "x", "age": 3, "timer": False}
                    ],
                    "wait_for": [["T2", "T1"]],
                    "contention": [],
                },
                {"site": 2, "wait_for": [["T1", "T2"]]},
                {"site": 3, "error": "connection refused"},
            ]
        )
        text = status.render()
        assert "DEADLOCK" in text
        assert "UNREACHABLE" in text
        assert "lock x: holder=T1" in text
        assert len(status.errors) == 1
        payload = status.to_dict()
        assert payload["cycles"]


class TestPostmortem:
    def test_dump_load_render_roundtrip(self, tmp_path, contended_system):
        ring = FlightRecorder()
        event_log = EventLog()
        report = run_cluster_sync(
            contended_system,
            rounds=1,
            seed=5,
            recorder=ring,
            event_log=event_log,
        )
        trace_file = tmp_path / "site.jsonl"
        trace_file.write_text(
            json.dumps(_span("x", "T2", 0, 100)) + "\n" + "{truncated"
        )
        bundle = dump_postmortem(
            tmp_path / "bundle",
            report=report,
            recorder=ring,
            event_log=event_log,
            trace_paths=[str(trace_file)],
            reason="test-reason",
        )
        loaded = load_postmortem(bundle)
        assert loaded["manifest"]["reason"] == "test-reason"
        assert loaded["report"]["transactions"] == report.transactions
        assert loaded["flight"], "ring contents must be preserved"
        assert len(loaded["trace_records"]) == 1  # damaged line skipped
        text = render_postmortem(bundle)
        assert "test-reason" in text
        assert "flight recorder" in text

    def test_truncated_flight_line_skipped(self, tmp_path):
        ring = FlightRecorder()
        ring.record("probe", value=1)
        bundle = dump_postmortem(tmp_path / "b", recorder=ring, reason="r")
        flight = tmp_path / "b" / "flight.jsonl"
        flight.write_text(flight.read_text() + '{"seq": 99, "kin')
        loaded = load_postmortem(bundle)
        assert loaded["flight_skipped"] == 1
        assert len(loaded["flight"]) == 1
        assert render_postmortem(bundle)  # still renders

    def test_non_bundle_directory_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="not a post-mortem bundle"):
            load_postmortem(tmp_path)

    def test_bad_run_writes_bundle_automatically(
        self, tmp_path, contended_system
    ):
        from repro.faults.plan import FaultPlan, SiteCrash

        plan = FaultPlan(site_crashes=(SiteCrash(site=1, at=5),))
        report = run_cluster_sync(
            contended_system,
            rounds=1,
            seed=5,
            fault_plan=plan,
            request_timeout=0.5,
            max_retries=0,
            postmortem_dir=str(tmp_path / "pm"),
        )
        assert not report.audit_complete
        assert report.postmortem == str(tmp_path / "pm")
        loaded = load_postmortem(report.postmortem)
        assert loaded["manifest"]["reason"] in (
            "audit-incomplete",
            "partial-commit",
            "non-serializable",
        )

    def test_clean_run_writes_nothing(self, tmp_path, contended_system):
        report = run_cluster_sync(
            contended_system,
            rounds=1,
            seed=5,
            postmortem_dir=str(tmp_path / "pm"),
        )
        assert report.serializable and report.audit_complete
        assert report.postmortem is None
        assert not (tmp_path / "pm").exists()
