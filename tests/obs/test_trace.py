"""Span tracing: nesting, the disabled fast path, error capture, and
the process-pool worker-file merge."""

import json
import os

import pytest

from repro.obs import trace
from repro.obs.trace import NULL_SPAN, absorb_worker_traces, span


def read_records(path):
    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestDisabledPath:
    def test_span_returns_the_null_singleton(self):
        assert not trace.tracing_enabled()
        assert span("anything") is NULL_SPAN
        assert trace.current_span() is NULL_SPAN

    def test_null_span_is_falsy_noop(self):
        with span("x") as sp:
            assert not sp
            assert sp.set(a=1) is sp  # swallowed, chainable

    def test_exceptions_pass_through_null_span(self):
        with pytest.raises(RuntimeError):
            with span("x"):
                raise RuntimeError("boom")


class TestRecording:
    def test_nesting_and_parent_ids(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        trace.start_tracing(path)
        with span("outer") as outer:
            assert outer
            assert trace.current_span() is outer
            with span("inner") as inner:
                inner.set(answer=42)
        trace.stop_tracing()
        records = {r["span"]: r for r in read_records(path)}
        assert set(records) == {"outer", "inner"}
        # Children finish (and are written) before their parents.
        assert records["inner"]["parent"] == records["outer"]["id"]
        assert records["inner"]["attrs"]["answer"] == 42
        assert records["outer"]["dur_ns"] >= records["inner"]["dur_ns"]
        assert records["outer"]["pid"] == os.getpid()

    def test_exception_records_error_and_timing(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        trace.start_tracing(path)
        with pytest.raises(ValueError):
            with span("failing") as sp:
                sp.set(stage="before")
                raise ValueError("nope")
        trace.stop_tracing()
        (record,) = read_records(path)
        assert record["attrs"]["error"] is True
        assert record["attrs"]["error_type"] == "ValueError"
        assert record["attrs"]["stage"] == "before"
        assert record["dur_ns"] >= 0

    def test_attrs_coerced_to_json_safe(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        trace.start_tracing(path)
        with span("attrs") as sp:
            sp.set(names=("a", "b"), obj={1, 2, 3}, flag=True)
        trace.stop_tracing()
        (record,) = read_records(path)
        assert record["attrs"]["names"] == ["a", "b"]
        assert isinstance(record["attrs"]["obj"], str)
        assert record["attrs"]["flag"] is True

    def test_start_stop_roundtrip(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        assert trace.trace_path() is None
        trace.start_tracing(path)
        assert trace.tracing_enabled()
        assert trace.trace_path() == path
        assert trace.stop_tracing() == path
        assert not trace.tracing_enabled()
        assert trace.stop_tracing() is None


class TestWorkerMerge:
    def test_absorb_merges_and_deletes_worker_files(self, tmp_path):
        base = str(tmp_path / "t.jsonl")
        trace.start_tracing(base)
        with span("parent.work"):
            pass
        worker_file = trace.worker_trace_path(base, 4242)
        with open(worker_file, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps(
                    {"span": "worker.work", "id": 1, "pid": 4242,
                     "start_ns": 0, "dur_ns": 10}
                )
                + "\n"
            )
        assert absorb_worker_traces(base) == 1
        trace.stop_tracing()
        assert not os.path.exists(worker_file)
        records = read_records(base)
        assert {r["span"] for r in records} == {"parent.work", "worker.work"}
        assert {r["pid"] for r in records} == {os.getpid(), 4242}

    def test_absorb_is_noop_when_tracing_off(self, tmp_path):
        assert absorb_worker_traces(str(tmp_path / "t.jsonl")) == 0

    def test_pool_vetting_spans_cross_the_process_boundary(self, tmp_path):
        import random

        from repro.service import PairVettingPool
        from repro.workloads import random_pair_system

        pairs = []
        for offset in range(6):
            rng = random.Random(400 + offset)
            system = random_pair_system(
                rng, sites=2, entities=3, shared=2,
                cross_arcs=rng.randint(0, 2),
            )
            pairs.append(tuple(system.transactions))

        base = str(tmp_path / "pool.jsonl")
        trace.start_tracing(base)
        with PairVettingPool(workers=2) as pool:
            pool.vet(pairs)
        trace.stop_tracing()
        records = read_records(base)
        worker_pids = {
            r["pid"] for r in records if r["span"] == "safety.decide"
        }
        assert len(records) >= len(pairs)
        assert worker_pids and os.getpid() not in worker_pids
        leftovers = [
            name
            for name in os.listdir(tmp_path)
            if name.startswith("pool.jsonl.w")
        ]
        assert leftovers == []
