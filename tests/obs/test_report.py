"""trace-report aggregation: self time, per-pid parent resolution,
rendering, and malformed-input rejection."""

import json

import pytest

from repro.obs.report import aggregate, load_trace, render_table, summarize


def write_trace(path, records):
    path.write_text(
        "".join(json.dumps(record) + "\n" for record in records)
    )
    return str(path)


class TestAggregate:
    def test_self_time_subtracts_direct_children(self):
        rows = aggregate(
            [
                {"span": "child", "id": 2, "pid": 1, "parent": 1,
                 "start_ns": 10, "dur_ns": 30},
                {"span": "parent", "id": 1, "pid": 1,
                 "start_ns": 0, "dur_ns": 100},
            ]
        )
        by_name = {row["span"]: row for row in rows}
        assert by_name["parent"]["total_ns"] == 100
        assert by_name["parent"]["self_ns"] == 70
        assert by_name["child"]["self_ns"] == 30

    def test_parent_ids_resolved_per_pid(self):
        # Two processes both use span id 1; the child in pid 2 must not
        # be subtracted from the pid-1 parent.
        rows = aggregate(
            [
                {"span": "parent", "id": 1, "pid": 1,
                 "start_ns": 0, "dur_ns": 100},
                {"span": "child", "id": 2, "pid": 2, "parent": 1,
                 "start_ns": 0, "dur_ns": 40},
                {"span": "parent", "id": 1, "pid": 2,
                 "start_ns": 0, "dur_ns": 50},
            ]
        )
        by_name = {row["span"]: row for row in rows}
        assert by_name["parent"]["calls"] == 2
        assert by_name["parent"]["total_ns"] == 150
        assert by_name["parent"]["self_ns"] == 100 + 10

    def test_sorted_by_self_time_and_errors_counted(self):
        rows = aggregate(
            [
                {"span": "slow", "id": 1, "pid": 1,
                 "start_ns": 0, "dur_ns": 100},
                {"span": "fast", "id": 2, "pid": 1, "start_ns": 0,
                 "dur_ns": 10, "attrs": {"error": True}},
            ]
        )
        assert [row["span"] for row in rows] == ["slow", "fast"]
        assert rows[1]["errors"] == 1

    def test_self_time_clamped_at_zero(self):
        # Clock skew can make children sum past the parent.
        rows = aggregate(
            [
                {"span": "parent", "id": 1, "pid": 1,
                 "start_ns": 0, "dur_ns": 10},
                {"span": "child", "id": 2, "pid": 1, "parent": 1,
                 "start_ns": 0, "dur_ns": 25},
            ]
        )
        by_name = {row["span"]: row for row in rows}
        assert by_name["parent"]["self_ns"] == 0


class TestLoadTrace:
    def test_bad_json_raises_with_location(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"span": "ok", "dur_ns": 1}\nnot json\n')
        with pytest.raises(ValueError, match=r"t\.jsonl:2"):
            load_trace(str(path))

    def test_missing_fields_raise(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"foo": 1}\n')
        with pytest.raises(ValueError, match="span/dur_ns"):
            load_trace(str(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = write_trace(
            tmp_path / "t.jsonl",
            [{"span": "a", "id": 1, "pid": 1, "start_ns": 0, "dur_ns": 5}],
        )
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n\n")
        assert len(load_trace(path)) == 1


class TestRendering:
    def test_table_and_summary(self, tmp_path):
        path = write_trace(
            tmp_path / "t.jsonl",
            [
                {"span": "safety.decide", "id": 1, "pid": 1,
                 "start_ns": 0, "dur_ns": 2_000_000},
                {"span": "safety.d_graph", "id": 2, "pid": 1, "parent": 1,
                 "start_ns": 0, "dur_ns": 500_000},
            ],
        )
        text = summarize(path)
        assert "2 spans, 2 distinct names, 1 process(es)" in text
        header = text.splitlines()[2]
        for column in ("span", "calls", "total ms", "self ms", "max ms"):
            assert column in header
        assert "safety.decide" in text

    def test_limit_reports_whats_hidden(self):
        rows = aggregate(
            [
                {"span": f"s{i}", "id": i, "pid": 1,
                 "start_ns": 0, "dur_ns": 100 - i}
                for i in range(1, 5)
            ]
        )
        text = render_table(rows, limit=2)
        assert "... 2 more span name(s)" in text

    def test_empty_rows_render_headers_only(self):
        assert render_table([]).startswith("span")


class TestLenientLoading:
    """Truncated / malformed JSONL hardening: strict mode still raises
    (pinned above), lenient mode skips with a counted warning."""

    def test_lenient_load_skips_and_reports(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps({"span": "ok", "id": 1, "pid": 1,
                        "start_ns": 0, "dur_ns": 10}) + "\n"
            + "{truncated mid-wri\n"
            + json.dumps({"not": "a span"}) + "\n"
            + json.dumps({"span": "ok", "id": 2, "pid": 1,
                          "start_ns": 0, "dur_ns": 20}) + "\n"
        )
        skips = []
        records = load_trace(
            str(path),
            strict=False,
            on_skip=lambda p, n, why: skips.append((n, why)),
        )
        assert len(records) == 2
        assert [number for number, _ in skips] == [2, 3]

    def test_summarize_counts_skipped_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps({"span": "ok", "id": 1, "pid": 1,
                        "start_ns": 0, "dur_ns": 10}) + "\n"
            + "{truncated"
        )
        text = summarize(str(path))
        assert "warning: skipped 1 malformed line(s)" in text
        assert "1 spans" in text

    def test_summarize_rejects_file_with_no_valid_records(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(ValueError):
            summarize(str(path))

    def test_merge_traces_is_lenient(self, tmp_path):
        from repro.obs.distributed import merge_traces

        good = tmp_path / "a.jsonl"
        good.write_text(
            json.dumps({"span": "ok", "id": 1, "pid": 1,
                        "start_ns": 0, "dur_ns": 10}) + "\n"
        )
        damaged = tmp_path / "b.jsonl"
        damaged.write_text('{"span": "cut off, no dur\n')
        skips = []
        records = merge_traces(
            [good, damaged],
            on_skip=lambda p, n, why: skips.append((p, n)),
        )
        assert len(records) == 1
        assert len(skips) == 1
