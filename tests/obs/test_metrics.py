"""The metrics registry and its Prometheus text exposition."""

import re

import pytest

from repro.obs import metrics
from repro.obs.metrics import MetricsRegistry

#: A Prometheus exposition line: comment, or `name{labels} value`.
SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(,[a-zA-Z_+][a-zA-Z0-9_]*=\"[^\"]*\")*\})? -?[0-9.e+-]+(inf)?$"
)


class TestCounter:
    def test_inc_and_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total", "jobs")
        counter.labels(kind="a").inc()
        counter.labels(kind="a").inc(2)
        counter.labels(kind="b").inc()
        dump = registry.to_dict()["jobs_total"]
        assert dump["type"] == "counter"
        assert dump["series"]['{kind="a"}'] == 3
        assert dump["series"]['{kind="b"}'] == 1

    def test_counters_only_go_up(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ValueError):
            registry.gauge("m")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 6


class TestHistogram:
    def test_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 20.0):
            hist.observe(value)
        text = registry.to_prometheus()
        assert 'h_bucket{le="0.1"} 1' in text
        assert 'h_bucket{le="1"} 3' in text
        assert 'h_bucket{le="10"} 3' in text
        assert 'h_bucket{le="+Inf"} 4' in text
        assert "h_count 4" in text

    def test_bucket_bounds_are_inclusive(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0,))
        hist.observe(1.0)
        assert hist.counts[0] == 1

    def test_labeled_histograms_do_not_share_counts(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0,))
        hist.labels(phase="a").observe(0.5)
        hist.labels(phase="b").observe(0.5)
        assert hist.labels(phase="a").count == 1
        assert hist.labels(phase="b").count == 1


class TestExposition:
    def test_every_line_parses(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "requests").labels(
            method="vet", safe="true"
        ).inc(7)
        registry.gauge("live", "live transactions").set(3)
        hist = registry.histogram("latency_seconds", "latency")
        hist.labels(phase="pairs").observe(0.002)
        for line in registry.to_prometheus().splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert SAMPLE_RE.match(line), f"unparseable sample: {line!r}"

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c").labels(detail='say "hi"\nbye').inc()
        text = registry.to_prometheus()
        assert '\\"hi\\"' in text
        assert "\\n" in text

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.counter("ok").labels(**{"bad-label": "x"})

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().to_prometheus() == ""
        assert MetricsRegistry().to_dict() == {}


class TestGlobalRegistry:
    def test_reset_then_recreate(self):
        metrics.REGISTRY.counter("tmp_total").inc()
        metrics.REGISTRY.reset()
        assert metrics.REGISTRY.to_dict() == {}
        # Re-resolving by name starts a fresh metric.
        metrics.REGISTRY.counter("tmp_total").inc()
        assert metrics.REGISTRY.to_dict()["tmp_total"]["value"] == 1

    def test_get_registry_is_the_module_singleton(self):
        assert metrics.get_registry() is metrics.REGISTRY
