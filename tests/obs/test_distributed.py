"""Trace-context propagation, the wire observer, and the collector."""

from repro.obs import trace
from repro.obs.distributed import (
    STAGES,
    TraceTree,
    WireObserver,
    child_span,
    context_of,
    extract,
    merge_traces,
    remote_span,
    stage_rows,
    trace_trees,
    txn_span,
)
from repro.obs.events import EventLog
from repro.obs.metrics import REGISTRY
from repro.obs.report import load_trace


class TestContext:
    def test_roundtrip_through_a_message(self, tmp_path):
        trace.start_tracing(str(tmp_path / "t.jsonl"))
        with txn_span("T1") as root:
            context = context_of(root)
            assert context is not None
            assert context["id"] == root.trace_id
            assert context["span"] == root.span_id
            assert context["pid"] == trace.tracer_pid()
            message = {"type": "lock", "id": 1, "trace": context}
            assert extract(message) == context

    def test_null_while_tracing_is_off(self):
        span = txn_span("T1")
        assert not span
        assert context_of(span) is None

    def test_extract_tolerates_absent_and_malformed(self):
        assert extract({"type": "lock", "id": 1}) is None
        assert extract({"trace": "nope"}) is None
        assert extract({"trace": {"id": "only-an-id"}}) is None

    def test_remote_span_links_across_the_wire(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace.start_tracing(str(path))
        with txn_span("T1") as root:
            context = context_of(root)
            with remote_span("site.lock", context) as child:
                assert child.trace_id == root.trace_id
        trace.stop_tracing()
        records = {r["span"]: r for r in load_trace(str(path))}
        assert records["site.lock"]["parent"] == records["txn.run"]["id"]
        assert records["site.lock"]["trace_id"] == records["txn.run"]["trace_id"]

    def test_remote_span_tolerates_bad_contexts(self, tmp_path):
        trace.start_tracing(str(tmp_path / "t.jsonl"))
        assert not remote_span("x", None)
        assert not remote_span("x", {"id": "t", "span": "NaN", "pid": "?"})
        assert not remote_span("x", {"id": "t"})

    def test_child_span_of_falsy_parent_is_null(self):
        assert not child_span("txn.step", None)
        assert not child_span("txn.step", trace.NULL_SPAN)


class TestWireObserver:
    def test_inactive_by_default(self):
        wire = WireObserver()
        assert not wire.active
        wire.enable_metrics()
        assert wire.active
        wire.disable_metrics()
        assert not wire.active

    def test_stamp_copies_and_timestamps(self):
        wire = WireObserver()
        message = {"type": "lock", "id": 1}
        stamped = wire.stamp(message)
        assert "wire" not in message
        assert isinstance(stamped["wire"]["send_ns"], int)

    def test_send_receive_feed_stage_metrics(self):
        wire = WireObserver()
        wire.enable_metrics()
        message = wire.stamp({"type": "lock", "id": 1, "txn": "T1"})
        wire.sent(message, 64, 1500, 1)
        wire.received(message, 64, 1)
        assert isinstance(message["wire"]["recv_ns"], int)
        histogram = REGISTRY.get("repro_cluster_latency_ns").to_dict()
        series = histogram["series"]
        assert any('stage="encode"' in key for key in series)
        assert any('stage="transport"' in key for key in series)
        messages = REGISTRY.get("repro_cluster_messages_total").to_dict()
        bytes_total = REGISTRY.get("repro_cluster_bytes_total").to_dict()
        assert sum(messages["series"].values()) == 2
        assert sum(bytes_total["series"].values()) == 128

    def test_wire_events_carry_kind_bytes_and_clock(self):
        class FakeClock:
            now = 42

        wire = WireObserver()
        log = EventLog()
        wire.attach(log, clock=FakeClock())
        message = wire.stamp({"type": "lock", "id": 1, "txn": "T1"})
        wire.sent(message, 64, 1000, 2)
        wire.received(message, 64, 2)
        wire.detach()
        kinds = [event.kind for event in log]
        assert kinds == ["send", "recv"]
        for event in log:
            assert event.site == 2
            assert "lock 64B" in event.detail
            assert "clock=42" in event.detail


def _record(span, span_id, *, parent=None, pid=100, parent_pid=None,
            trace_id="T1#100.1", dur=1000, attrs=None):
    record = {
        "span": span,
        "id": span_id,
        "pid": pid,
        "start_ns": span_id * 10,
        "dur_ns": dur,
        "trace_id": trace_id,
    }
    if parent is not None:
        record["parent"] = parent
        if parent_pid is not None and parent_pid != pid:
            record["parent_pid"] = parent_pid
    if attrs:
        record["attrs"] = attrs
    return record


class TestCollector:
    def test_merge_traces_concatenates_files(self, tmp_path):
        import json

        for name, pid in (("a.jsonl", 1), ("b.jsonl", 2)):
            (tmp_path / name).write_text(
                json.dumps(_record("s", 1, pid=pid)) + "\n"
            )
        records = merge_traces(
            [str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")]
        )
        assert {r["pid"] for r in records} == {1, 2}

    def test_trees_link_remote_parents(self):
        records = [
            _record("txn.run", 1, pid=100, attrs={"txn": "T1"}, dur=9000),
            _record("txn.step", 2, parent=1, pid=100),
            _record("site.lock", 7, parent=2, pid=200, parent_pid=100),
        ]
        (tree,) = trace_trees(records)
        assert tree.connected
        assert tree.name == "T1"
        assert tree.duration_ns == 9000
        (step,) = tree.children_of(tree.root)
        assert [kid["span"] for kid in tree.children_of(step)] == ["site.lock"]

    def test_orphans_surface_as_extra_roots(self):
        records = [
            _record("txn.run", 1, pid=100),
            _record("site.lock", 7, parent=99, pid=200, parent_pid=300),
        ]
        (tree,) = trace_trees(records)
        assert not tree.connected
        assert len(tree.roots) == 2

    def test_trees_sort_slowest_first_and_skip_local_spans(self):
        records = [
            _record("txn.run", 1, trace_id="a", dur=1000),
            _record("txn.run", 2, trace_id="b", dur=5000),
            {"span": "local", "id": 3, "pid": 100, "start_ns": 0, "dur_ns": 9},
        ]
        forest = trace_trees(records)
        assert [tree.trace_id for tree in forest] == ["b", "a"]

    def test_stage_totals_and_rows(self):
        records = [
            _record(
                "site.lock",
                i,
                attrs={"server_queue_ns": 100 * i, "transport_ns": 10},
            )
            for i in range(1, 11)
        ]
        (tree,) = trace_trees(records)
        totals = tree.stage_totals()
        assert totals["server_queue"] == sum(100 * i for i in range(1, 11))
        assert totals["transport"] == 100
        rows = {row["stage"]: row for row in stage_rows(records)}
        assert set(rows) <= set(STAGES)
        assert rows["server_queue"]["count"] == 10
        assert rows["server_queue"]["max_ns"] == 1000
        assert rows["server_queue"]["p50_ns"] == 500
        assert rows["transport"]["p99_ns"] == 10

    def test_render_is_indented_and_bounded(self):
        records = [
            _record("txn.run", 1, attrs={"txn": "T1"}),
            _record("txn.step", 2, parent=1, attrs={"entity": "x"}),
        ]
        (tree,) = trace_trees(records)
        lines = tree.render(max_spans=1)
        assert lines[0].startswith("txn.run")
        assert any("more span" in line for line in lines)
        full = tree.render()
        assert full[1].startswith("  txn.step")
        assert "entity=x" in full[1]


    def test_empty_tree(self):
        tree = TraceTree("t", [])
        assert tree.duration_ns == 0
        assert tree.root is None
