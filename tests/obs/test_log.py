"""The CLI output funnel: verbosity channels and JSON logging."""

import json

from repro.obs import log


class TestChannels:
    def test_default_shows_result_and_out_only(self, capsys):
        log.result("the result")
        log.out("narration")
        log.info("detail")
        log.debug("diagnostics")
        out = capsys.readouterr().out
        assert "the result" in out
        assert "narration" in out
        assert "detail" not in out
        assert "diagnostics" not in out

    def test_quiet_drops_narration_keeps_result(self, capsys):
        log.set_verbosity(-1)
        log.result("the result")
        log.out("narration")
        out = capsys.readouterr().out
        assert "the result" in out
        assert "narration" not in out

    def test_double_quiet_silences_results_not_errors(self, capsys):
        log.set_verbosity(-2)
        log.result("the result")
        log.error("the error")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "the error" in captured.err

    def test_verbose_levels(self, capsys):
        log.set_verbosity(1)
        log.info("detail")
        log.debug("diagnostics")
        assert "detail" in capsys.readouterr().out
        log.set_verbosity(2)
        log.debug("diagnostics")
        assert "diagnostics" in capsys.readouterr().out

    def test_get_verbosity_roundtrip(self):
        log.set_verbosity(3)
        assert log.get_verbosity() == 3


class TestJsonLogging:
    def test_records_are_json_lines(self, capsys):
        log.use_json_logging()
        log.result("all done")
        log.error("went wrong")
        log.use_plain_output()
        lines = [
            json.loads(line)
            for line in capsys.readouterr().err.splitlines()
        ]
        assert lines[0]["message"] == "all done"
        assert lines[0]["level"] == "info"
        assert lines[1]["message"] == "went wrong"
        assert lines[1]["level"] == "error"
        assert all("ts" in line for line in lines)

    def test_plain_output_restored(self, capsys):
        log.use_json_logging()
        log.use_plain_output()
        log.result("plain again")
        captured = capsys.readouterr()
        assert "plain again" in captured.out
        assert captured.err == ""
