"""Every shipped example must run clean — they are the quickstart
surface a downstream user touches first."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent.parent / "examples"


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "sat_reduction_demo.py",
        "geometry_gallery.py",
        "safety_workbench.py",
        "reproduce_paper.py",
    ],
)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stdout[-2000:] + result.stderr[-2000:]
    assert result.stdout  # every example narrates


def test_reproduce_paper_all_checks_pass():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "reproduce_paper.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0
    assert "FAIL" not in result.stdout
    assert "20/20 checks passed" in result.stdout


@pytest.mark.parametrize(
    "script", ["bank_audit.py", "lock_manager_simulation.py"]
)
def test_slow_examples_run_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=900,
    )
    assert result.returncode == 0, result.stdout[-2000:] + result.stderr[-2000:]
