"""Integration tests: whole-paper pipelines across module boundaries."""

import random

import pytest

from repro.core import (
    decide_safety,
    decide_safety_exact,
    decide_safety_exhaustive,
)
from repro.core.certificates import certificate_from_dominator
from repro.core.closure import ClosureContradiction, close_with_respect_to, is_closed
from repro.core.reduction import reduce_cnf_to_pair
from repro.dsl import parse_system, render_system
from repro.logic import all_models, is_satisfiable, solve
from repro.sim import ReplayDriver, run_once
from repro.workloads import (
    figure_8_formula,
    random_pair_system,
    random_restricted_cnf,
)


class TestTheorem2PipelineOnTheorem3Instances:
    """The paper's own composition: "for all other [desirable]
    dominators ... produce partial orders that have the closure
    property, and use Corollary 2 to construct certificates"."""

    def test_fig8_desirable_dominator_yields_certificate(self):
        artifacts = reduce_cnf_to_pair(figure_8_formula())
        model = solve(artifacts.formula)
        dominator = artifacts.dominator_for_assignment(model)
        certificate = certificate_from_dominator(
            artifacts.first,
            artifacts.second,
            dominator,
            enforce_dominator_invariant=False,
        )
        assert certificate.verify()
        # And the certificate replays on the simulator.
        result = run_once(
            certificate.system, ReplayDriver(certificate.schedule)
        )
        assert result.outcome == "non-serializable"

    def test_every_model_of_fig8_yields_certificate(self):
        artifacts = reduce_cnf_to_pair(figure_8_formula())
        count = 0
        for model in all_models(artifacts.formula, limit=4):
            dominator = artifacts.dominator_for_assignment(model)
            certificate = certificate_from_dominator(
                artifacts.first,
                artifacts.second,
                dominator,
                enforce_dominator_invariant=False,
            )
            assert certificate.verify()
            count += 1
        assert count == 4

    @pytest.mark.parametrize("seed", range(6))
    def test_random_satisfiable_formulas_yield_certificates(self, seed):
        rng = random.Random(seed)
        formula = random_restricted_cnf(
            rng, variables=rng.randint(2, 3), clauses=rng.randint(1, 2)
        )
        model = solve(formula)
        if model is None:
            return
        artifacts = reduce_cnf_to_pair(formula)
        dominator = artifacts.dominator_for_assignment(model)
        certificate = certificate_from_dominator(
            artifacts.first,
            artifacts.second,
            dominator,
            enforce_dominator_invariant=False,
        )
        assert certificate.verify()

    def test_undesirable_dominator_hits_closure_contradiction(self):
        """Type-1 undesirable dominator (w and w' together) must force
        the Uw/Uw' cycle the paper describes."""
        artifacts = reduce_cnf_to_pair(figure_8_formula())
        members = set(artifacts.upper_cycle)
        members.update(artifacts.w_copies_of["x1"])
        members.add(artifacts.w_neg_of["x1"])  # both polarities: type 1
        with pytest.raises(ClosureContradiction):
            close_with_respect_to(
                artifacts.first,
                artifacts.second,
                frozenset(members),
                enforce_dominator_invariant=False,
            )


class TestDslToSimulatorPipeline:
    @pytest.mark.parametrize("seed", range(8))
    def test_generated_system_round_trips_through_dsl(self, seed):
        """generator -> render -> parse -> decide -> replay witness."""
        rng = random.Random(seed)
        system = random_pair_system(
            rng, sites=2, entities=rng.randint(2, 4), shared=rng.randint(2, 3)
        )
        reparsed = parse_system(render_system(system))
        verdict = decide_safety(reparsed)
        assert verdict.safe == decide_safety(system).safe
        if not verdict.safe:
            result = run_once(reparsed, ReplayDriver(verdict.witness))
            assert result.outcome == "non-serializable"


class TestDeciderStack:
    @pytest.mark.parametrize("seed", range(15))
    def test_three_deciders_agree(self, seed):
        """Theorem 2 (when applicable), exact, exhaustive: one answer."""
        rng = random.Random(3000 + seed)
        system = random_pair_system(
            rng, sites=rng.choice([1, 2, 3]), entities=rng.randint(2, 4),
            shared=rng.randint(2, 3), cross_arcs=rng.randint(0, 2),
        )
        first, second = system.pair()
        exact = decide_safety_exact(first, second).safe
        exhaustive = decide_safety_exhaustive(system).safe
        front = decide_safety(system, want_certificate=False).safe
        assert exact == exhaustive == front

    def test_reduction_safety_equals_unsatisfiability(self):
        formulas = [
            ("(a | b) & (~a | b)", True),
            ("(p | y1) & (p | ~y1) & (q | y2) & (q | ~y2) & (~p | ~q)", False),
        ]
        from repro.logic import CnfFormula

        for text, expected_sat in formulas:
            formula = CnfFormula.parse(text)
            assert is_satisfiable(formula) == expected_sat
            artifacts = reduce_cnf_to_pair(formula)
            verdict = decide_safety_exact(artifacts.first, artifacts.second)
            assert (not verdict.safe) == expected_sat
