"""The replicated runtime: report shape, determinism, validation."""

import pytest

from repro.cluster.runtime import ClusterError
from repro.faults.plan import FaultPlan, SiteCrash
from repro.replica import ReplicaReport, run_replicated_sync


class TestHealthyRun:
    def test_all_commit_without_failover(self, transfer_system):
        report = run_replicated_sync(transfer_system, replicas=3, rounds=2)
        assert isinstance(report, ReplicaReport)
        assert report.committed == report.transactions == 4
        assert report.serializable
        assert report.audit_complete
        assert report.failovers == 0
        assert report.replicas == 3
        # Exactly the boot leaders: replica 0 of each of the 2 sites.
        assert [e["epoch"] for e in report.elections] == [1, 1]

    def test_report_payload_round_trips(self, transfer_system):
        report = run_replicated_sync(transfer_system, replicas=3)
        payload = report.to_dict()
        for key in (
            "replicas",
            "lease_ticks",
            "failovers",
            "elections",
            "recovery",
            "clock_end",
            "history_fingerprint",
            "outcome_fingerprint",
        ):
            assert key in payload
        assert payload["replicas"] == 3
        rendered = report.render()
        assert "replicas" in rendered and "failovers" in rendered

    def test_same_seed_is_bit_deterministic(self, transfer_system):
        first = run_replicated_sync(
            transfer_system, replicas=3, rounds=3, seed=11
        )
        second = run_replicated_sync(
            transfer_system, replicas=3, rounds=3, seed=11
        )
        assert first.history_fingerprint == second.history_fingerprint
        # Outcomes too — including the retry schedule each txn took.
        assert first.outcome_fingerprint == second.outcome_fingerprint


class TestValidation:
    def test_fault_plan_requires_request_timeout(self, transfer_system):
        plan = FaultPlan(site_crashes=(SiteCrash(site=1, at=10),))
        with pytest.raises(ClusterError, match="request_timeout"):
            run_replicated_sync(transfer_system, replicas=3, fault_plan=plan)

    def test_fault_plan_validated_against_topology(self, transfer_system):
        from repro.errors import FaultPlanError

        plan = FaultPlan(site_crashes=(SiteCrash(site=9, at=10),))
        with pytest.raises(FaultPlanError, match="unknown site 9"):
            run_replicated_sync(
                transfer_system,
                replicas=3,
                fault_plan=plan,
                request_timeout=1.0,
            )

    def test_replicas_must_be_positive(self, transfer_system):
        with pytest.raises(ClusterError, match="replica"):
            run_replicated_sync(transfer_system, replicas=0)
