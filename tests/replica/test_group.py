"""Replica addressing, group bookkeeping, and the replication log."""

import pytest

from repro.replica import (
    GroupRegistry,
    ReplicaGroup,
    ReplicationLog,
    logical_site_of,
    replica_address,
)


class TestAddressing:
    def test_round_trip(self):
        for site in (1, 2, 7):
            for index in (0, 1, 4):
                assert logical_site_of(replica_address(site, index)) == site

    def test_plain_site_addresses_map_to_themselves(self):
        # Addresses below the stride are unreplicated SiteServer ids.
        assert logical_site_of(1) == 1
        assert logical_site_of(999) == 999

    def test_addresses_are_distinct_across_groups(self):
        a = ReplicaGroup(1, 3)
        b = ReplicaGroup(2, 3)
        assert not set(a.addresses) & set(b.addresses)


class TestReplicaGroup:
    def test_quorum_is_a_majority(self):
        assert ReplicaGroup(1, 1).quorum == 1
        assert ReplicaGroup(1, 3).quorum == 2
        assert ReplicaGroup(1, 5).quorum == 3

    def test_boot_leader_is_replica_zero(self):
        group = ReplicaGroup(1, 3)
        group.record_leader(group.addresses[0], 1, 0)
        assert group.leader_address == group.addresses[0]
        assert group.failovers == 0

    def test_leader_change_counts_as_failover(self):
        group = ReplicaGroup(1, 3)
        group.record_leader(group.addresses[0], 1, 0)
        group.record_leader(group.addresses[2], 4, 50)
        assert group.failovers == 1
        assert group.leader_address == group.addresses[2]
        assert [e["epoch"] for e in group.elections] == [1, 4]

    def test_note_grant_stamps_the_matching_epoch_once(self):
        group = ReplicaGroup(1, 3)
        group.record_leader(group.addresses[0], 1, 0)
        group.note_grant(1, 12)
        group.note_grant(1, 30)  # later grants don't move the mark
        group.note_grant(9, 40)  # unknown epochs are ignored
        assert group.elections[0]["first_grant_at"] == 12


class TestGroupRegistry:
    def test_leader_of_follows_record_leader(self):
        registry = GroupRegistry()
        group = ReplicaGroup(1, 3)
        registry.add(group)
        group.record_leader(group.addresses[1], 2, 5)
        assert registry.leader_of(1) == group.addresses[1]
        assert registry.leader_of(99) is None


class TestReplicationLog:
    def test_append_assigns_contiguous_seqs(self):
        log = ReplicationLog()
        first = log.append("grant", txn="T1", entity="x")
        second = log.append("unlock", txn="T1", entity="x")
        assert (first["seq"], second["seq"]) == (1, 2)
        assert log.seq == 2

    def test_adopt_is_idempotent_and_gap_checked(self):
        leader = ReplicationLog()
        records = [leader.append("grant", txn="T1", entity="x"),
                   leader.append("unlock", txn="T1", entity="x")]
        follower = ReplicationLog()
        follower.adopt(records[0])
        follower.adopt(records[0])  # replay of an old record is a no-op
        assert follower.seq == 1
        with pytest.raises(ValueError):
            follower.adopt({"seq": 5, "op": "grant"})
        follower.adopt(records[1])
        assert follower.records == leader.records

    def test_since_returns_the_suffix(self):
        log = ReplicationLog()
        for i in range(5):
            log.append("grant", txn=f"T{i}", entity="x")
        assert [r["seq"] for r in log.since(3)] == [4, 5]
        assert [r["seq"] for r in log.since(0, limit=2)] == [1, 2]
