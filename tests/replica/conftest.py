"""Shared replicated-cluster test workloads."""

import pytest

from repro.core.entity import DistributedDatabase
from repro.core.schedule import TransactionSystem
from repro.core.step import lock, unlock, update
from repro.core.transaction import Transaction
from repro.faults.plan import FaultPlan, SiteCrash


def chain_tx(name, database, entities):
    """A totally ordered transaction locking *entities* in order
    (lock, update, lock, update, ..., then unlock in lock order)."""
    steps = []
    for entity in entities:
        steps.append(lock(entity))
        steps.append(update(entity))
    for entity in entities:
        steps.append(unlock(entity))
    order = [(steps[i], steps[i + 1]) for i in range(len(steps) - 1)]
    return Transaction(name, database, steps, order)


@pytest.fixture
def two_site_db():
    return DistributedDatabase({"x": 1, "y": 2})


@pytest.fixture
def transfer_system(two_site_db):
    """Two 2PL transactions locking x and y in opposite orders — safe
    (both two-phase) but guaranteed deadlock-capable."""
    return TransactionSystem(
        [
            chain_tx("T1", two_site_db, ["x", "y"]),
            chain_tx("T2", two_site_db, ["y", "x"]),
        ]
    )


@pytest.fixture
def kill_leader_plan():
    """Permanently kill site 1's lease leader at logical time 40."""
    return FaultPlan(site_crashes=(SiteCrash(site=1, at=40),))
