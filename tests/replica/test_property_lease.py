"""Property: at most one leader per lease epoch.

Election storms — concurrent campaigns provoked by suspect hints,
with or without the incumbent actually dead — may depose leaders and
race each other, but two replicas must never assume leadership of the
same group in the same epoch: epochs are index-stamped, so every
campaign bids a distinct one, and a quorum promises each epoch to at
most one candidate.
"""

import asyncio

from hypothesis import given, settings, strategies as st

from repro.cluster import protocol
from repro.cluster.transport import MemoryTransport
from repro.replica import LogicalClock, ReplicaGroup, ReplicaServer


async def _ask(transport, address, kind, **fields):
    connection = await transport.connect(address)
    try:
        await connection.send(protocol.request(kind, 1, **fields))
        return await asyncio.wait_for(connection.recv(), 5.0)
    except (asyncio.TimeoutError, Exception):
        return None
    finally:
        await connection.close()


@settings(max_examples=10, deadline=None)
@given(
    replicas=st.integers(2, 5),
    storms=st.integers(1, 3),
    kill_boot_leader=st.booleans(),
)
def test_at_most_one_leader_per_epoch(replicas, storms, kill_boot_leader):
    async def run():
        transport = MemoryTransport()
        clock = LogicalClock()
        group = ReplicaGroup(1, replicas)
        servers = [
            ReplicaServer(
                group,
                index,
                transport=transport,
                clock=clock,
                peers=group.addresses,
                election_timeout=0.05,
            )
            for index in range(replicas)
        ]
        for server in servers:
            await server.start()
        stopped = set()
        try:
            if kill_boot_leader:
                await servers[0].stop()
                stopped.add(0)
            for _ in range(storms):
                # Every live follower is told the current leader is
                # suspect, all at once: maximal campaign contention.
                suspect = group.leader_address
                await asyncio.gather(
                    *(
                        _ask(transport, address, "leader", suspect=suspect)
                        for index, address in enumerate(group.addresses)
                        if index not in stopped and address != suspect
                    )
                )
        finally:
            for index, server in enumerate(servers):
                if index not in stopped:
                    await server.stop()
            await transport.close()
        return servers

    servers = asyncio.run(run())
    group = servers[0].group

    # Every leadership assumption used a distinct epoch.
    epochs = [entry["epoch"] for entry in group.elections]
    assert len(epochs) == len(set(epochs))
    # And no two servers *currently* claim the same epoch's lease.
    claimed = [s.epoch for s in servers if s.is_leader()]
    assert len(claimed) == len(set(claimed))
