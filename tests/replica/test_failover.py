"""Failover: leader kills, acked-commit durability, recovery timing."""

import asyncio

from repro.cluster import protocol
from repro.cluster.transport import MemoryTransport
from repro.replica import (
    LogicalClock,
    ReplicaGroup,
    ReplicaServer,
    run_replicated_sync,
)


async def _ask(transport, address, kind, **fields):
    """One-shot request/reply against a replica."""
    connection = await transport.connect(address)
    try:
        await connection.send(protocol.request(kind, 1, **fields))
        return await asyncio.wait_for(connection.recv(), 5.0)
    finally:
        await connection.close()


class TestLeaderKillRun:
    def test_permanent_leader_kill_is_survived(
        self, transfer_system, kill_leader_plan
    ):
        report = run_replicated_sync(
            transfer_system,
            replicas=3,
            rounds=2,
            seed=7,
            max_retries=8,
            # Wall-clock: generous enough that a busy single-CPU runner
            # never times out a healthy leader, small enough that the
            # killed leader is still detected quickly.
            request_timeout=2.0,
            fault_plan=kill_leader_plan,
        )
        assert report.committed == report.transactions == 4
        assert report.audit_complete
        assert report.serializable
        assert report.failovers >= 1
        assert len(report.recovery) == 1
        entry = report.recovery[0]
        assert entry["site"] == 1
        assert entry["recovery_steps"] is not None
        assert entry["recovery_steps"] > 0

    def test_leader_kill_survived_with_batching_and_binary_codec(
        self, transfer_system, kill_leader_plan
    ):
        # Batched steps and binary frames must compose with failover: a
        # batch refused by a demoted leader (or lost with it) is
        # replayed step-by-step through the retry path, and codec
        # negotiation repeats against the new leader.
        report = run_replicated_sync(
            transfer_system,
            replicas=3,
            rounds=2,
            seed=7,
            max_retries=8,
            request_timeout=2.0,
            fault_plan=kill_leader_plan,
            codec="binary",
            batch=True,
        )
        assert report.committed == report.transactions == 4
        assert report.audit_complete
        assert report.serializable
        assert report.failovers >= 1
        assert report.recovery[0]["recovery_steps"] is not None

    def test_single_replica_fails_honestly(self, transfer_system):
        from repro.faults.plan import FaultPlan, SiteCrash

        # One replica is the paper's crash-vulnerable site: the killed
        # leader has no successor, so the run cannot hide the outage.
        # (Kill early: a one-round run is over by logical time ~30.)
        report = run_replicated_sync(
            transfer_system,
            replicas=1,
            rounds=1,
            seed=7,
            max_retries=2,
            request_timeout=0.25,
            fault_plan=FaultPlan(site_crashes=(SiteCrash(site=1, at=10),)),
        )
        assert report.committed < report.transactions
        assert not report.audit_complete
        assert report.recovery[0]["recovery_steps"] is None


class TestCommitDurability:
    def test_commit_acked_by_old_leader_survives_failover(self):
        """Regression: once the old leader answers ``committed``, the
        transaction must appear in the history served after failover —
        the commit barrier ships the log before the ack."""

        async def run():
            transport = MemoryTransport()
            clock = LogicalClock()
            group = ReplicaGroup(1, 3)
            servers = [
                ReplicaServer(
                    group,
                    index,
                    transport=transport,
                    clock=clock,
                    peers=group.addresses,
                    election_timeout=0.05,
                )
                for index in range(3)
            ]
            for server in servers:
                await server.start()
            old_leader = group.addresses[0]
            try:
                reply = await _ask(
                    transport, old_leader, "lock", txn="T1", entity="x", age=0
                )
                assert reply["status"] == "granted"
                await _ask(
                    transport, old_leader, "update", txn="T1", entity="x", step=1
                )
                await _ask(transport, old_leader, "unlock", txn="T1", entity="x")
                reply = await _ask(transport, old_leader, "commit", txn="T1")
                assert reply["status"] == "committed"

                # The leader dies the instant after acking the commit.
                await servers[0].stop()

                # A client suspects it; a follower campaigns and wins.
                reply = await _ask(
                    transport, group.addresses[1], "leader", suspect=old_leader
                )
                new_leader = int(reply["leader"])
                assert new_leader != old_leader

                history = await _ask(transport, new_leader, "history")
                assert history["site_orders"].get("x") == ["T1"]
            finally:
                for server in servers[1:]:
                    await server.stop()
                await transport.close()

        asyncio.run(run())

    def test_new_leader_inherits_the_lock_table(self):
        """An *unreleased* grant survives too: after failover the new
        leader still refuses the entity to other transactions."""

        async def run():
            transport = MemoryTransport()
            clock = LogicalClock()
            group = ReplicaGroup(1, 3)
            servers = [
                ReplicaServer(
                    group,
                    index,
                    transport=transport,
                    clock=clock,
                    peers=group.addresses,
                    election_timeout=0.05,
                    grant_timeout=None,
                )
                for index in range(3)
            ]
            for server in servers:
                await server.start()
            old_leader = group.addresses[0]
            try:
                reply = await _ask(
                    transport, old_leader, "lock", txn="T1", entity="x", age=0
                )
                assert reply["status"] == "granted"
                await servers[0].stop()
                reply = await _ask(
                    transport, group.addresses[1], "leader", suspect=old_leader
                )
                new_leader = int(reply["leader"])
                holder = next(
                    s for s in servers[1:] if s.address == new_leader
                )
                assert holder.locks.holder("x") == "T1"
            finally:
                for server in servers[1:]:
                    await server.stop()
                await transport.close()

        asyncio.run(run())
