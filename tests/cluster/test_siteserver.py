"""One site server driven directly over the wire protocol."""

import asyncio

from repro.cluster import protocol
from repro.cluster.siteserver import SiteServer
from repro.cluster.transport import MemoryTransport


async def _rpc(connection, kind, request_id, **fields):
    await connection.send(protocol.request(kind, request_id, **fields))
    return await connection.recv()


def run(coro):
    return asyncio.run(coro)


async def _boot():
    transport = MemoryTransport()
    server = SiteServer(1, transport=transport)
    await server.start()
    return transport, server


class TestLockProtocol:
    def test_grant_release_grant(self):
        async def scenario():
            transport, server = await _boot()
            a = await transport.connect(1)
            b = await transport.connect(1)
            first = await _rpc(a, "lock", 1, txn="T1", entity="x", age=0)
            assert first["status"] == "granted"
            # T2 blocks; the reply arrives only after T1 unlocks.
            await b.send(protocol.request("lock", 1, txn="T2", entity="x", age=1))
            await transport.sleep(5)
            released = await _rpc(a, "unlock", 2, txn="T1", entity="x")
            assert released["status"] == "released"
            second = await b.recv()
            await transport.close()
            return second

        reply = run(scenario())
        assert reply["status"] == "granted"

    def test_lock_retry_is_idempotent(self):
        async def scenario():
            transport, server = await _boot()
            a = await transport.connect(1)
            await _rpc(a, "lock", 1, txn="T1", entity="x", age=0)
            again = await _rpc(a, "lock", 2, txn="T1", entity="x", age=0)
            await transport.close()
            return again

        assert run(scenario())["status"] == "granted"

    def test_lock_retry_while_queued_supersedes_original(self):
        # Regression: a retried lock request used to install a second
        # pending entry whose stale timer could answer the retry
        # prematurely and leave the original id unanswered.
        async def scenario():
            transport, server = await _boot()
            a = await transport.connect(1)
            b = await transport.connect(1)
            await _rpc(a, "lock", 1, txn="T1", entity="x", age=0)
            await b.send(protocol.request("lock", 1, txn="T2", entity="x", age=1))
            await transport.sleep(5)
            # The client gave up on id 1 and retried with id 2.
            await b.send(protocol.request("lock", 2, txn="T2", entity="x", age=1))
            superseded = await b.recv()
            await _rpc(a, "unlock", 2, txn="T1", entity="x")
            granted = await b.recv()
            await transport.close()
            return superseded, granted

        superseded, granted = run(scenario())
        assert superseded["status"] == "superseded" and superseded["id"] == 1
        assert granted["status"] == "granted" and granted["id"] == 2

    def test_update_requires_lock(self):
        async def scenario():
            transport, server = await _boot()
            a = await transport.connect(1)
            denied = await _rpc(a, "update", 1, txn="T1", entity="x")
            await _rpc(a, "lock", 2, txn="T1", entity="x", age=0)
            applied = await _rpc(a, "update", 3, txn="T1", entity="x")
            await transport.close()
            return denied, applied

        denied, applied = run(scenario())
        assert denied["status"] == "error"
        assert applied["status"] == "applied"

    def test_history_reports_only_committed_updates(self):
        async def scenario():
            transport, server = await _boot()
            a = await transport.connect(1)
            await _rpc(a, "lock", 1, txn="T1", entity="x", age=0)
            await _rpc(a, "update", 2, txn="T1", entity="x")
            before = await _rpc(a, "history", 3)
            await _rpc(a, "commit", 4, txn="T1")
            after = await _rpc(a, "history", 5)
            await transport.close()
            return before, after

        before, after = run(scenario())
        assert before["site_orders"] == {"x": []}
        assert after["site_orders"] == {"x": ["T1"]}

    def test_release_aborts_pending_and_scrubs_updates(self):
        async def scenario():
            transport, server = await _boot()
            a = await transport.connect(1)
            b = await transport.connect(1)
            await _rpc(a, "lock", 1, txn="T1", entity="x", age=0)
            await _rpc(a, "update", 2, txn="T1", entity="x")
            await b.send(protocol.request("lock", 1, txn="T2", entity="x", age=1))
            await transport.sleep(5)
            aborted = await _rpc(a, "release", 3, txn="T1")
            assert aborted["status"] == "aborted"
            granted = await b.recv()  # T2 promoted after the abort
            history = await _rpc(b, "history", 2)
            await transport.close()
            return granted, history

        granted, history = run(scenario())
        assert granted["status"] == "granted"
        assert history["site_orders"] == {"x": []}

    def test_ping_and_unknown_kind(self):
        async def scenario():
            transport, server = await _boot()
            a = await transport.connect(1)
            pong = await _rpc(a, "ping", 1)
            await a.send({"type": "gossip", "id": 2})
            unknown = await a.recv()
            await transport.close()
            return pong, unknown

        pong, unknown = run(scenario())
        assert pong["status"] == "pong" and pong["site"] == 1
        assert unknown["status"] == "error"


class _RecordingConnection:
    """Captures replies; optionally runs a one-shot hook inside send()."""

    def __init__(self):
        self.sent = []
        self.hook = None

    async def send(self, message):
        self.sent.append(message)
        hook, self.hook = self.hook, None
        if hook is not None:
            await hook()

    async def recv(self):
        return None

    async def close(self):
        pass


class TestReleaseRaces:
    def test_release_tolerates_racing_resolve(self):
        # Regression: _on_release snapshots the waiting entities, then
        # awaits between pops; a resolve landing in that window used to
        # crash the handler dereferencing the vanished pending entry.
        async def scenario():
            transport = MemoryTransport()
            server = SiteServer(1, transport=transport)
            server.running = True
            holder = _RecordingConnection()
            waiter = _RecordingConnection()
            releaser = _RecordingConnection()
            await server._on_lock(holder, {"id": 1, "txn": "T1", "entity": "x", "age": 0})
            await server._on_lock(holder, {"id": 2, "txn": "T1", "entity": "y", "age": 0})
            await server._on_lock(waiter, {"id": 1, "txn": "T2", "entity": "x", "age": 1})
            await server._on_lock(waiter, {"id": 2, "txn": "T2", "entity": "y", "age": 1})

            async def racing_resolve():
                await server._handle_resolve({"victim": "T2", "cycle": []})

            waiter.hook = racing_resolve
            await server._on_release(releaser, {"id": 3, "txn": "T2"})
            await transport.close()
            return waiter.sent, releaser.sent

        waiter_replies, releaser_replies = run(scenario())
        assert sorted(m["status"] for m in waiter_replies) == ["aborted", "deadlock"]
        assert releaser_replies[-1]["status"] == "aborted"


class TestDeadlockHandling:
    def test_single_site_cycle_resolved_by_probe(self):
        async def scenario():
            transport = MemoryTransport()
            server = SiteServer(1, transport=transport)
            await server.start()
            a = await transport.connect(1)
            b = await transport.connect(1)
            await _rpc(a, "lock", 1, txn="T1", entity="x", age=0)
            await _rpc(b, "lock", 1, txn="T2", entity="y", age=1)
            await a.send(protocol.request("lock", 2, txn="T1", entity="y", age=0))
            await transport.sleep(5)
            await b.send(protocol.request("lock", 2, txn="T2", entity="x", age=1))
            # One of the two pending requests must be answered
            # "deadlock" (abort-youngest kills T2, the higher age).
            reply = await b.recv()
            await transport.close()
            return reply

        reply = run(scenario())
        assert reply["status"] == "deadlock"
        assert reply["victim"] == "T2"
        assert set(reply["cycle"]) == {"T1", "T2"}

    def test_grant_timeout_answers_waiters(self):
        async def scenario():
            transport = MemoryTransport()
            server = SiteServer(
                1, transport=transport, deadlock_policy="none", grant_timeout=5
            )
            await server.start()
            a = await transport.connect(1)
            b = await transport.connect(1)
            await _rpc(a, "lock", 1, txn="T1", entity="x", age=0)
            await b.send(protocol.request("lock", 1, txn="T2", entity="x", age=1))
            reply = await b.recv()
            await transport.close()
            return reply

        reply = run(scenario())
        assert reply["status"] == "timeout"

    def test_fifo_queue_served_in_arrival_order(self):
        async def scenario():
            transport, server = await _boot()
            a = await transport.connect(1)
            b = await transport.connect(1)
            c = await transport.connect(1)
            await _rpc(a, "lock", 1, txn="T1", entity="x", age=0)
            await b.send(protocol.request("lock", 1, txn="T2", entity="x", age=1))
            await transport.sleep(5)
            await c.send(protocol.request("lock", 1, txn="T3", entity="x", age=2))
            await transport.sleep(5)
            await _rpc(a, "unlock", 2, txn="T1", entity="x")
            second = await b.recv()
            await _rpc(b, "unlock", 2, txn="T2", entity="x")
            third = await c.recv()
            await transport.close()
            return second, third

        second, third = run(scenario())
        assert second["status"] == "granted"
        assert third["status"] == "granted"
