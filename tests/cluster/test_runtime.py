"""End-to-end cluster runs: vetting, faults, serializability audit."""

import asyncio

import pytest

from repro.cluster import ClusterError, run_cluster_sync
from repro.cluster.runtime import run_cluster
from repro.faults import FaultPlan, GrantDelay, MessageDrop, SiteCrash
from repro.obs.events import EventLog
from repro.workloads import figure_1


class TestSafeWorkloads:
    def test_deadlock_prone_pair_commits_serializably(
        self, deadlock_prone_system
    ):
        report = run_cluster_sync(
            deadlock_prone_system, rounds=4, seed=3, max_retries=8
        )
        assert report.mode == "vetted-safe"
        assert report.serializable
        assert report.serial_witness is not None
        assert report.committed == report.transactions

    def test_round_clones_get_distinct_names(self, deadlock_prone_system):
        report = run_cluster_sync(deadlock_prone_system, rounds=3, seed=0)
        names = {outcome.name for outcome in report.outcomes}
        assert "T1" in names and "T1@r2" in names and "T1@r3" in names
        assert len(names) == 6

    def test_tcp_transport_run(self, deadlock_prone_system):
        report = run_cluster_sync(
            deadlock_prone_system,
            transport="tcp",
            rounds=3,
            seed=1,
            max_retries=8,
            request_timeout=30.0,
        )
        assert report.transport == "tcp"
        assert report.serializable
        assert report.committed == report.transactions


class TestUnsafeWorkloads:
    def test_figure_1_runs_runtime_guarded(self):
        report = run_cluster_sync(figure_1(), rounds=3, seed=7)
        assert report.mode == "runtime-guarded"
        assert report.gateway is not None and report.gateway.rejected

    def test_figure_1_exhibits_non_serializable_history(self):
        # The paper's Fig. 1 pair is unsafe; under concurrent rounds the
        # anomaly actually materializes in the committed site orders.
        report = run_cluster_sync(figure_1(), rounds=3, seed=7)
        assert not report.serializable
        assert report.serial_witness is None


class TestDeterminism:
    def test_same_seed_same_history(self, deadlock_prone_system):
        first = run_cluster_sync(deadlock_prone_system, rounds=4, seed=11)
        second = run_cluster_sync(deadlock_prone_system, rounds=4, seed=11)
        assert first.history_fingerprint == second.history_fingerprint
        assert [o.to_dict() for o in first.outcomes] == [
            o.to_dict() for o in second.outcomes
        ]
        # The outcome fingerprint digests the full outcome list —
        # including each transaction's retry count, so a run is only
        # "deterministic" if its retry/backoff schedule replayed too.
        assert first.outcome_fingerprint == second.outcome_fingerprint
        assert first.outcome_fingerprint != first.history_fingerprint

    def test_different_seed_changes_outcome_fingerprint(
        self, deadlock_prone_system
    ):
        first = run_cluster_sync(deadlock_prone_system, rounds=4, seed=11)
        other = run_cluster_sync(deadlock_prone_system, rounds=4, seed=12)
        # The committed history may coincide; the seeded retry jitter
        # makes identical full outcomes across seeds vanishingly rare.
        assert (
            first.outcome_fingerprint != other.outcome_fingerprint
            or [o.to_dict() for o in first.outcomes]
            == [o.to_dict() for o in other.outcomes]
        )

    def test_unsafe_history_deterministic_too(self):
        first = run_cluster_sync(figure_1(), rounds=3, seed=7)
        second = run_cluster_sync(figure_1(), rounds=3, seed=7)
        assert first.history_fingerprint == second.history_fingerprint


class TestNetworkFaults:
    def test_message_drops_survived_via_request_timeout(
        self, deadlock_prone_system
    ):
        plan = FaultPlan(message_drops=(MessageDrop(site=1, at=2, until=6),))
        log = EventLog()
        report = run_cluster_sync(
            deadlock_prone_system,
            rounds=2,
            seed=3,
            fault_plan=plan,
            request_timeout=0.5,
            max_retries=8,
            event_log=log,
        )
        assert report.dropped >= 1
        assert len(log.of_kind("drop")) == report.dropped
        assert report.serializable

    def test_site_crash_freezes_then_recovers(self, deadlock_prone_system):
        plan = FaultPlan(site_crashes=(SiteCrash(site=2, at=3, recover_at=10),))
        log = EventLog()
        report = run_cluster_sync(
            deadlock_prone_system,
            rounds=2,
            seed=3,
            fault_plan=plan,
            max_retries=8,
            event_log=log,
        )
        assert len(log.of_kind("crash")) == 1
        assert len(log.of_kind("recover")) == 1
        assert report.committed == report.transactions
        assert report.serializable

    def test_grant_delay_slows_but_preserves_correctness(
        self, deadlock_prone_system
    ):
        plan = FaultPlan(grant_delays=(GrantDelay(at=1, until=8, entity="x"),))
        report = run_cluster_sync(
            deadlock_prone_system,
            rounds=2,
            seed=3,
            fault_plan=plan,
            max_retries=8,
        )
        assert report.committed == report.transactions
        assert report.serializable

    def test_plan_validated_against_system(self, deadlock_prone_system):
        plan = FaultPlan(message_drops=(MessageDrop(site=9, at=0, until=4),))
        with pytest.raises(Exception):
            run_cluster_sync(deadlock_prone_system, fault_plan=plan)


class TestAuditCompleteness:
    def test_permanent_crash_requires_request_timeout(self, deadlock_prone_system):
        plan = FaultPlan(site_crashes=(SiteCrash(site=1, at=3),))
        with pytest.raises(ClusterError, match="permanent"):
            run_cluster_sync(deadlock_prone_system, fault_plan=plan)

    def test_permanent_crash_allowed_with_request_timeout(self, deadlock_prone_system):
        plan = FaultPlan(site_crashes=(SiteCrash(site=1, at=10_000),))
        report = run_cluster_sync(
            deadlock_prone_system, fault_plan=plan, request_timeout=5.0, seed=0
        )
        assert report.committed == report.transactions

    def test_unanswered_history_flags_site_unreachable(
        self, deadlock_prone_system, monkeypatch
    ):
        from repro.cluster.siteserver import SiteServer

        async def swallow_history(self, connection, message):
            pass

        monkeypatch.setattr(SiteServer, "_on_history", swallow_history)
        report = run_cluster_sync(
            deadlock_prone_system, seed=0, request_timeout=0.2, max_retries=8
        )
        assert report.unreachable_sites == [1, 2]
        assert not report.audit_complete
        assert report.to_dict()["audit_complete"] is False

    def test_lost_commit_reported_as_partial_commit(
        self, deadlock_prone_system, monkeypatch
    ):
        from repro.cluster.siteserver import SiteServer

        async def swallow_commit(self, connection, message):
            pass

        monkeypatch.setattr(SiteServer, "_on_commit", swallow_commit)
        report = run_cluster_sync(
            deadlock_prone_system, seed=0, request_timeout=0.1, max_retries=8
        )
        assert report.partial_commits == report.transactions
        assert report.committed == 0
        assert not report.audit_complete
        outcome = report.outcomes[0]
        assert outcome.outcome == "partial-commit"
        assert outcome.unacked_commit_sites
        assert (
            outcome.to_dict()["unacked_commit_sites"] == outcome.unacked_commit_sites
        )


class TestConfiguration:
    def test_bad_rounds_rejected(self, deadlock_prone_system):
        with pytest.raises(ClusterError):
            run_cluster_sync(deadlock_prone_system, rounds=0)

    def test_bad_transport_rejected(self, deadlock_prone_system):
        with pytest.raises(ClusterError):
            run_cluster_sync(deadlock_prone_system, transport="carrier-pigeon")

    def test_unvetted_mode(self, deadlock_prone_system):
        report = run_cluster_sync(deadlock_prone_system, vet=False, seed=0)
        assert report.mode == "unvetted"
        assert report.gateway is None

    def test_report_to_dict_is_json_shaped(self, deadlock_prone_system):
        import json

        report = run_cluster_sync(deadlock_prone_system, rounds=2, seed=0)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["transport"] == "memory"
        assert payload["committed"] == report.committed
        assert payload["history_fingerprint"] == report.history_fingerprint

    def test_run_cluster_is_a_coroutine(self, deadlock_prone_system):
        report = asyncio.run(run_cluster(deadlock_prone_system, seed=0))
        assert report.committed == 2


class TestArrivalsAndLatency:
    """The traffic hooks: open-loop arrival schedules and the region
    latency matrix, both injected by --workload / the arena."""

    def latency(self):
        from repro.cluster import LatencyMatrix

        return LatencyMatrix(
            regions={1: "us", 2: "eu"},
            delay_ticks={"us": {"us": 0, "eu": 2}, "eu": {"us": 2, "eu": 0}},
            client_region="us",
        )

    def test_open_loop_arrivals_commit_serializably(self, deadlock_prone_system):
        report = run_cluster_sync(
            deadlock_prone_system, seed=0, arrivals=[0, 3], max_retries=8
        )
        assert report.serializable
        assert report.committed == report.transactions == 2

    def test_arrivals_must_match_workload_size(self, deadlock_prone_system):
        with pytest.raises(ClusterError, match="arrival"):
            run_cluster_sync(deadlock_prone_system, seed=0, arrivals=[0])

    def test_arrivals_are_deterministic(self, deadlock_prone_system):
        runs = [
            run_cluster_sync(
                deadlock_prone_system, seed=4, arrivals=[0, 5], max_retries=8
            )
            for _ in range(2)
        ]
        assert runs[0].history_fingerprint == runs[1].history_fingerprint
        assert runs[0].outcome_fingerprint == runs[1].outcome_fingerprint

    def test_latency_matrix_tags_transport_and_stays_serializable(
        self, deadlock_prone_system
    ):
        report = run_cluster_sync(
            deadlock_prone_system, seed=0, latency=self.latency(), max_retries=8
        )
        assert report.transport == "memory+latency"
        assert report.serializable
        assert report.committed == report.transactions

    def test_latency_runs_are_deterministic(self, deadlock_prone_system):
        runs = [
            run_cluster_sync(
                deadlock_prone_system, seed=2, latency=self.latency(), max_retries=8
            )
            for _ in range(2)
        ]
        assert runs[0].history_fingerprint == runs[1].history_fingerprint
        assert runs[0].outcome_fingerprint == runs[1].outcome_fingerprint

    def test_latency_matrix_defaults_to_zero_delay(self):
        from repro.cluster import LatencyMatrix

        matrix = LatencyMatrix(regions={1: "us"}, delay_ticks={}, client_region="us")
        assert matrix.delay("us", "us") == 0
        assert matrix.region_of_site(1) == "us"
        assert matrix.region_of_site(9) == "us"
