"""The introspection plane: ``status`` / ``inspect`` requests, probe
stitching, and external deadlock detection."""

import asyncio

from repro.cluster import protocol
from repro.cluster.coordinator import Coordinator
from repro.cluster.siteserver import SiteServer
from repro.cluster.transport import MemoryTransport
from repro.obs.insight import deadlock_cycles, probe_site, probe_sites

from .conftest import chain_tx


def run(coro):
    return asyncio.run(coro)


async def _rpc(connection, kind, request_id, **fields):
    await connection.send(protocol.request(kind, request_id, **fields))
    return await connection.recv()


class TestStatusRequest:
    def test_idle_site_snapshot(self):
        async def scenario():
            transport = MemoryTransport()
            server = SiteServer(1, transport=transport)
            await server.start()
            connection = await transport.connect(1)
            reply = await _rpc(connection, "status", 1)
            await transport.close()
            return reply

        reply = run(scenario())
        assert reply["status"] == "status"
        assert reply["site"] == 1
        assert reply["role"] == "site"
        assert reply["lock_table"] == []
        assert reply["pending"] == []
        assert reply["wait_for"] == []

    def test_snapshot_shows_holder_waiter_and_edge(self):
        async def scenario():
            transport = MemoryTransport()
            server = SiteServer(1, transport=transport, grant_timeout=500)
            await server.start()
            a = await transport.connect(1)
            b = await transport.connect(1)
            probe = await transport.connect(1)
            await _rpc(a, "lock", 1, txn="T1", entity="x", age=0)
            await b.send(protocol.request("lock", 1, txn="T2", entity="x", age=1))
            await transport.sleep(5)
            reply = await _rpc(probe, "status", 1)
            await transport.close()
            return reply

        reply = run(scenario())
        (row,) = reply["lock_table"]
        assert row == {"entity": "x", "holder": "T1", "waiters": ["T2"]}
        (pending,) = reply["pending"]
        assert pending["txn"] == "T2"
        assert pending["entity"] == "x"
        assert pending["timer"] is True
        assert reply["wait_for"] == [["T2", "T1"]]
        assert reply["contention"][0]["entity"] == "x"

    def test_inspect_entity_and_txn(self):
        async def scenario():
            transport = MemoryTransport()
            server = SiteServer(1, transport=transport)
            await server.start()
            a = await transport.connect(1)
            probe = await transport.connect(1)
            await _rpc(a, "lock", 1, txn="T1", entity="x", age=0)
            await _rpc(a, "update", 2, txn="T1", entity="x")
            entity_view = await _rpc(probe, "inspect", 1, entity="x")
            txn_view = await _rpc(probe, "inspect", 2, txn="T1")
            await transport.close()
            return entity_view, txn_view

        entity_view, txn_view = run(scenario())
        assert entity_view["entity"]["holder"] == "T1"
        assert entity_view["entity"]["updates"] == ["T1"]
        assert txn_view["txn"]["holds"] == ["x"]
        assert txn_view["txn"]["waiting"] == []

    def test_status_stays_off_the_event_timeline(self):
        # QUIET_KINDS: monitoring probes are plumbing, not workload —
        # they must not pollute the replayable event timeline.
        from repro.obs.events import EventLog

        async def scenario():
            transport = MemoryTransport()
            event_log = EventLog()
            server = SiteServer(1, transport=transport, event_log=event_log)
            await server.start()
            probe = await transport.connect(1)
            await _rpc(probe, "status", 1)
            await _rpc(probe, "inspect", 2, entity="x")
            await transport.close()
            return event_log

        event_log = run(scenario())
        assert event_log.of_kind("msg") == []


class TestProbeStitching:
    def test_probe_unreachable_site_reports_error(self):
        async def scenario():
            transport = MemoryTransport()
            try:
                return await probe_site(transport, 7, timeout=0.2)
            finally:
                await transport.close()

        status = run(scenario())
        assert status["site"] == 7
        assert status["error"]

    def test_cross_site_deadlock_detected_externally(self, two_site_db):
        # peers=() switches the edge-chasing probes off: the sites
        # cannot resolve the deadlock themselves, and the *external*
        # status plane must see it.
        async def scenario():
            transport = MemoryTransport()
            servers = [
                SiteServer(site, transport=transport, peers=())
                for site in (1, 2)
            ]
            for server in servers:
                await server.start()
            a = await transport.connect(1)
            a2 = await transport.connect(2)
            b = await transport.connect(2)
            b2 = await transport.connect(1)
            # T1 holds x@1, T2 holds y@2, then each requests the other.
            await _rpc(a, "lock", 1, txn="T1", entity="x", age=0)
            await _rpc(b, "lock", 1, txn="T2", entity="y", age=1)
            await a2.send(protocol.request("lock", 2, txn="T1", entity="y", age=0))
            await b2.send(protocol.request("lock", 2, txn="T2", entity="x", age=1))
            await transport.sleep(10)
            status = await probe_sites(transport, [1, 2])
            await transport.close()
            return status

        status = run(scenario())
        assert not status.errors
        cycles = status.cycles
        assert cycles, "stitched wait-for graph must expose the cycle"
        assert set(cycles[0]) >= {"T1", "T2"}
        assert deadlock_cycles(status.graph) == cycles
        text = status.render()
        assert "DEADLOCK" in text
        assert "T1" in text and "T2" in text

    def test_no_cycle_when_single_blocker(self, two_site_db):
        async def scenario():
            transport = MemoryTransport()
            server = SiteServer(1, transport=transport, peers=())
            await server.start()
            a = await transport.connect(1)
            b = await transport.connect(1)
            await _rpc(a, "lock", 1, txn="T1", entity="x", age=0)
            await b.send(protocol.request("lock", 1, txn="T2", entity="x", age=1))
            await transport.sleep(5)
            status = await probe_sites(transport, [1])
            await transport.close()
            return status

        status = run(scenario())
        assert status.cycles == []
        assert "deadlock-free" in status.render()


class TestReplicaStatus:
    def test_leader_and_follower_both_answer(self):
        from repro.replica import LogicalClock, ReplicaGroup, ReplicaServer

        async def scenario():
            transport = MemoryTransport()
            clock = LogicalClock()
            group = ReplicaGroup(1, 2, lease_ticks=64)
            servers = [
                ReplicaServer(
                    group,
                    index,
                    transport=transport,
                    clock=clock,
                    peers=group.addresses,
                )
                for index in range(2)
            ]
            for server in servers:
                await server.start()
            leader = await transport.connect(group.addresses[0])
            await _rpc(leader, "lock", 1, txn="T1", entity="x", age=0)
            statuses = []
            for address in group.addresses:
                connection = await transport.connect(address)
                statuses.append(await _rpc(connection, "status", 1))
            for server in servers:
                await server.stop()
            await transport.close()
            return statuses

        leader_status, follower_status = run(scenario())
        assert leader_status["role"] == "leader"
        assert leader_status["epoch"] == 1
        assert leader_status["log_seq"] >= 1
        assert leader_status["lag"] >= 0
        # status is deliberately not leader-only: the follower answers
        # with its own view instead of a not-leader redirect.
        assert follower_status["role"] == "follower"
        assert follower_status["leader"] == leader_status["address"]
        assert follower_status["status"] == "status"


class TestCoordinatorSnapshot:
    def test_snapshot_names_pending_steps(self, two_site_db):
        tx = chain_tx("T1", two_site_db, ["x", "y"])
        coordinator = Coordinator(tx, transport=MemoryTransport(), age=3)
        snap = coordinator.snapshot()
        assert snap["transaction"] == "T1"
        assert snap["age"] == 3
        assert snap["phase"] == "idle"
        assert snap["acked_steps"] == []
        assert "lock x@1" in snap["pending_steps"]
        assert snap["sites"] == [1, 2]

    def test_snapshot_after_run_is_done(self, two_site_db):
        async def scenario():
            transport = MemoryTransport()
            server1 = SiteServer(1, transport=transport, peers=(1, 2))
            server2 = SiteServer(2, transport=transport, peers=(1, 2))
            await server1.start()
            await server2.start()
            tx = chain_tx("T1", two_site_db, ["x", "y"])
            coordinator = Coordinator(tx, transport=transport)
            outcome = await coordinator.run()
            await transport.close()
            return coordinator, outcome

        coordinator, outcome = run(scenario())
        assert outcome.committed
        snap = coordinator.snapshot()
        assert snap["phase"] == "done"
        assert snap["pending_steps"] == []
        assert len(snap["acked_steps"]) == len(coordinator.transaction.steps)
