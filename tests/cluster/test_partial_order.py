"""Property: the coordinator respects the transaction partial order.

The paper's model demands each transaction execute as its poset — a
step may run only after all its predecessors.  The coordinator promises
something strictly observable: it never *sends* a step to a site before
every poset predecessor has been *acknowledged*.  Hypothesis drives
random transaction systems (:mod:`repro.workloads.random_transactions`)
through a live memory-transport cluster and checks the send/ack stream
of every attempt against the poset.
"""

import asyncio
import random

from hypothesis import given, settings, strategies as st

from repro.cluster.coordinator import Coordinator
from repro.cluster.siteserver import SiteServer
from repro.cluster.transport import MemoryTransport
from repro.workloads.random_transactions import random_system


class OrderRecorder:
    """Observes one coordinator's send/ack stream, per attempt."""

    def __init__(self):
        self.acked: dict[str, set] = {}
        self.violations: list[str] = []

    def on_send(self, txn, step, poset, steps):
        acked = self.acked.setdefault(txn, set())
        for other in steps:
            if poset.precedes(other, step) and other not in acked:
                self.violations.append(
                    f"{txn}: sent {step} before predecessor {other} acked"
                )

    def on_ack(self, txn, step):
        self.acked.setdefault(txn, set()).add(step)


async def _drive(system):
    transport = MemoryTransport()
    sites = tuple(range(1, system.database.sites + 1))
    servers = [
        SiteServer(site, transport=transport, peers=sites)
        for site in sites
    ]
    for server in servers:
        await server.start()
    recorder = OrderRecorder()

    async def run_one(index, tx):
        poset = tx.poset()
        steps = list(tx.steps)
        coordinator = Coordinator(
            tx,
            transport=transport,
            age=index,
            max_retries=6,
            seed=index,
            on_send=lambda txn, step: recorder.on_send(
                txn, step, poset, steps
            ),
            on_ack=recorder.on_ack,
        )

        # A retry restarts the attempt: reset this txn's acked set so
        # the invariant is checked per attempt, not across attempts.
        original_run = coordinator._attempt

        async def attempt_with_reset():
            recorder.acked[tx.name] = set()
            return await original_run()

        coordinator._attempt = attempt_with_reset
        return await coordinator.run()

    outcomes = await asyncio.gather(
        *(run_one(i, tx) for i, tx in enumerate(system.transactions))
    )
    for server in servers:
        await server.stop()
    await transport.close()
    return recorder, outcomes


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    transactions=st.integers(min_value=1, max_value=3),
    sites=st.integers(min_value=1, max_value=3),
    cross_arcs=st.integers(min_value=0, max_value=2),
)
def test_steps_never_sent_before_predecessors_acked(
    seed, transactions, sites, cross_arcs
):
    system = random_system(
        random.Random(seed),
        transactions=transactions,
        sites=sites,
        entities=4,
        entities_per_transaction=3,
        cross_arcs=cross_arcs,
        two_phase=True,
    )
    recorder, outcomes = asyncio.run(_drive(system))
    assert recorder.violations == []
    # Two-phase systems are safe and deadlocks are resolved, so with a
    # generous retry budget everything should commit.
    assert all(outcome.committed for outcome in outcomes)
