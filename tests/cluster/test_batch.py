"""Batched step shipping and the binary wire codec.

Three layers of the batching/binary feature, pinned independently:

* the **batch request** against a live site server — inline outcomes,
  parked continuations behind a queued lock, supersession of a retried
  batched lock (which must keep the original grant timer, answered at
  the retry's id), and deadlock probes launched from edges a batch
  created;
* the **codecs** — a hypothesis property that every protocol-shaped
  message round-trips identically through JSON and binary framing, and
  the mixed-version ``hello`` negotiation (a peer that predates it
  answers ``error`` and the client stays on JSON);
* the **runtime** — batched binary runs stay deterministic on the
  memory transport and commit partial-order workloads serializably.
"""

import asyncio
import random

from hypothesis import given, settings, strategies as st

from repro.cluster import protocol, run_cluster_sync
from repro.cluster.protocol import BINARY_CODEC, JSON_CODEC
from repro.cluster.siteserver import SiteServer
from repro.cluster.transport import MemoryTransport
from repro.workloads.random_transactions import random_system


def run(coro):
    return asyncio.run(coro)


async def _boot(**kwargs):
    transport = MemoryTransport()
    server = SiteServer(1, transport=transport, **kwargs)
    await server.start()
    return transport, server


def batch_steps(*specs):
    """Step dicts for a batch request: ``(op, id, entity)`` triples."""
    return [{"op": op, "id": step_id, "entity": entity} for op, step_id, entity in specs]


class TestBatchRequest:
    def test_uncontended_batch_answers_every_step_inline(self):
        async def scenario():
            transport, server = await _boot()
            a = await transport.connect(1)
            await a.send(
                protocol.request(
                    "batch",
                    1,
                    txn="T1",
                    age=0,
                    steps=batch_steps(
                        ("lock", 10, "x"), ("update", 11, "x"), ("unlock", 12, "x")
                    ),
                )
            )
            reply = await a.recv()
            await transport.close()
            return reply

        reply = run(scenario())
        assert reply["status"] == "batch"
        assert [(r["id"], r["status"]) for r in reply["results"]] == [
            (10, "granted"),
            (11, "applied"),
            (12, "released"),
        ]

    def test_queued_lock_parks_rest_and_resumes_on_grant(self):
        async def scenario():
            transport, server = await _boot()
            a = await transport.connect(1)
            b = await transport.connect(1)
            await a.send(
                protocol.request("batch", 1, txn="T1", age=0, steps=batch_steps(("lock", 10, "x")))
            )
            assert (await a.recv())["results"][0]["status"] == "granted"
            # T2's lock queues; the update and unlock behind it are
            # parked and must run (individually answered) after T1
            # releases — a grant must never strand its continuation.
            await b.send(
                protocol.request(
                    "batch",
                    2,
                    txn="T2",
                    age=1,
                    steps=batch_steps(
                        ("lock", 20, "x"), ("update", 21, "x"), ("unlock", 22, "x")
                    ),
                )
            )
            queued = await b.recv()
            await a.send(
                protocol.request("batch", 3, txn="T1", age=0, steps=batch_steps(("unlock", 13, "x")))
            )
            await a.recv()
            continuation = [await b.recv() for _ in range(3)]
            await transport.close()
            return queued, continuation

        queued, continuation = run(scenario())
        assert queued["status"] == "batch"
        assert queued["results"] == [{"id": 20, "status": "queued", "entity": "x"}]
        assert [(m["id"], m["status"]) for m in continuation] == [
            (20, "granted"),
            (21, "applied"),
            (22, "released"),
        ]

    def test_superseded_batched_lock_keeps_the_grant_timer(self):
        # Regression: a batch whose outcomes mix granted, queued, and
        # superseded must never lose the queued lock's grant timer.
        # The retry takes over the original pending entry (timer and
        # queue slot included); the timer's eventual answer must carry
        # the *retry's* step id, and the steps parked behind the
        # original lock are cancelled, not silently dropped.
        async def scenario():
            transport, server = await _boot(deadlock_policy=None, grant_timeout=5)
            a = await transport.connect(1)
            b = await transport.connect(1)
            await a.send(
                protocol.request("batch", 1, txn="T1", age=0, steps=batch_steps(("lock", 10, "x")))
            )
            await a.recv()
            # T2: lock y grants inline, lock x queues, update x parks.
            await b.send(
                protocol.request(
                    "batch",
                    2,
                    txn="T2",
                    age=1,
                    steps=batch_steps(
                        ("lock", 20, "y"), ("lock", 21, "x"), ("update", 22, "x")
                    ),
                )
            )
            first = await b.recv()
            # T2 retries the queued tail with fresh ids before the
            # timer fires: the original id is answered "superseded",
            # its parked update "cancelled".
            await b.send(
                protocol.request(
                    "batch",
                    3,
                    txn="T2",
                    age=1,
                    steps=batch_steps(("lock", 31, "x"), ("update", 32, "x")),
                )
            )
            superseded = await b.recv()
            cancelled = await b.recv()
            retry = await b.recv()
            # Nobody unlocks x, so the surviving timer must answer the
            # retry's id with "timeout".
            timed_out = await b.recv()
            await transport.close()
            return first, superseded, cancelled, retry, timed_out

        first, superseded, cancelled, retry, timed_out = run(scenario())
        assert [(r["id"], r["status"]) for r in first["results"]] == [
            (20, "granted"),
            (21, "queued"),
        ]
        assert (superseded["id"], superseded["status"]) == (21, "superseded")
        assert (cancelled["id"], cancelled["status"]) == (22, "cancelled")
        assert retry["results"] == [{"id": 31, "status": "queued", "entity": "x"}]
        assert (timed_out["id"], timed_out["status"]) == (31, "timeout")

    def test_deadlock_probes_traverse_batch_created_edges(self):
        async def scenario():
            transport, server = await _boot()
            a = await transport.connect(1)
            b = await transport.connect(1)
            await a.send(
                protocol.request("batch", 1, txn="T1", age=0, steps=batch_steps(("lock", 10, "x")))
            )
            await a.recv()
            await b.send(
                protocol.request("batch", 2, txn="T2", age=1, steps=batch_steps(("lock", 20, "y")))
            )
            await b.recv()
            # Both wait-for edges are created by batched locks; the
            # probes they launch must still find the cycle and abort
            # the youngest.
            await a.send(
                protocol.request("batch", 3, txn="T1", age=0, steps=batch_steps(("lock", 11, "y")))
            )
            assert (await a.recv())["results"][0]["status"] == "queued"
            await b.send(
                protocol.request("batch", 4, txn="T2", age=1, steps=batch_steps(("lock", 21, "x")))
            )
            # The probe resolves the cycle while the batch is still
            # being processed, so the individual "deadlock" frame may
            # precede the batch reply carrying the "queued" result.
            replies = [await b.recv(), await b.recv()]
            await transport.close()
            return replies

        replies = run(scenario())
        batched = next(m for m in replies if m["status"] == "batch")
        verdict = next(m for m in replies if m["status"] != "batch")
        assert batched["results"][0]["status"] == "queued"
        assert verdict["status"] == "deadlock"
        assert verdict["id"] == 21
        assert verdict["victim"] == "T2"
        assert set(verdict["cycle"]) == {"T1", "T2"}


# ----------------------------------------------------------------------
# Codec cross-compatibility
# ----------------------------------------------------------------------
_scalars = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**70), max_value=2**70)
    | st.floats(allow_nan=False)
    | st.text(max_size=12)
    | st.sampled_from(protocol._COMMON_STRINGS)
)
_values = st.recursive(
    _scalars,
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)
_messages = st.fixed_dictionaries(
    {"type": st.sampled_from(protocol.REQUEST_KINDS + protocol.PEER_KINDS)},
    optional={"id": st.integers(min_value=0, max_value=2**40), "payload": _values},
)


class TestCodecCompatibility:
    @settings(max_examples=200, deadline=None)
    @given(message=_messages)
    def test_both_codecs_round_trip_identically(self, message):
        for codec in (JSON_CODEC, BINARY_CODEC):
            payload = codec.encode_payload(message)
            decoded = codec.decode_payload(payload)
            assert decoded == message, codec.name
            # Canonical: equal messages encode to equal bytes.
            assert codec.encode_payload(decoded) == payload, codec.name
            # Full framing, with per-frame codec auto-detection.
            assert protocol.decode(protocol.encode(message, codec)) == message
        assert JSON_CODEC.decode_payload(
            JSON_CODEC.encode_payload(message)
        ) == BINARY_CODEC.decode_payload(BINARY_CODEC.encode_payload(message))

    def test_binary_frames_are_smaller_on_protocol_vocabulary(self):
        message = protocol.request("lock", 7, txn="T1", entity="x", age=0)
        assert len(BINARY_CODEC.encode_payload(message)) < len(
            JSON_CODEC.encode_payload(message)
        )


class _ScriptedConnection:
    """A fake peer: records sends, plays back scripted replies."""

    def __init__(self, replies):
        self.codec = JSON_CODEC
        self.sent = []
        self.replies = list(replies)

    async def send(self, message):
        self.sent.append(message)

    async def recv(self):
        return self.replies.pop(0)


class TestNegotiation:
    def test_json_preference_needs_no_exchange(self):
        connection = _ScriptedConnection([])
        agreed = run(protocol.negotiate(connection, JSON_CODEC))
        assert agreed is JSON_CODEC
        assert connection.sent == []

    def test_old_peer_error_reply_stays_on_json(self):
        # Mixed versions: a site that predates "hello" answers it with
        # an "error" reply; the binary-capable client must keep sending
        # JSON rather than emit frames the old peer cannot read.
        connection = _ScriptedConnection(
            [protocol.reply(0, "error", reason="unknown request kind 'hello'")]
        )
        agreed = run(protocol.negotiate(connection, BINARY_CODEC))
        assert agreed is JSON_CODEC
        assert connection.codec is JSON_CODEC
        assert connection.sent[0]["type"] == "hello"
        assert connection.sent[0]["codecs"] == ["binary", "json"]

    def test_live_site_agrees_to_binary(self):
        async def scenario():
            transport, server = await _boot()
            connection = await transport.connect(1)
            agreed = await protocol.negotiate(connection, BINARY_CODEC)
            pong = None
            if agreed is BINARY_CODEC:
                await connection.send(protocol.request("ping", 1))
                pong = await connection.recv()
            await transport.close()
            return agreed, pong

        agreed, pong = run(scenario())
        assert agreed is BINARY_CODEC
        assert pong["status"] == "pong"


# ----------------------------------------------------------------------
# Runtime contracts with batching on
# ----------------------------------------------------------------------
class TestBatchedRuntime:
    def test_batched_binary_run_is_deterministic(self, deadlock_prone_system):
        first, second = (
            run_cluster_sync(
                deadlock_prone_system,
                rounds=3,
                seed=11,
                max_retries=8,
                codec="binary",
                batch=True,
            )
            for _ in range(2)
        )
        assert first.committed == first.transactions
        assert first.serializable and first.audit_complete
        assert first.history_fingerprint == second.history_fingerprint
        assert first.outcome_fingerprint == second.outcome_fingerprint

    def test_codec_never_changes_the_outcome(self, deadlock_prone_system):
        # Batching reshapes message timing and so may reschedule, but
        # the codec is pure framing: json and binary runs of the same
        # batch mode must agree on every outcome.
        json_run, binary_run = (
            run_cluster_sync(
                deadlock_prone_system,
                rounds=3,
                seed=11,
                max_retries=8,
                codec=codec,
                batch=True,
            )
            for codec in ("json", "binary")
        )
        assert binary_run.outcome_fingerprint == json_run.outcome_fingerprint
        assert binary_run.history_fingerprint == json_run.history_fingerprint

    def test_partial_order_systems_commit_batched(self):
        # Batched shipping must respect poset predecessors across
        # frames (a step rides in a batch only behind acked or
        # co-batched predecessors), so partial-order workloads still
        # commit serializably.
        for seed in (1, 2, 3):
            system = random_system(
                random.Random(seed),
                transactions=3,
                sites=2,
                entities=4,
                entities_per_transaction=3,
                cross_arcs=2,
                two_phase=True,
            )
            report = run_cluster_sync(
                system,
                rounds=2,
                seed=seed,
                max_retries=8,
                codec="binary",
                batch=True,
            )
            assert report.committed == report.transactions, seed
            assert report.serializable and report.audit_complete, seed
