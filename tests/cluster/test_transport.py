"""Memory and TCP transports carry identical frames."""

import asyncio

import pytest

from repro.cluster.transport import (
    MemoryTransport,
    TcpTransport,
    TransportError,
)


async def _echo_handler(connection):
    while True:
        message = await connection.recv()
        if message is None:
            break
        message["echoed"] = True
        await connection.send(message)


class TestMemoryTransport:
    def test_roundtrip(self):
        async def scenario():
            transport = MemoryTransport()
            await transport.listen(1, _echo_handler)
            connection = await transport.connect(1)
            await connection.send({"type": "ping", "id": 1})
            reply = await connection.recv()
            await transport.close()
            return reply

        reply = asyncio.run(scenario())
        assert reply == {"type": "ping", "id": 1, "echoed": True}

    def test_connect_unknown_site_fails(self):
        async def scenario():
            transport = MemoryTransport()
            with pytest.raises(TransportError):
                await transport.connect(9)

        asyncio.run(scenario())

    def test_duplicate_listen_fails(self):
        async def scenario():
            transport = MemoryTransport()
            await transport.listen(1, _echo_handler)
            with pytest.raises(TransportError):
                await transport.listen(1, _echo_handler)

        asyncio.run(scenario())

    def test_close_makes_recv_return_none(self):
        async def scenario():
            transport = MemoryTransport()
            received = []

            async def handler(connection):
                received.append(await connection.recv())

            await transport.listen(1, handler)
            connection = await transport.connect(1)
            await connection.close()
            await transport.sleep(3)
            await transport.close()
            return received

        assert asyncio.run(scenario()) == [None]

    def test_is_deterministic_flagged(self):
        assert MemoryTransport.deterministic is True
        assert TcpTransport.deterministic is False


class TestTcpTransport:
    def test_roundtrip_over_real_socket(self):
        async def scenario():
            transport = TcpTransport()
            await transport.listen(1, _echo_handler)
            host, port = transport.addresses[1]
            assert host == "127.0.0.1" and port > 0
            connection = await transport.connect(1)
            await connection.send({"type": "ping", "id": 42})
            reply = await connection.recv()
            await connection.close()
            await transport.close()
            return reply

        reply = asyncio.run(scenario())
        assert reply == {"type": "ping", "id": 42, "echoed": True}

    def test_connect_without_address_fails(self):
        async def scenario():
            transport = TcpTransport()
            with pytest.raises(TransportError):
                await transport.connect(5)

        asyncio.run(scenario())
