"""Distributed tracing and wire metrics through the cluster runtime."""

import pytest

from repro.cluster import run_cluster_sync
from repro.obs import trace
from repro.obs.distributed import WIRE, merge_traces, trace_trees
from repro.obs.events import EventLog
from repro.obs.metrics import REGISTRY
from repro.obs.report import summarize_files


@pytest.fixture(autouse=True)
def clean_wire_globals():
    """These tests flip process-global switches; leave them off."""
    yield
    trace.stop_tracing()
    WIRE.disable_metrics()
    WIRE.detach()
    REGISTRY.reset(prefix="repro_cluster_")


def _traced_run(system, path, **kwargs):
    trace.start_tracing(str(path))
    try:
        return run_cluster_sync(system, max_retries=16, **kwargs)
    finally:
        trace.stop_tracing()


class TestDistributedTracing:
    def test_one_connected_tree_per_transaction(
        self, deadlock_prone_system, tmp_path
    ):
        path = tmp_path / "trace.jsonl"
        report = _traced_run(deadlock_prone_system, path, rounds=2, seed=3)
        assert report.committed == report.transactions == 4
        forest = trace_trees(merge_traces([str(path)]))
        assert len(forest) == 4
        assert all(tree.connected for tree in forest)
        names = {tree.root["span"] for tree in forest}
        assert names == {"txn.run"}

    def test_site_spans_hang_off_coordinator_steps(
        self, deadlock_prone_system, tmp_path
    ):
        path = tmp_path / "trace.jsonl"
        _traced_run(deadlock_prone_system, path, rounds=1, seed=3)
        spans = {r["span"] for r in merge_traces([str(path)])}
        assert {"txn.run", "txn.step", "txn.commit", "site.lock"} <= spans

    def test_trace_report_renders_distributed_section(
        self, deadlock_prone_system, tmp_path
    ):
        path = tmp_path / "trace.jsonl"
        _traced_run(deadlock_prone_system, path, rounds=1, seed=3)
        text = summarize_files([str(path)])
        assert "distributed traces:" in text
        assert "per-stage latency" in text
        assert "txn.run" in text

    def test_untraced_run_keeps_messages_clean(self, deadlock_prone_system):
        report = run_cluster_sync(
            deadlock_prone_system, rounds=1, seed=3, max_retries=16
        )
        assert report.committed == report.transactions


class TestWireMetrics:
    def test_all_stages_recorded(self, deadlock_prone_system):
        run_cluster_sync(
            deadlock_prone_system,
            rounds=1,
            seed=3,
            max_retries=16,
            wire_metrics=True,
        )
        series = REGISTRY.get("repro_cluster_latency_ns").to_dict()["series"]
        stages = {
            stage
            for stage in ("encode", "transport", "server_queue", "lock_wait", "hold")
            if any(f'stage="{stage}"' in key for key in series)
        }
        assert len(stages) == 5
        assert REGISTRY.get("repro_cluster_messages_total") is not None
        assert REGISTRY.get("repro_cluster_bytes_total") is not None

    def test_back_to_back_runs_do_not_accumulate(self, deadlock_prone_system):
        def total_messages():
            metric = REGISTRY.get("repro_cluster_messages_total")
            return sum(metric.to_dict()["series"].values())

        counts = []
        for _ in range(2):
            run_cluster_sync(
                deadlock_prone_system,
                rounds=1,
                seed=3,
                max_retries=16,
                wire_metrics=True,
            )
            counts.append(total_messages())
        assert counts[0] == counts[1]

    def test_disabled_run_creates_no_wire_metrics(self, deadlock_prone_system):
        run_cluster_sync(
            deadlock_prone_system, rounds=1, seed=3, max_retries=16
        )
        assert REGISTRY.get("repro_cluster_latency_ns") is None
        assert REGISTRY.get("repro_cluster_bytes_total") is None

    def test_event_log_gains_send_recv(self, deadlock_prone_system):
        event_log = EventLog()
        run_cluster_sync(
            deadlock_prone_system,
            rounds=1,
            seed=3,
            max_retries=16,
            event_log=event_log,
        )
        kinds = {event.kind for event in event_log}
        assert {"send", "recv"} <= kinds
        sends = [e for e in event_log if e.kind == "send"]
        assert all(e.detail and "B" in e.detail for e in sends)
