"""The length-prefixed JSON wire protocol."""

import asyncio

import pytest

from repro.cluster import protocol
from repro.cluster.protocol import ProtocolError


class TestFraming:
    def test_roundtrip(self):
        message = {"type": "lock", "id": 7, "txn": "T1", "entity": "x"}
        assert protocol.decode(protocol.encode(message)) == message

    def test_prefix_is_big_endian_length(self):
        frame = protocol.encode({"type": "ping", "id": 1})
        assert int.from_bytes(frame[:4], "big") == len(frame) - 4

    def test_encoding_is_canonical(self):
        a = protocol.encode({"type": "ping", "id": 1, "z": 0, "a": 1})
        b = protocol.encode({"a": 1, "z": 0, "id": 1, "type": "ping"})
        assert a == b

    def test_truncated_frame_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.decode(b"\x00\x00")

    def test_length_mismatch_rejected(self):
        frame = protocol.encode({"type": "ping", "id": 1})
        with pytest.raises(ProtocolError):
            protocol.decode(frame + b"extra")

    def test_oversized_length_rejected(self):
        huge = (protocol.MAX_FRAME + 1).to_bytes(4, "big") + b"{}"
        with pytest.raises(ProtocolError):
            protocol.decode(huge)

    def test_non_json_payload_rejected(self):
        frame = len(b"not json").to_bytes(4, "big") + b"not json"
        with pytest.raises(ProtocolError):
            protocol.decode(frame)

    def test_untyped_message_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.decode_payload(b'{"id": 1}')


class TestMessages:
    def test_request_builder(self):
        message = protocol.request("lock", 3, txn="T1", entity="x")
        assert message == {"type": "lock", "id": 3, "txn": "T1", "entity": "x"}

    def test_unknown_request_kind_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.request("gossip", 1)

    def test_reply_builder(self):
        message = protocol.reply(3, "granted", entity="x")
        assert message["type"] == "reply"
        assert message["id"] == 3
        assert message["status"] == "granted"

    def test_kind_tables_are_disjoint(self):
        assert not set(protocol.REQUEST_KINDS) & set(protocol.PEER_KINDS)


class TestTraceContext:
    """The optional ``trace``/``wire`` fields ride the frame untouched."""

    def test_trace_field_survives_the_roundtrip(self):
        message = {
            "type": "lock",
            "id": 7,
            "txn": "T1",
            "entity": "x",
            "trace": {"id": "T1#42.1", "span": 3, "pid": 42},
            "wire": {"send_ns": 123456789},
        }
        assert protocol.decode(protocol.encode(message)) == message

    def test_messages_without_trace_still_decode(self):
        message = {"type": "lock", "id": 7, "txn": "T1", "entity": "x"}
        decoded = protocol.decode(protocol.encode(message))
        assert decoded == message
        assert "trace" not in decoded


class TestReadFrame:
    def _read(self, data, reads=1):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            return [await protocol.read_frame(reader) for _ in range(reads)]

        return asyncio.run(scenario())

    def test_counts_frame_bytes(self):
        frame = protocol.encode({"type": "ping", "id": 1})
        ((message, nbytes),) = self._read(frame)
        assert message == {"type": "ping", "id": 1}
        assert nbytes == len(frame)

    def test_eof_yields_none_and_zero(self):
        ((message, nbytes),) = self._read(b"")
        assert message is None
        assert nbytes == 0

    def test_read_message_still_returns_bare_messages(self):
        frame = protocol.encode({"type": "ping", "id": 2})

        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(frame)
            reader.feed_eof()
            return await protocol.read_message(reader)

        assert asyncio.run(scenario()) == {"type": "ping", "id": 2}
