"""Random restricted CNF generation."""

import random

import pytest

from repro.errors import ReductionError
from repro.workloads import random_restricted_cnf


class TestRandomRestrictedCnf:
    @pytest.mark.parametrize("seed", range(20))
    def test_always_restricted(self, seed):
        rng = random.Random(seed)
        variables = rng.randint(2, 8)
        formula = random_restricted_cnf(
            rng, variables=variables, clauses=rng.randint(1, variables)
        )
        assert formula.is_restricted_form()
        assert all(2 <= len(clause) <= 3 for clause in formula.clauses)

    def test_requested_shape(self, rng):
        formula = random_restricted_cnf(rng, variables=6, clauses=4)
        assert len(formula) == 4
        assert len(formula.variables()) <= 6

    def test_budget_exhaustion_raises(self, rng):
        with pytest.raises(ReductionError):
            random_restricted_cnf(rng, variables=2, clauses=10)

    def test_bad_clause_size_rejected(self, rng):
        with pytest.raises(ReductionError):
            random_restricted_cnf(
                rng, variables=4, clauses=2, clause_size=(1, 3)
            )

    def test_no_duplicate_variable_within_clause(self, rng):
        for _ in range(20):
            formula = random_restricted_cnf(rng, variables=5, clauses=3)
            for clause in formula.clauses:
                names = [lit.variable for lit in clause]
                assert len(set(names)) == len(names)

    def test_determinism(self):
        a = random_restricted_cnf(random.Random(9), variables=5, clauses=3)
        b = random_restricted_cnf(random.Random(9), variables=5, clauses=3)
        assert str(a) == str(b)
