"""The seeded traffic-model library: specs, key/arrival models, and the
policy-shaped generators.

The invariants under test are the ones the arena leans on: generation
is a pure function of (spec, policy, seed); Zipfian sampling actually
skews toward the head key; every generated transaction satisfies the
paper's §2 well-formedness (one L-update-U triple per entity, lock
before every update before unlock); and tree-policy traffic really
follows the tree protocol it claims.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TrafficSpecError
from repro.policies import EntityTree, follows_tree_protocol, is_two_phase
from repro.workloads import (
    POLICIES,
    ArrivalModel,
    KeyModel,
    LatencyModel,
    MixModel,
    TrafficSpec,
    generate_workload,
    zipf_weights,
)
from repro.workloads.traffic import _heap_parent_of

FULL_LATENCY = {
    "regions": {"1": "us", "2": "us", "3": "eu"},
    "client_region": "us",
    "delay_ticks": {
        "us": {"us": 0, "eu": 3},
        "eu": {"us": 3, "eu": 0},
    },
}

BASE_SPEC = {
    "name": "unit",
    "entities": 8,
    "sites": 3,
    "transactions": 6,
    "keys": {"distribution": "zipfian", "skew": 1.2},
    "mix": {"entities_per_txn": 2, "long_entities_per_txn": 4, "long_fraction": 0.25},
    "arrival": {"process": "closed", "concurrency": 4},
}


def spec_with(**overrides):
    payload = dict(BASE_SPEC)
    payload.update(overrides)
    return TrafficSpec.from_dict(payload)


def system_signature(workload):
    """A comparable snapshot of a generated system's exact shape."""
    return [
        (t.name, [str(s) for s in t.a_linear_extension()])
        for t in workload.system.transactions
    ]


def lock_counts(workload):
    counts: dict[str, int] = {}
    for t in workload.system.transactions:
        for entity in t.locked_entities():
            counts[entity] = counts.get(entity, 0) + 1
    return counts


class TestTrafficSpec:
    def test_round_trips_through_dict(self):
        spec = spec_with(latency=FULL_LATENCY)
        assert TrafficSpec.from_dict(spec.to_dict()) == spec

    def test_load_reads_json_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(BASE_SPEC))
        assert TrafficSpec.load(str(path)) == spec_with()

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(TrafficSpecError, match="not valid JSON"):
            TrafficSpec.load(str(path))

    def test_scaled_replaces_transaction_count(self):
        spec = spec_with().scaled(transactions=50)
        assert spec.transactions == 50
        assert spec.entities == BASE_SPEC["entities"]

    def test_rejects_unknown_keys(self):
        with pytest.raises(TrafficSpecError, match="unknown traffic spec keys"):
            spec_with(bogus=1)

    def test_rejects_unknown_distribution(self):
        with pytest.raises(TrafficSpecError, match="distribution"):
            spec_with(keys={"distribution": "pareto"})

    def test_rejects_open_arrival_without_rate(self):
        with pytest.raises(TrafficSpecError, match="rate_per_1000_ticks"):
            spec_with(arrival={"process": "open"})

    def test_rejects_nonpositive_skew(self):
        with pytest.raises(TrafficSpecError, match="skew"):
            spec_with(keys={"distribution": "zipfian", "skew": 0})

    def test_latency_requires_every_site_region(self):
        with pytest.raises(TrafficSpecError, match="missing sites"):
            spec_with(
                latency={
                    "regions": {"1": "us"},
                    "client_region": "us",
                    "delay_ticks": {"us": {"us": 0}},
                }
            )


class TestZipfWeights:
    def test_normalised_and_monotone(self):
        weights = zipf_weights(6, 1.1)
        assert sum(weights) == pytest.approx(1.0)
        assert weights == sorted(weights, reverse=True)

    def test_head_key_dominates_sampling(self):
        """With skew 1.3 over 12 keys the head key must clearly beat the
        uniform share (1/12) — the point of having a skew knob at all."""
        spec = spec_with(
            entities=12,
            transactions=40,
            keys={"distribution": "zipfian", "skew": 1.3},
        )
        counts = lock_counts(generate_workload(spec, policy="2pl", seed=5))
        assert counts.get("e0", 0) / sum(counts.values()) > 2 / 12

    def test_uniform_has_no_systematic_head(self):
        spec = spec_with(entities=12, transactions=40, keys={"distribution": "uniform"})
        counts = lock_counts(generate_workload(spec, policy="2pl", seed=5))
        assert max(counts.values()) / sum(counts.values()) < 3 / 12


class TestGenerateWorkload:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10**6), policy=st.sampled_from(POLICIES))
    def test_seed_deterministic(self, seed, policy):
        spec = spec_with(transactions=4)
        first = generate_workload(spec, policy=policy, seed=seed)
        second = generate_workload(spec, policy=policy, seed=seed)
        assert system_signature(first) == system_signature(second)
        assert first.arrivals == second.arrivals
        assert first.concurrency == second.concurrency
        assert first.long_transactions == second.long_transactions

    def test_different_seeds_differ(self):
        spec = spec_with()
        a = generate_workload(spec, policy="2pl", seed=1)
        b = generate_workload(spec, policy="2pl", seed=2)
        assert system_signature(a) != system_signature(b)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_satisfies_section_2_model(self, policy):
        """§2 regression: one L–update–U triple per entity, lock before
        every update before unlock, on every generated instance."""
        workload = generate_workload(spec_with(), policy=policy, seed=3)
        assert len(workload.system.transactions) == BASE_SPEC["transactions"]
        for t in workload.system.transactions:
            assert t.locked_entities()
            for entity in t.locked_entities():
                lock, unlock = t.lock_step(entity), t.unlock_step(entity)
                assert lock is not None and unlock is not None
                assert t.precedes(lock, unlock)
                for update in t.update_steps(entity):
                    assert t.precedes(lock, update)
                    assert t.precedes(update, unlock)

    def test_2pl_policy_is_two_phase(self):
        workload = generate_workload(spec_with(), policy="2pl", seed=4)
        assert all(is_two_phase(t) for t in workload.system.transactions)

    def test_tree_policy_follows_tree_protocol(self):
        workload = generate_workload(spec_with(), policy="tree", seed=4)
        names = sorted(
            workload.system.database.entities, key=lambda name: int(name[1:])
        )
        tree = EntityTree(_heap_parent_of(names))
        for t in workload.system.transactions:
            assert follows_tree_protocol(t, tree)

    def test_unknown_policy_rejected(self):
        with pytest.raises(TrafficSpecError, match="policy"):
            generate_workload(spec_with(), policy="chaos-monkey", seed=0)

    def test_long_mix_produces_longer_transactions(self):
        spec = spec_with(
            transactions=20,
            mix={
                "entities_per_txn": 2,
                "long_entities_per_txn": 5,
                "long_fraction": 0.5,
            },
        )
        workload = generate_workload(spec, policy="2pl", seed=9)
        sizes = {len(t.locked_entities()) for t in workload.system.transactions}
        assert 5 in sizes and 2 in sizes
        assert 0 < len(workload.long_transactions) < spec.transactions


class TestArrivals:
    def test_closed_loop_has_concurrency_no_arrivals(self):
        workload = generate_workload(spec_with(), policy="2pl", seed=0)
        assert workload.arrivals is None
        assert workload.concurrency == 4
        assert workload.cluster_kwargs()["concurrency"] == 4

    def test_open_loop_arrivals_are_sorted_ticks(self):
        spec = spec_with(arrival={"process": "open", "rate_per_1000_ticks": 200.0})
        workload = generate_workload(spec, policy="2pl", seed=0)
        assert workload.arrivals is not None
        assert len(workload.arrivals) == spec.transactions
        assert list(workload.arrivals) == sorted(workload.arrivals)
        assert all(isinstance(tick, int) and tick >= 0 for tick in workload.arrivals)

    def test_latency_spec_becomes_matrix_kwarg(self):
        workload = generate_workload(spec_with(latency=FULL_LATENCY), policy="2pl", seed=0)
        matrix = workload.cluster_kwargs()["latency"]
        assert matrix.delay("us", "eu") == 3
        assert matrix.delay("us", "us") == 0
        assert matrix.region_of_site(3) == "eu"


class TestModelValidation:
    def test_key_model_rejects_bad_skew(self):
        with pytest.raises(TrafficSpecError):
            KeyModel(distribution="zipfian", skew=-1.0)

    def test_mix_model_rejects_bad_fraction(self):
        with pytest.raises(TrafficSpecError):
            MixModel(entities_per_txn=2, long_entities_per_txn=4, long_fraction=1.5)

    def test_mix_model_rejects_short_long_transactions(self):
        with pytest.raises(TrafficSpecError):
            MixModel(entities_per_txn=4, long_entities_per_txn=2, long_fraction=0.5)

    def test_arrival_model_rejects_unknown_process(self):
        with pytest.raises(TrafficSpecError):
            ArrivalModel(process="warp")

    def test_latency_model_demands_full_matrix(self):
        with pytest.raises(TrafficSpecError, match="delay_ticks"):
            LatencyModel(
                regions={1: "us", 2: "eu"},
                client_region="us",
                delay_ticks={"us": {"us": 0, "eu": 1}},
            )

    def test_latency_model_rejects_negative_delay(self):
        with pytest.raises(TrafficSpecError, match="non-negative"):
            LatencyModel(
                regions={1: "us", 2: "eu"},
                client_region="us",
                delay_ticks={
                    "us": {"us": 0, "eu": -1},
                    "eu": {"us": 1, "eu": 0},
                },
            )
