"""Random workload generators: every output must satisfy the model."""

import random

import pytest

from repro.core import Transaction
from repro.errors import ModelError
from repro.policies import is_two_phase
from repro.workloads import (
    random_database,
    random_pair_system,
    random_system,
    random_total_order_pair,
    random_transaction,
)


class TestRandomDatabase:
    def test_covers_requested_sites(self, rng):
        db = random_database(rng, entities=10, sites=4)
        assert db.sites == 4
        assert {db.site_of(e) for e in db.entities} == {1, 2, 3, 4}

    def test_rejects_bad_parameters(self, rng):
        with pytest.raises(ModelError):
            random_database(rng, entities=0, sites=1)


class TestRandomTransaction:
    @pytest.mark.parametrize("seed", range(20))
    def test_always_valid(self, seed):
        """Validation runs in the Transaction constructor; surviving it
        means every §2 constraint holds."""
        rng = random.Random(seed)
        db = random_database(
            rng, entities=rng.randint(1, 6), sites=rng.randint(1, 4)
        )
        tx = random_transaction(
            "T", db, rng, cross_arcs=rng.randint(0, 4)
        )
        assert isinstance(tx, Transaction)
        assert len(tx) == 3 * len(tx.locked_entities())

    def test_entity_subset_respected(self, rng):
        db = random_database(rng, entities=6, sites=2)
        tx = random_transaction("T", db, rng, entities=["e0", "e3"])
        assert sorted(tx.locked_entities()) == ["e0", "e3"]

    def test_two_phase_flag(self, rng):
        db = random_database(rng, entities=5, sites=3)
        for _ in range(10):
            tx = random_transaction("T", db, rng, two_phase=True, cross_arcs=3)
            assert is_two_phase(tx)

    def test_empty_entity_list_rejected(self, rng):
        db = random_database(rng, entities=3, sites=1)
        with pytest.raises(ModelError):
            random_transaction("T", db, rng, entities=[])

    def test_determinism(self):
        db = random_database(random.Random(5), entities=4, sites=2)
        tx_a = random_transaction("T", db, random.Random(42), cross_arcs=2)
        tx_b = random_transaction("T", db, random.Random(42), cross_arcs=2)
        assert [str(s) for s in tx_a.steps] == [str(s) for s in tx_b.steps]
        assert tx_a.poset().arcs() == tx_b.poset().arcs()


class TestRandomSystems:
    def test_pair_shares_requested_entities(self, rng):
        system = random_pair_system(rng, sites=2, entities=5, shared=3)
        assert len(system.shared_locked_entities()) >= 3

    def test_pair_has_two_transactions(self, rng):
        assert len(random_pair_system(rng, sites=2, entities=3)) == 2

    def test_k_transaction_system(self, rng):
        system = random_system(
            rng, transactions=4, sites=2, entities=5,
            entities_per_transaction=2,
        )
        assert len(system) == 4

    def test_total_order_pair_is_single_site_and_total(self, rng):
        system, t1, t2 = random_total_order_pair(rng, entities=3)
        first, second = system.pair()
        assert system.database.sites == 1
        assert first.is_totally_ordered()
        assert first.is_linear_extension(t1)
        assert second.is_linear_extension(t2)
