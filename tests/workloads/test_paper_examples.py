"""Every figure reconstruction must exhibit exactly the properties the
paper states for it — these tests ARE the figure reproductions."""

import pytest

from repro.core import (
    GeometricPicture,
    d_graph,
    d_graph_of_total_orders,
    decide_safety,
    decide_safety_exact,
    decide_safety_exhaustive,
    dominators_of,
)
from repro.core.closure import ClosureContradiction, close_with_respect_to
from repro.graphs import is_strongly_connected
from repro.logic import is_satisfiable
from repro.workloads import (
    figure_1,
    figure_2_total_orders,
    figure_3,
    figure_3_extension_pairs,
    figure_5,
    figure_8_formula,
)


class TestFigure1:
    """Two transactions at two sites; the system is unsafe and a
    non-serializable schedule exists."""

    def test_layout(self):
        system = figure_1()
        db = system.database
        assert db.sites == 2
        assert sorted(db.entities_at(1)) == ["x", "y"]
        assert sorted(db.entities_at(2)) == ["w", "z"]

    def test_unsafe_with_nonserializable_schedule(self):
        system = figure_1()
        verdict = decide_safety(system)
        assert not verdict.safe
        assert verdict.witness is not None
        assert not verdict.witness.is_serializable()

    def test_exhaustive_agrees(self):
        assert not decide_safety_exhaustive(figure_1()).safe


class TestFigure2:
    """The geometric picture: three rectangles, a curve separating the
    x- and z-rectangles, and the two serial curves."""

    def test_rectangles_exist(self):
        _, t1, t2 = figure_2_total_orders()
        picture = GeometricPicture(t1, t2)
        assert sorted(picture.rectangles) == ["x", "y", "z"]

    def test_separating_curve_between_x_and_z(self):
        _, t1, t2 = figure_2_total_orders()
        picture = GeometricPicture(t1, t2)
        curve = picture.find_nonserializable_curve()
        assert curve is not None
        bits = picture.bits_of_curve(curve)
        assert bits["x"] != bits["z"]

    def test_pair_unsafe_iff_not_connected(self):
        _, t1, t2 = figure_2_total_orders()
        assert not is_strongly_connected(d_graph_of_total_orders(t1, t2))


class TestFigure3:
    """Unsafe distributed system whose extension pairs split: one safe
    (Fig. 3c), one unsafe (Fig. 3d); D(T1, T2) has dominator {x, y}."""

    def test_system_unsafe(self):
        assert not decide_safety(figure_3()).safe
        assert not decide_safety_exhaustive(figure_3()).safe

    def test_extension_pairs_split(self):
        safe_pair, unsafe_pair = figure_3_extension_pairs()
        assert is_strongly_connected(d_graph_of_total_orders(*safe_pair))
        assert not is_strongly_connected(
            d_graph_of_total_orders(*unsafe_pair)
        )

    def test_extension_pairs_are_compatible(self):
        first, second = figure_3().pair()
        safe_pair, unsafe_pair = figure_3_extension_pairs()
        for t1, t2 in (safe_pair, unsafe_pair):
            assert first.is_linear_extension(t1)
            assert second.is_linear_extension(t2)

    def test_dominator_x_y(self):
        graph = d_graph(*figure_3().pair())
        assert frozenset({"x", "y"}) in set(dominators_of(graph))


class TestFigure5:
    """Four sites; D not strongly connected; system nevertheless SAFE;
    the only dominator's closure forces the Ux1/Ux2 cycle."""

    def test_four_sites(self):
        system = figure_5()
        first, second = system.pair()
        assert len(first.sites_used() | second.sites_used()) == 4

    def test_d_not_strongly_connected(self):
        assert not is_strongly_connected(d_graph(*figure_5().pair()))

    def test_system_is_safe(self):
        verdict = decide_safety_exact(*figure_5().pair())
        assert verdict.safe

    def test_unique_dominator(self):
        graph = d_graph(*figure_5().pair())
        assert list(dominators_of(graph)) == [frozenset({"x1", "x2"})]

    def test_closure_contradiction_as_described(self):
        first, second = figure_5().pair()
        with pytest.raises(ClosureContradiction) as excinfo:
            close_with_respect_to(first, second, {"x1", "x2"})
        message = str(excinfo.value)
        assert "Ux1" in message and "Ux2" in message

    def test_strong_connectivity_not_necessary_beyond_two_sites(self):
        """The headline of §3-§4: Theorem 2's converse fails at 4 sites."""
        first, second = figure_5().pair()
        assert not is_strongly_connected(d_graph(first, second))
        assert decide_safety_exact(first, second).safe


class TestFigure8:
    def test_formula_matches_paper(self):
        formula = figure_8_formula()
        assert str(formula) == "(x1 | x2 | x3) & (~x1 | x2 | ~x3)"
        assert formula.is_restricted_form()
        assert is_satisfiable(formula)
