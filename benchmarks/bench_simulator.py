"""E11 — system-level view: running the paper's systems on the
distributed lock-manager simulator.

Series: serializable / non-serializable / deadlock rates under random
interleaving for the unsafe Fig. 1 and Fig. 3 systems, the safe Fig. 5
system, and safe two-phase workloads; plus adversarial replay of
Theorem 2 certificates (violation rate must be 100%).
"""

import random

from repro.core import decide_safety
from repro.sim import RandomDriver, ReplayDriver, estimate_violation_rate, run_once
from repro.workloads import figure_1, figure_3, figure_5, random_pair_system

from _series import report, table


def test_monte_carlo_rates(benchmark):
    runs = 400
    systems = {
        "Fig. 1 (unsafe)": figure_1(),
        "Fig. 3 (unsafe)": figure_3(),
        "Fig. 5 (safe)": figure_5(),
        "random 2PL (safe)": random_pair_system(
            random.Random(1), sites=2, entities=4, shared=4, two_phase=True
        ),
    }
    rows = []
    for label, system in systems.items():
        rates = estimate_violation_rate(system, runs=runs, seed=99)
        rows.append(
            (
                label,
                f"{rates['serializable']:.1%}",
                f"{rates['non-serializable']:.1%}",
                f"{rates['deadlock']:.1%}",
            )
        )
        if "safe" in label and "unsafe" not in label:
            assert rates["non-serializable"] == 0.0
        if "unsafe" in label:
            assert rates["non-serializable"] > 0.0
    benchmark(lambda: run_once(figure_1(), RandomDriver(5)))
    report(
        "E11a-simulator-rates",
        f"execution outcomes under random interleaving ({runs} runs each)",
        table(
            ["system", "serializable", "non-serializable", "deadlock"], rows
        )
        + [
            "statically safe systems NEVER mis-serialize; statically "
            "unsafe ones do so under a majority of random interleavings",
        ],
    )


def test_adversarial_replay(benchmark):
    rng = random.Random(55)
    replayed = 0
    violations = 0
    for _ in range(25):
        system = random_pair_system(
            rng, sites=2, entities=rng.randint(2, 4), shared=rng.randint(2, 3),
            cross_arcs=rng.randint(0, 2),
        )
        verdict = decide_safety(system)
        if verdict.safe:
            continue
        result = run_once(system, ReplayDriver(verdict.witness))
        replayed += 1
        violations += result.outcome == "non-serializable"
    benchmark(
        lambda: run_once(
            figure_1(), ReplayDriver(decide_safety(figure_1()).witness)
        )
    )
    report(
        "E11b-adversarial-replay",
        "Theorem 2 certificates replayed on the engine",
        [
            f"replays: {replayed}; non-serializable outcomes: {violations}",
            "every certificate is an executable attack on the lock manager",
        ],
    )
    assert replayed == violations and replayed > 0
