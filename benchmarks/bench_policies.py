"""E9 — §6 policies: two-phase locking is safe, undisciplined locking is
not; a distributed policy is correct iff its centralized image is.

Series: unsafe rate of random two-phase workloads (must be 0%) vs the
same generator without the discipline; tree-protocol workloads (safe,
non-two-phase); and agreement between distributed policy safety and the
centralized-image criterion.
"""

import random

from repro.core import DistributedDatabase, TransactionSystem, decide_safety
from repro.policies import (
    EntityTree,
    centralized_image_is_safe,
    is_two_phase,
    policy_sample_is_safe,
    random_tree_transaction,
)
from repro.workloads import random_pair_system

from _series import report, table


def unsafe_rate(two_phase: bool, trials: int = 80) -> float:
    rng = random.Random(90 + two_phase)
    unsafe = 0
    for _ in range(trials):
        system = random_pair_system(
            rng, sites=rng.randint(1, 3), entities=rng.randint(2, 4),
            shared=rng.randint(2, 4), two_phase=two_phase,
            cross_arcs=rng.randint(0, 2),
        )
        unsafe += not decide_safety(system, want_certificate=False).safe
    return unsafe / trials


def test_two_phase_discipline(benchmark):
    tp_rate = unsafe_rate(two_phase=True)
    loose_rate = unsafe_rate(two_phase=False)
    benchmark(lambda: unsafe_rate(two_phase=True, trials=10))
    report(
        "E9a-two-phase",
        "unsafe rate: two-phase vs undisciplined random workloads",
        table(
            ["discipline", "unsafe rate"],
            [("two-phase", f"{tp_rate:.1%}"), ("loose", f"{loose_rate:.1%}")],
        )
        + ["paper (§6 / Theorem 1): distributed 2PL is always safe"],
    )
    assert tp_rate == 0.0
    assert loose_rate > 0.0


def test_tree_protocol_policy(benchmark):
    db = DistributedDatabase({"r": 1, "a": 1, "b": 2, "c": 2, "d": 1})
    tree = EntityTree({"r": None, "a": "r", "b": "r", "c": "a", "d": "a"})
    rng = random.Random(17)
    unsafe = 0
    non_two_phase = 0
    trials = 40
    for index in range(trials):
        t1 = random_tree_transaction("T1", db, tree, rng, walk_length=4)
        t2 = random_tree_transaction("T2", db, tree, rng, walk_length=4)
        system = TransactionSystem([t1, t2])
        unsafe += not decide_safety(system, want_certificate=False).safe
        non_two_phase += not (is_two_phase(t1) and is_two_phase(t2))
    benchmark(
        lambda: random_tree_transaction("T", db, tree, rng, walk_length=4)
    )
    report(
        "E9b-tree-protocol",
        "tree (hierarchical) protocol workloads",
        [
            f"unsafe systems: {unsafe}/{trials} (must be 0)",
            f"pairs containing a non-two-phase transaction: "
            f"{non_two_phase}/{trials} "
            "(the safe-but-not-2PL family of [12] / §6)",
        ],
    )
    assert unsafe == 0
    assert non_two_phase > 0


def test_centralized_image_equivalence(benchmark):
    rng = random.Random(29)
    agreements = 0
    trials = 25
    for _ in range(trials):
        system = random_pair_system(
            rng, sites=rng.choice([1, 2, 3]), entities=rng.randint(2, 4),
            shared=rng.randint(2, 3), cross_arcs=rng.randint(0, 2),
        )
        sample = system.transactions
        agreements += policy_sample_is_safe(sample) == (
            centralized_image_is_safe(sample)
        )
    benchmark(
        lambda: centralized_image_is_safe(
            random_pair_system(
                random.Random(1), sites=2, entities=3, shared=2
            ).transactions
        )
    )
    report(
        "E9c-centralized-image",
        "§6: distributed policy safe <=> centralized image safe",
        [f"agreement: {agreements}/{trials}"],
    )
    assert agreements == trials
