"""E9 — admission-service throughput: fingerprint cache and fan-out.

Series: a fleet of 200+ clustered transactions pushed through the
:class:`repro.service.AdmissionRegistry` three ways — cold (empty
verdict cache), warm (a second fresh registry sharing the warmed
cache), and as one cold pair batch fanned out over process-pool
workers.  The admitted set must be *identical* to a reference mirror
that calls :func:`repro.core.decide_safety` on every new-vs-accepted
pair directly, with no fingerprints, no cache, and no trivial-pair
fast path.

Results land in ``results/BENCH_service.json`` (machine readable) and
``results/E9*-*.txt`` (prose).
"""

import os
import random
import time

from repro.core import DistributedDatabase, TransactionSystem, decide_safety
from repro.service import AdmissionRegistry, PairVettingPool, VerdictCache
from repro.workloads import random_transaction

from _series import metrics_snapshot, report, table, write_bench

CLUSTERS = 52
CLUSTER_SIZE = 4
FLEET_SEED = 2026


def clustered_fleet(rng, *, clusters=CLUSTERS, cluster_size=CLUSTER_SIZE):
    """A fleet of ``clusters * cluster_size`` transactions over one
    database.

    Each cluster is a *path*: transaction ``i`` locks the entity pair
    ``(a_i, b_i)`` and the next pair ``(a_i+1, b_i+1)``, so consecutive
    cluster members share exactly two entities (a real Theorem 2
    decision) while everything else is disjoint — the interaction graph
    is a forest of paths and the cycle condition never has work to do.
    Every seventh cluster drops the two-phase discipline, which is what
    lets the fleet contain genuinely unsafe pairs to reject.
    """
    assignment = {}
    for c in range(clusters):
        for i in range(cluster_size + 1):
            assignment[f"c{c}a{i}"] = 1
            assignment[f"c{c}b{i}"] = 2
    database = DistributedDatabase(assignment, sites=2)
    fleet = []
    for c in range(clusters):
        two_phase = c % 7 != 6
        for i in range(cluster_size):
            fleet.append(
                random_transaction(
                    f"c{c}t{i}",
                    database,
                    rng,
                    entities=[
                        f"c{c}a{i}", f"c{c}b{i}",
                        f"c{c}a{i + 1}", f"c{c}b{i + 1}",
                    ],
                    cross_arcs=0 if two_phase else 2,
                    two_phase=two_phase,
                )
            )
    return database, fleet


def reference_admissions(fleet):
    """Mirror the registry with the offline deciders only: a candidate
    is admitted iff every pair with an already-accepted member is safe
    per :func:`decide_safety` and the subsystem of accepted members it
    shares entities with stays safe when it joins."""
    accepted = []
    admitted_names = set()
    for transaction in fleet:
        locked = set(transaction.locked_entities())
        pairwise_safe = all(
            decide_safety(
                TransactionSystem([transaction, member]),
                want_certificate=False,
            ).safe
            for member in accepted
        )
        if not pairwise_safe:
            continue
        neighbours = [
            member for member in accepted
            if locked & set(member.locked_entities())
        ]
        if len(neighbours) >= 2 and not decide_safety(
            TransactionSystem(neighbours + [transaction]),
            want_certificate=False,
        ).safe:
            continue
        accepted.append(transaction)
        admitted_names.add(transaction.name)
    return admitted_names


def admit_all(fleet, *, database, cache, workers=1):
    """Push the whole fleet through one registry; return the admitted
    names, the elapsed wall time, the stats dict and an observability
    snapshot (per-phase seconds, cache hit rate)."""
    registry = AdmissionRegistry(
        database=database,
        cache=cache,
        pool=PairVettingPool(workers=workers),
    )
    start = time.perf_counter()
    try:
        decisions = [
            registry.admit(transaction, want_certificate=False)
            for transaction in fleet
        ]
    finally:
        registry.pool.close()
    elapsed = time.perf_counter() - start
    admitted = {d.name for d in decisions if d.admitted}
    snapshot = metrics_snapshot(registry.stats, registry.cache)
    return admitted, elapsed, registry.stats_dict(), snapshot


def test_service_cache_warmup(benchmark):
    rng = random.Random(FLEET_SEED)
    database, fleet = clustered_fleet(rng)
    assert len(fleet) >= 200

    cache = VerdictCache()
    cold_admitted, cold_seconds, cold_stats, cold_metrics = admit_all(
        fleet, database=database, cache=cache
    )
    warm_admitted, warm_seconds, warm_stats, warm_metrics = admit_all(
        fleet, database=database, cache=cache
    )
    reference = reference_admissions(fleet)
    speedup = cold_seconds / warm_seconds

    benchmark(
        lambda: admit_all(fleet[:40], database=database, cache=cache)
    )

    rejected = len(fleet) - len(cold_admitted)
    report(
        "E9a-service-cache",
        "admission throughput, cold vs warmed verdict cache "
        f"({len(fleet)} transactions, {CLUSTERS} clusters)",
        table(
            ["run", "seconds", "pairs vetted", "pairs from cache"],
            [
                (
                    "cold", f"{cold_seconds:.3f}",
                    cold_stats["service"]["pairs_vetted"],
                    cold_stats["service"]["pairs_from_cache"],
                ),
                (
                    "warm", f"{warm_seconds:.3f}",
                    warm_stats["service"]["pairs_vetted"],
                    warm_stats["service"]["pairs_from_cache"],
                ),
            ],
        )
        + [
            f"speedup: {speedup:.1f}x",
            f"admitted {len(cold_admitted)}, rejected {rejected}; "
            "identical to per-pair decide_safety: "
            f"{cold_admitted == reference}",
        ],
    )
    write_bench(
        "BENCH_service",
        params={"fleet": len(fleet), "clusters": CLUSTERS},
        samples={
            "cache_warmup": {
                "admitted": len(cold_admitted),
                "rejected": rejected,
                "cold_seconds": round(cold_seconds, 4),
                "warm_seconds": round(warm_seconds, 4),
                "warm_speedup": round(speedup, 2),
                "cold_pairs_vetted": cold_stats["service"]["pairs_vetted"],
                "warm_pairs_from_cache": (
                    warm_stats["service"]["pairs_from_cache"]
                ),
                "identity_with_decide_safety": cold_admitted == reference,
            },
        },
        metrics={"cold": cold_metrics, "warm": warm_metrics},
    )
    assert cold_admitted == warm_admitted == reference
    assert warm_stats["service"]["pairs_vetted"] == 0
    assert speedup >= 5.0


def test_service_parallel_batch(benchmark):
    rng = random.Random(FLEET_SEED)
    _, fleet = clustered_fleet(rng)
    by_name = {transaction.name: transaction for transaction in fleet}
    pairs = [
        (by_name[f"c{c}t{i}"], by_name[f"c{c}t{i + 1}"])
        for c in range(CLUSTERS)
        for i in range(CLUSTER_SIZE - 1)
    ]

    timings = {}
    rows = []
    verdicts = {}
    for workers in (1, 4):
        with PairVettingPool(workers=workers) as pool:
            pool.vet(pairs[:2])  # force executor start-up out of the timing
            start = time.perf_counter()
            results = pool.vet(pairs)
            timings[workers] = time.perf_counter() - start
        verdicts[workers] = [row.safe for row in results]
        rows.append((workers, f"{timings[workers]:.3f} s"))
    assert verdicts[1] == verdicts[4]

    with PairVettingPool(workers=1) as pool:
        benchmark(lambda: pool.vet(pairs[:20]))

    cpu_count = os.cpu_count() or 1
    report(
        "E9b-service-pool",
        f"cold pair batch ({len(pairs)} pairs) vs worker count "
        f"(host has {cpu_count} CPU(s))",
        table(["workers", "time"], rows)
        + [
            "with a single host CPU the fan-out can only add IPC "
            "overhead; on a multi-core host workers=4 takes the lead",
        ],
    )
    write_bench(
        "BENCH_service",
        params={"batch_pairs": len(pairs)},
        samples={
            "parallel_batch": {
                "workers_1_seconds": round(timings[1], 4),
                "workers_4_seconds": round(timings[4], 4),
            },
        },
    )
    if cpu_count >= 4:
        assert timings[4] < timings[1]
