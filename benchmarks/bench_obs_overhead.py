"""E12 — observability overhead: disabled tracing must be ~free.

Series: the 208-transaction clustered fleet of E9 pushed through the
admission service twice — once with tracing off (the production
default) and once tracing every span into a JSONL file — plus a direct
measurement of the disabled-span fast path (a dict lookup, a falsy
branch, no allocation).

The claim under test is the instrumentation contract: with tracing
*disabled*, the spans sprinkled through decide/vet must cost less than
3% of the fleet's admission wall time.  The wall-clock delta of a
single enabled-vs-disabled run is also recorded, but the assertion is
made on ``spans_per_run x ns_per_disabled_span`` — the honest estimate
of what the disabled path adds, immune to the run-to-run noise of a
shared host.
"""

import os
import random
import time

from repro.obs import trace
from repro.service import VerdictCache

from _series import report, write_bench
from bench_service_throughput import FLEET_SEED, admit_all, clustered_fleet

OVERHEAD_BUDGET = 0.03
#: ``REPRO_BENCH_QUICK=1`` (the CI smoke job) shrinks the fast-path
#: sampling; the overhead assertion is unchanged.
SPAN_SAMPLES = (
    20_000 if os.environ.get("REPRO_BENCH_QUICK") else 200_000
)


def _disabled_span_ns(samples: int = SPAN_SAMPLES) -> float:
    """Mean cost of one ``with span(...)`` while tracing is off."""
    assert not trace.tracing_enabled()
    span = trace.span
    start = time.perf_counter_ns()
    for _ in range(samples):
        with span("obs.bench.noop"):
            pass
    return (time.perf_counter_ns() - start) / samples


def test_tracing_overhead(benchmark, tmp_path):
    rng = random.Random(FLEET_SEED)
    database, fleet = clustered_fleet(rng)
    assert len(fleet) >= 200

    assert not trace.tracing_enabled()
    _, disabled_seconds, _, _ = admit_all(
        fleet, database=database, cache=VerdictCache()
    )

    trace_file = tmp_path / "fleet.jsonl"
    trace.start_tracing(str(trace_file))
    try:
        _, enabled_seconds, _, _ = admit_all(
            fleet, database=database, cache=VerdictCache()
        )
    finally:
        trace.stop_tracing()
    spans_per_run = sum(1 for line in trace_file.read_text().splitlines() if line)
    assert spans_per_run > len(fleet)  # at least one span per admission

    ns_per_disabled_span = _disabled_span_ns()
    benchmark(lambda: _disabled_span_ns(2_000))

    # What the disabled instrumentation actually adds to the fleet run.
    disabled_overhead = (
        spans_per_run * ns_per_disabled_span / (disabled_seconds * 1e9)
    )
    enabled_ratio = enabled_seconds / disabled_seconds

    report(
        "E12-obs-overhead",
        f"span instrumentation cost on the {len(fleet)}-transaction fleet",
        [
            f"tracing off: {disabled_seconds:.3f} s",
            f"tracing on:  {enabled_seconds:.3f} s "
            f"({enabled_ratio:.2f}x, {spans_per_run} spans recorded)",
            f"disabled span: {ns_per_disabled_span:.0f} ns each -> "
            f"{disabled_overhead:.4%} of the untraced run",
        ],
    )
    write_bench(
        "BENCH_obs",
        params={
            "fleet": len(fleet),
            "span_samples": SPAN_SAMPLES,
            "overhead_budget": OVERHEAD_BUDGET,
        },
        samples={
            "tracing": {
                "disabled_seconds": round(disabled_seconds, 4),
                "enabled_seconds": round(enabled_seconds, 4),
                "enabled_ratio": round(enabled_ratio, 3),
                "spans_per_run": spans_per_run,
                "ns_per_disabled_span": round(ns_per_disabled_span, 1),
                "disabled_overhead_fraction": round(disabled_overhead, 6),
            },
        },
    )
    assert disabled_overhead < OVERHEAD_BUDGET
