"""E8 — Proposition 2: many-transaction safety.

Series: over random k-transaction systems, Proposition 2's verdict vs
the definitional exhaustive search (agreement must be 100% where the
exhaustive search is feasible), plus decision time as k grows.
"""

import random
import time

from repro.core import decide_safety_exhaustive, decide_safety_multi
from repro.workloads import random_system

from _series import metrics_snapshot, report, table, write_bench


def test_proposition_2_agreement(benchmark):
    rng = random.Random(88)
    agreements = 0
    total = 0
    unsafe_count = 0
    for _ in range(40):
        system = random_system(
            rng, transactions=3, sites=rng.choice([1, 2]),
            entities=rng.randint(2, 4), entities_per_transaction=2,
        )
        verdict = decide_safety_multi(system)
        exhaustive = decide_safety_exhaustive(system, state_budget=4_000_000)
        agreements += verdict.safe == exhaustive.safe
        unsafe_count += not verdict.safe
        total += 1
    rng2 = random.Random(5)
    system = random_system(
        rng2, transactions=3, sites=2, entities=3, entities_per_transaction=2
    )
    benchmark(lambda: decide_safety_multi(system))
    report(
        "E8a-prop2-agreement",
        "Proposition 2 vs exhaustive ground truth (k = 3)",
        [
            f"agreement: {agreements}/{total} "
            f"({unsafe_count} unsafe systems among them)",
        ],
    )
    write_bench(
        "BENCH_multi",
        params={"transactions": 3, "systems": total},
        samples={
            "agreement": {
                "agreements": agreements,
                "unsafe_systems": unsafe_count,
            },
        },
        metrics=metrics_snapshot(decisions=True),
    )
    assert agreements == total


def test_proposition_2_scaling(benchmark):
    rows = []
    scaling = []
    for k in (3, 4, 5, 6, 8):
        rng = random.Random(k * 3)
        system = random_system(
            rng, transactions=k, sites=2, entities=k + 1,
            entities_per_transaction=3,
        )
        start = time.perf_counter()
        verdict = decide_safety_multi(system)
        elapsed = time.perf_counter() - start
        rows.append(
            (k, f"{elapsed * 1e3:.1f} ms", "safe" if verdict.safe else "unsafe")
        )
        scaling.append(
            {
                "k": k,
                "milliseconds": round(elapsed * 1e3, 3),
                "safe": verdict.safe,
            }
        )
    rng2 = random.Random(11)
    system = random_system(
        rng2, transactions=4, sites=2, entities=5, entities_per_transaction=3
    )
    benchmark(lambda: decide_safety_multi(system))
    report(
        "E8b-prop2-scaling",
        "Proposition 2 decision time vs number of transactions k",
        table(["k", "time", "verdict"], rows)
        + [
            "pairs dominate the cost at small k; the cycle condition's "
            "enumeration kicks in as the interaction graph densifies",
        ],
    )
    write_bench(
        "BENCH_multi",
        params={"scaling_ks": [row["k"] for row in scaling]},
        samples={"scaling": scaling},
        metrics=metrics_snapshot(decisions=True),
    )
