"""E6 — Theorem 1: strong connectivity is sufficient at any site count.

Series: over random multi-site pairs, every strongly-connected-D system
must be safe (agreement must be 100%); plus the cost of the sufficient
test, which stays polynomial while exact decision is exponential.
"""

import random
import time

from repro.core import decide_safety_exact, is_safe_sufficient
from repro.workloads import random_pair_system

from _series import report, table


def test_theorem1_sufficiency(benchmark):
    rng = random.Random(61)
    connected = 0
    agreements = 0
    silent = 0
    silent_safe = 0
    for _ in range(150):
        system = random_pair_system(
            rng, sites=rng.randint(3, 5), entities=rng.randint(2, 4),
            shared=rng.randint(2, 4), cross_arcs=rng.randint(0, 3),
        )
        first, second = system.pair()
        sufficient = is_safe_sufficient(first, second)
        exact = decide_safety_exact(first, second).safe
        if sufficient is True:
            connected += 1
            agreements += exact
        else:
            silent += 1
            silent_safe += exact
    rng2 = random.Random(8)
    system = random_pair_system(rng2, sites=4, entities=4, shared=4)
    benchmark(lambda: is_safe_sufficient(*system.pair()))
    report(
        "E6-theorem1",
        "Theorem 1 — sufficiency of strong connectivity (3-5 sites)",
        [
            f"D strongly connected: {connected} systems; "
            f"all safe: {agreements}/{connected}",
            f"criterion silent: {silent} systems; of those, "
            f"{silent_safe} turned out safe anyway (Fig. 5-like gap)",
            "paper: SC => safe always; the converse fails beyond 2 sites",
        ],
    )
    assert agreements == connected
