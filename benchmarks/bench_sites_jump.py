"""E10 — the headline question: IS distributed locking harder?

Series: exact safety-decision time for matched workloads (same entity
and step counts) as the number of sites grows.  At m <= 2 sites the
Theorem 2 test applies and time stays flat/polynomial; from m >= 3 only
the exact (dominator-enumerating) decider is sound, and its worst case
grows exponentially with the dominator structure — the paper's
qualitative jump, measured.
"""

import random
import statistics
import time

from repro.core import decide_safety
from repro.core.schedule import TransactionSystem
from repro.workloads import random_pair_system

from _series import report, table


def decision_time(sites: int, entities: int, trials: int = 12) -> float:
    rng = random.Random(1000 + sites)
    times = []
    for _ in range(trials):
        system = random_pair_system(
            rng, sites=sites, entities=entities, shared=entities,
            cross_arcs=2,
        )
        start = time.perf_counter()
        decide_safety(system, want_certificate=False)
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def test_sites_jump(benchmark):
    entities = 8
    rows = []
    for sites in (1, 2, 3, 4, 8):
        elapsed = decision_time(sites, entities)
        rows.append((sites, f"{elapsed * 1e3:.2f} ms"))
    benchmark(lambda: decision_time(4, entities, trials=2))
    report(
        "E10-sites-jump",
        f"exact safety decision time vs sites (entities={entities})",
        table(["sites m", "median time"], rows)
        + [
            "m <= 2: Theorem 2's strong-connectivity test (polynomial);",
            "m >= 3: dominator enumeration, worst-case exponential "
            "(coNP-complete, Theorem 3) — the paper's 'harder' answered "
            "with a measured jump in the decision procedure itself",
        ],
    )


def test_worst_case_dominator_blowup(benchmark):
    """The true worst case: SAFE multi-site systems make the exact
    decider enumerate (and refute) *every* dominator.  The Theorem 3
    reduction of UNSAT formulas manufactures exactly that shape; the
    series shows the 4x-per-variable blowup on a growing UNSAT family

        (p_i | y_i) & (p_i | ~y_i)  for each i,  plus  (~p_1 | ~p_2).
    """
    from repro.core import decide_safety_exact
    from repro.core.reduction import reduce_cnf_to_pair
    from repro.logic import CnfFormula, is_satisfiable

    def unsat_family(forced: int) -> CnfFormula:
        clauses = []
        for index in range(1, forced + 1):
            clauses.append(f"(p{index} | y{index})")
            clauses.append(f"(p{index} | ~y{index})")
        clauses.append("(~p1 | ~p2)")
        return CnfFormula.parse(" & ".join(clauses))

    rows = []
    for forced in (2, 3):
        formula = unsat_family(forced)
        assert not is_satisfiable(formula)
        artifacts = reduce_cnf_to_pair(formula)
        units = len(artifacts.middle_scc_units())
        start = time.perf_counter()
        verdict = decide_safety_exact(artifacts.first, artifacts.second)
        elapsed = time.perf_counter() - start
        rows.append(
            (
                2 * forced,
                2**units,
                f"{elapsed * 1e3:.1f} ms",
                "safe" if verdict.safe else "unsafe",
            )
        )
        assert verdict.safe
    benchmark(lambda: None)
    report(
        "E10b-dominator-structure",
        "exact decider on safe (UNSAT) reduction instances",
        table(["variables", "dominators", "time", "verdict"], rows)
        + [
            "every dominator must be enumerated and refuted before "
            "'safe' can be answered: 4x cost per added variable — the "
            "coNP wall the two-site world never hits",
        ],
    )
