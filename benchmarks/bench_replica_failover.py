"""E16 — replica failover: recovery time and throughput vs group size.

Series: the safe two-site transfer pair run on the replicated runtime
(:mod:`repro.replica`) with 1, 3, and 5 replicas per logical site,
under a *permanent* leader kill on site 1 at logical time 40.  Each
leg reports committed transactions, throughput, failovers, and the
**recovery time in logical steps** — shared-clock ticks from the
leader kill to the replacement leader's first lock grant.

The claims under test:

* with a single replica, a permanent leader kill is a permanent site
  crash: the run cannot commit everything and the audit is incomplete
  (the honest unavailability baseline);
* with 3 or 5 replicas the run rides through the kill — every
  surviving transaction commits, the audit completes, and the
  committed history stays conflict-serializable;
* recovery time is finite and grows with group size (larger quorums,
  more vote traffic), making the availability/latency trade visible;
* a *healthy* replicated run on the memory transport is
  bit-deterministic: same seed, same history **and outcome**
  fingerprints (the outcome fingerprint also covers retry schedules).

Results land in ``results/BENCH_replica.json`` in the standard
envelope.  ``REPRO_BENCH_QUICK=1`` shrinks the sweep for smoke runs.
"""

import os

from repro.faults.plan import FaultPlan, SiteCrash
from repro.replica import run_replicated_sync
from repro.sim.analysis import serializable_from_site_orders

from _series import report, table, write_bench
from bench_cluster_throughput import transfer_pair

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
ROUNDS = 3 if QUICK else 10
SEED = 7
#: The kill lands once the run is warm but with work still queued.
KILL_AT = 40
#: A killed leader answers nothing: the client timeout is what
#: triggers re-resolution, so failover latency scales with it.
REQUEST_TIMEOUT = 1.0
#: Failover aborts in-flight transactions; give them room to requeue.
MAX_RETRIES = 8
GROUP_SIZES = (1, 3, 5)


def _throughput(transactions, seconds):
    return transactions / seconds if seconds else float("inf")


def test_replica_failover(benchmark):
    system = transfer_pair()
    plan = FaultPlan(site_crashes=(SiteCrash(site=1, at=KILL_AT),))
    samples = {}
    reports = {}

    for replicas in GROUP_SIZES:
        replica_report = run_replicated_sync(
            system,
            replicas=replicas,
            rounds=ROUNDS,
            seed=SEED,
            concurrency=4,
            max_retries=MAX_RETRIES,
            request_timeout=REQUEST_TIMEOUT,
            fault_plan=plan,
        )
        reports[replicas] = replica_report
        recovery = [
            entry.get("recovery_steps") for entry in replica_report.recovery
        ]
        samples[f"replicas-{replicas}"] = {
            "replicas": replicas,
            "transactions": replica_report.transactions,
            "committed": replica_report.committed,
            "seconds": round(replica_report.wall_seconds, 4),
            "txn_per_s": round(
                _throughput(
                    replica_report.committed, replica_report.wall_seconds
                ),
                1,
            ),
            "serializable": replica_report.serializable,
            "audit_complete": replica_report.audit_complete,
            "failovers": replica_report.failovers,
            "recovery_steps": recovery,
            "clock_end": replica_report.clock_end,
        }

    # Bit-determinism of a *healthy* replicated run (fault runs involve
    # wall-clock timeouts, so only the fault-free path is fingerprinted).
    healthy = [
        run_replicated_sync(system, replicas=3, rounds=ROUNDS, seed=SEED)
        for _ in range(2)
    ]
    deterministic = (
        healthy[0].history_fingerprint == healthy[1].history_fingerprint
        and healthy[0].outcome_fingerprint == healthy[1].outcome_fingerprint
    )

    benchmark(
        lambda: run_replicated_sync(system, replicas=3, rounds=1, seed=SEED)
    )

    rows = [
        (
            name,
            row["committed"],
            row["transactions"],
            row["failovers"],
            "/".join(
                str(s) if s is not None else "never"
                for s in row["recovery_steps"]
            )
            or "-",
            f"{row['txn_per_s']:.0f}",
        )
        for name, row in samples.items()
    ]
    report(
        "E16-replica-failover",
        f"transfer pair x {ROUNDS} rounds, permanent leader kill at "
        f"clock {KILL_AT}, 1/3/5 replicas per site",
        table(
            ["group", "committed", "txns", "failovers", "recovery", "txn/s"],
            rows,
        )
        + [
            f"healthy 3-replica determinism (history+outcome): {deterministic}",
        ],
    )
    write_bench(
        "BENCH_replica",
        params={
            "rounds": ROUNDS,
            "seed": SEED,
            "kill_at": KILL_AT,
            "request_timeout": REQUEST_TIMEOUT,
            "max_retries": MAX_RETRIES,
            "group_sizes": list(GROUP_SIZES),
            "sites": 2,
        },
        samples=samples,
    )

    # One replica = the paper's crash-vulnerable site: honest failure.
    assert reports[1].committed < reports[1].transactions
    assert not reports[1].audit_complete
    # Replicated groups ride through the permanent kill.
    for replicas in GROUP_SIZES[1:]:
        rep = reports[replicas]
        assert rep.committed == rep.transactions, replicas
        assert rep.audit_complete, replicas
        assert serializable_from_site_orders(rep.site_orders), replicas
        assert all(
            entry.get("recovery_steps") is not None for entry in rep.recovery
        ), replicas
    assert deterministic
