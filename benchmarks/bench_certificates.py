"""Ablation A3 — what does constructiveness cost?

Theorem 2's proof is constructive: beyond the yes/no verdict it builds
closure, priority total orders, a separating curve and an explicit
non-serializable schedule.  The series compares, on unsafe two-site
systems of growing size, the bare verdict (strong connectivity) against
full certificate construction, and reports the certificate pipeline's
stage costs.
"""

import random
import time

from repro.core import (
    certificate_from_dominator,
    d_graph,
    is_safe_two_site,
)
from repro.core.closure import close_with_respect_to
from repro.core.dgraph import some_dominator_of
from repro.workloads import random_pair_system

from _series import report, table


def find_unsafe_system(entities: int):
    rng = random.Random(entities * 31)
    while True:
        system = random_pair_system(
            rng, sites=2, entities=entities, shared=entities, cross_arcs=2
        )
        first, second = system.pair()
        if not is_safe_two_site(first, second):
            return first, second


def test_certificate_construction_cost(benchmark):
    rows = []
    for entities in (4, 8, 16, 32, 64):
        first, second = find_unsafe_system(entities)
        start = time.perf_counter()
        is_safe_two_site(first, second)
        verdict_time = time.perf_counter() - start

        start = time.perf_counter()
        dominator = some_dominator_of(d_graph(first, second))
        closed = close_with_respect_to(first, second, dominator)
        closure_time = time.perf_counter() - start

        start = time.perf_counter()
        certificate = certificate_from_dominator(first, second, dominator)
        full_time = time.perf_counter() - start
        rows.append(
            (
                entities * 6,
                f"{verdict_time * 1e3:.2f} ms",
                f"{closure_time * 1e3:.2f} ms",
                f"{full_time * 1e3:.2f} ms",
                closed.rounds,
                len(certificate.schedule),
            )
        )
    first, second = find_unsafe_system(8)
    benchmark(lambda: certificate_from_dominator(first, second))
    report(
        "A3-certificate-cost",
        "verdict vs constructive certificate (unsafe two-site systems)",
        table(
            [
                "n steps",
                "verdict",
                "closure",
                "full certificate",
                "closure rounds",
                "schedule len",
            ],
            rows,
        )
        + [
            "the certificate costs a small constant factor over the bare "
            "verdict at these sizes; closure typically converges in 0-2 "
            "rounds on random systems",
        ],
    )
