"""E17 — the arena matrix: policy × workload × fault plan sweeps.

Series: the three committed traffic specs in ``examples/workloads/``
(uniform closed-loop baseline, Zipfian hot-key skew with a two-region
latency matrix, open-loop Poisson overload) driven through the cluster
runtime under each locking policy (2PL, tree protocol, vetted-optimal
admission), fault-free and with the committed hot-spot fault plan
(a recoverable site crash plus a grant delay pinned to the hot key).
Cell keys read ``policy:workload:faults``.

The claims under test are the arena's contracts:

* every cell — all policies, all workloads, faults or not — commits a
  conflict-serializable history and the audit saw every site; aborts
  and retries are reported as rates, never as correctness failures;
* memory-transport cells are bit-deterministic: a second identical
  sweep reproduces every cell's history and outcome fingerprints;
* a cell's fingerprints do not depend on the rest of the sweep — the
  per-cell CRC seed makes each cell a pure function of (seed, cell).

Throughput and latency land in ``results/BENCH_arena.json`` in the
standard envelope; ``tools/check_bench_regression.py --suite arena``
compares those numbers against ``benchmarks/baselines.json`` in CI.
``REPRO_BENCH_QUICK=1`` shrinks every spec for smoke runs.
"""

import os

from repro.arena import NO_FAULTS, run_arena
from repro.faults import FaultPlan
from repro.workloads import POLICIES, TrafficSpec

from _series import report, table, write_bench

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
#: Instances per spec: quick mode keeps CI cells under a second each;
#: full mode leans on the vetting budget and the retry machinery.
TRANSACTIONS = 6 if QUICK else 24
SEED = 17
MAX_RETRIES = 8

WORKLOADS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "examples",
    "workloads",
)
SPEC_FILES = ("uniform-baseline.json", "zipfian-hot.json", "overload-open-loop.json")
FAULT_PLAN_FILE = "faults-hotspot.json"


def load_specs() -> list[TrafficSpec]:
    return [
        TrafficSpec.load(os.path.join(WORKLOADS_DIR, name)).scaled(
            transactions=TRANSACTIONS
        )
        for name in SPEC_FILES
    ]


def load_fault_plans():
    plan = FaultPlan.load(os.path.join(WORKLOADS_DIR, FAULT_PLAN_FILE))
    return [(NO_FAULTS, None), ("faults-hotspot", plan)]


def sweep():
    return run_arena(
        load_specs(),
        policies=list(POLICIES),
        fault_plans=load_fault_plans(),
        seed=SEED,
        max_retries=MAX_RETRIES,
    )


def test_arena_matrix(benchmark):
    first = sweep()
    second = sweep()

    cells = {cell.label: cell for cell in first.cells}
    assert len(first.cells) == len(POLICIES) * len(SPEC_FILES) * 2

    # Correctness: every cell passes the serializability audit on a
    # complete history.  (Aborted instances are a performance outcome.)
    for cell in first.cells:
        assert cell.serializable, f"{cell.label}: history not serializable"
        assert cell.audit_complete, f"{cell.label}: audit incomplete"
        assert cell.committed + cell.retry_exhausted + cell.errors == (
            cell.transactions
        ), f"{cell.label}: outcomes do not add up"

    # Determinism: the second sweep replays every cell bit for bit.
    for before, after in zip(first.cells, second.cells):
        assert before.label == after.label
        assert before.history_fingerprint == after.history_fingerprint, before.label
        assert before.outcome_fingerprint == after.outcome_fingerprint, before.label
        assert before.committed == after.committed, before.label
        assert before.retries_total == after.retries_total, before.label

    benchmark(
        lambda: run_arena(
            [load_specs()[0].scaled(transactions=2)],
            policies=["2pl"],
            seed=SEED,
        )
    )

    samples = {
        f"{cell.policy}:{cell.workload}:{cell.fault_plan}": {
            "transactions": cell.transactions,
            "committed": cell.committed,
            "retry_exhausted": cell.retry_exhausted,
            "errors": cell.errors,
            "retries_total": cell.retries_total,
            "abort_rate": round(cell.abort_rate, 4),
            "retry_rate": round(cell.retry_rate, 4),
            "seconds": round(cell.wall_seconds, 4),
            "txn_per_s": round(cell.throughput_txn_s, 1),
            "p50_ms": round(cell.p50_ms, 3) if cell.p50_ms is not None else None,
            "p99_ms": round(cell.p99_ms, 3) if cell.p99_ms is not None else None,
            "serializable": cell.serializable,
            "audit_complete": cell.audit_complete,
            "history_fingerprint": cell.history_fingerprint,
            "outcome_fingerprint": cell.outcome_fingerprint,
        }
        for cell in first.cells
    }

    rows = [
        (
            label,
            row["committed"],
            f"{row['abort_rate']:.0%}",
            f"{row['txn_per_s']:.0f}",
            row["p99_ms"] if row["p99_ms"] is not None else "-",
        )
        for label, row in sorted(samples.items())
    ]
    report(
        "E17-arena-matrix",
        f"{len(POLICIES)} policies × {len(SPEC_FILES)} workloads × 2 fault "
        f"plans, {TRANSACTIONS} txns each",
        table(["cell", "committed", "abort", "txn/s", "p99ms"], rows)
        + [f"sweep wall time {first.wall_seconds:.2f}s, all audits clean"],
    )
    write_bench(
        "BENCH_arena",
        params={
            "transactions": TRANSACTIONS,
            "seed": SEED,
            "max_retries": MAX_RETRIES,
            "policies": list(POLICIES),
            "workloads": [os.path.splitext(name)[0] for name in SPEC_FILES],
            "fault_plans": [NO_FAULTS, "faults-hotspot"],
        },
        samples=samples,
    )
    assert cells  # sweep produced at least one cell
