"""E5 — Theorem 2 / Corollary 1: the O(n^2) two-site safety test.

Paper claim: "We can test in O(n^2) time, whether a two site transaction
system {T1, T2} is safe."  The series measures the test's wall time over
growing step counts and fits the growth exponent (expected <= ~2 plus
the transitive-closure setup), and shows the crossover against the
definitional exhaustive decider, which explodes almost immediately —
"who wins": the graph test, by orders of magnitude from tiny n on.
"""

import random
import time

from repro.core import decide_safety_exhaustive, is_safe_two_site
from repro.workloads import random_pair_system

from _series import fitted_exponent, report, table


def timed(fn, repeat=3):
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_two_site_scaling(benchmark):
    sizes = [4, 8, 16, 32, 64, 128, 256]
    rows = []
    ns = []
    times = []
    for entities in sizes:
        rng = random.Random(entities)
        system = random_pair_system(
            rng, sites=2, entities=entities, shared=entities, cross_arcs=3
        )
        first, second = system.pair()
        n = system.total_steps()
        elapsed = timed(lambda: is_safe_two_site(first, second))
        ns.append(n)
        times.append(elapsed)
        rows.append((n, f"{elapsed * 1e3:.2f} ms"))
    exponent = fitted_exponent(ns, times)

    rng = random.Random(7)
    system = random_pair_system(rng, sites=2, entities=64, shared=64)
    first, second = system.pair()
    benchmark(lambda: is_safe_two_site(first, second))

    report(
        "E5a-two-site-scaling",
        "Theorem 2 / Corollary 1 — two-site test time vs total steps n",
        table(["n steps", "time"], rows)
        + [
            f"fitted growth exponent: {exponent:.2f} "
            "(paper: O(n^2); polynomial confirmed)"
        ],
    )
    assert exponent < 3.0


def test_graph_test_vs_exhaustive_crossover(benchmark):
    rows = []
    for entities in (2, 3, 4, 5):
        rng = random.Random(entities + 40)
        system = random_pair_system(
            rng, sites=2, entities=entities, shared=entities
        )
        first, second = system.pair()
        graph_time = timed(lambda: is_safe_two_site(first, second))
        exhaustive_time = timed(
            lambda: decide_safety_exhaustive(system), repeat=1
        )
        rows.append(
            (
                system.total_steps(),
                f"{graph_time * 1e3:.3f} ms",
                f"{exhaustive_time * 1e3:.1f} ms",
                f"{exhaustive_time / graph_time:,.0f}x",
            )
        )
    rng = random.Random(3)
    system = random_pair_system(rng, sites=2, entities=3, shared=3)
    benchmark(lambda: is_safe_two_site(*system.pair()))
    report(
        "E5b-crossover",
        "graph test vs exhaustive enumeration (two sites)",
        table(["n steps", "Theorem 2", "exhaustive", "speedup"], rows)
        + [
            "who wins: the Theorem 2 test, at every size; the exhaustive "
            "decider grows exponentially and is hopeless past ~30 steps"
        ],
    )
