"""E7b — Theorem 3's "qualitative jump": exact multi-site safety grows
exponentially while the reduction itself stays linear and the SAT side
stays easy at these sizes.

Series: for reduced instances of growing variable count,
* reduction size (entities, steps) — linear in |F|;
* exact safety-decision time — grows with the dominator count 2^(2K);
* DPLL satisfiability time — negligible;
* the two-site test on same-total-steps two-site systems — polynomial,
  for contrast (the paper's centralized-vs-distributed gap).
"""

import random
import time

from repro.core import decide_safety_exact, is_safe_two_site
from repro.core.reduction import reduce_cnf_to_pair
from repro.logic import is_satisfiable
from repro.workloads import random_pair_system, random_restricted_cnf

from _series import report, table


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_conp_jump(benchmark):
    rows = []
    for variables in (2, 3, 4, 5, 6):
        rng = random.Random(variables * 7)
        formula = random_restricted_cnf(
            rng, variables=variables, clauses=max(1, variables - 1)
        )
        artifacts, build_time = timed(lambda: reduce_cnf_to_pair(formula))
        _, sat_time = timed(lambda: is_satisfiable(formula))
        verdict, exact_time = timed(
            lambda: decide_safety_exact(artifacts.first, artifacts.second)
        )
        steps = len(artifacts.first) * 2

        # A two-site system with the same total number of steps.
        two_site = random_pair_system(
            rng, sites=2, entities=steps // 6, shared=steps // 6
        )
        pair = two_site.pair()
        _, two_site_time = timed(lambda: is_safe_two_site(*pair))
        rows.append(
            (
                variables,
                steps,
                f"{build_time * 1e3:.1f} ms",
                f"{exact_time * 1e3:.1f} ms",
                f"{sat_time * 1e3:.2f} ms",
                f"{two_site_time * 1e3:.1f} ms",
                "unsafe" if not verdict.safe else "safe",
            )
        )

    rng = random.Random(3)
    formula = random_restricted_cnf(rng, variables=3, clauses=2)
    benchmark(lambda: reduce_cnf_to_pair(formula))

    report(
        "E7b-conp-jump",
        "Theorem 3 — exact multi-site decision vs polynomial baselines",
        table(
            [
                "vars",
                "steps",
                "reduce",
                "exact-safety",
                "DPLL",
                "2-site test",
                "verdict",
            ],
            rows,
        )
        + [
            "shape: reduction linear; exact decision grows ~4x per added "
            "variable (2^(2K) dominators); the matched-size two-site test "
            "stays flat — the paper's centralized/distributed jump",
        ],
    )
