"""E3 — Fig. 3: an unsafe distributed system whose extension pairs
split into safe and unsafe planes.

Paper artifact: Figs. 3a-e.  {T1, T2} is unsafe (Lemma 1: some
extension pair is), although the particular extension pair of Fig. 3c
is safe; D(T1, T2) admits the dominator {x, y} (Fig. 3e).
"""

from repro.core import (
    GeometricPicture,
    d_graph,
    d_graph_of_total_orders,
    decide_safety,
    decide_safety_exhaustive,
    dominators_of,
)
from repro.graphs import is_strongly_connected
from repro.workloads import figure_3, figure_3_extension_pairs

from _series import report


def test_fig3_reproduction(benchmark):
    system = figure_3()
    verdict = benchmark(lambda: decide_safety(figure_3()))
    assert not verdict.safe
    safe_pair, unsafe_pair = figure_3_extension_pairs()
    safe_connected = is_strongly_connected(
        d_graph_of_total_orders(*safe_pair)
    )
    unsafe_connected = is_strongly_connected(
        d_graph_of_total_orders(*unsafe_pair)
    )
    assert safe_connected and not unsafe_connected
    graph = d_graph(*system.pair())
    dominators = sorted(sorted(d) for d in dominators_of(graph))
    exhaustive = decide_safety_exhaustive(system)
    unsafe_picture = GeometricPicture(*unsafe_pair)
    curve = unsafe_picture.find_nonserializable_curve()
    report(
        "E3-fig3",
        "Fig. 3 — unsafe system, safe (3c) vs unsafe (3d) extension pair",
        [
            f"{{T1, T2}} unsafe: {not verdict.safe} "
            f"(exhaustive agrees: {not exhaustive.safe})",
            f"Fig. 3c extension pair D strongly connected (safe plane): "
            f"{safe_connected}",
            f"Fig. 3d extension pair D strongly connected: "
            f"{unsafe_connected} -> separating curve found: "
            f"{curve is not None}",
            f"D(T1, T2) arcs: {sorted(graph.arcs())}",
            f"dominators of D(T1, T2): {dominators} "
            "(paper's Fig. 3e dominator: ['x', 'y'])",
        ],
    )
    assert ["x", "y"] in dominators
