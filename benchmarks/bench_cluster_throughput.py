"""E14 — cluster throughput: simulator vs memory/TCP per codec×batch cell.

Series: the safe two-site transfer pair (two 2PL transactions locking
``x`` and ``y`` in opposite orders — deadlock-capable, so the run
exercises probes and retries, not just the happy path) executed as the
in-process lock-step simulator (:func:`repro.sim.run_once`) plus the
full :mod:`repro.cluster` runtime over every protocol configuration:
{memory, tcp} transport x {json, binary} wire codec x {nobatch, batch}
step shipping.  Cell keys read ``tcp:binary:batch``.

The claims under test are the cluster runtime's contracts:

* every committed history in every cell is conflict-serializable —
  re-audited with :func:`repro.sim.analysis.serializable_from_site_orders`
  directly on the reported site orders, not just the report flag — and
  the audit saw every site (``audit_complete``);
* in full mode every TCP cell executes >= 1000 transactions, all
  committed;
* the memory transport is deterministic *per configuration*: the same
  seed yields the same history and outcome fingerprints on a rerun;
* the wire codec is invisible to scheduling: json and binary memory
  runs of the same batch mode produce identical outcome fingerprints.

Throughput lands in ``results/BENCH_cluster.json`` in the standard
envelope; ``tools/check_bench_regression.py`` compares those numbers
against ``benchmarks/baselines.json`` in CI.  ``REPRO_BENCH_QUICK=1``
shrinks the sweep for smoke runs.
"""

import os
import time

from repro.cluster import run_cluster_sync
from repro.core.entity import DistributedDatabase
from repro.core.schedule import TransactionSystem
from repro.core.step import lock, unlock, update
from repro.core.transaction import Transaction
from repro.sim import RandomDriver, run_once
from repro.sim.analysis import serializable_from_site_orders

from _series import report, table, write_bench

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
#: Two transactions per round: full mode puts >= 1000 through TCP.
ROUNDS = 25 if QUICK else 500
SEED = 14
#: High contention (every clone wants x and y) means deadlock churn;
#: a generous retry budget and modest concurrency let every
#: transaction commit rather than exhaust retries.
MAX_RETRIES = 16
CONCURRENCY = 4
CODECS = ("json", "binary")
BATCHING = (False, True)


def transfer_pair():
    """Two 2PL transactions over a two-site database, locking the
    entities in opposite orders."""
    database = DistributedDatabase({"x": 1, "y": 2})

    def chain(name, entities):
        steps = []
        for entity in entities:
            steps.append(lock(entity))
            steps.append(update(entity))
        for entity in entities:
            steps.append(unlock(entity))
        order = [(steps[i], steps[i + 1]) for i in range(len(steps) - 1)]
        return Transaction(name, database, steps, order)

    return TransactionSystem(
        [chain("T1", ["x", "y"]), chain("T2", ["y", "x"])]
    )


def cell_key(transport: str, codec: str, batch: bool) -> str:
    return f"{transport}:{codec}:{'batch' if batch else 'nobatch'}"


def _throughput(transactions, seconds):
    return transactions / seconds if seconds else float("inf")


def test_cluster_throughput(benchmark):
    system = transfer_pair()
    samples = {}

    started = time.perf_counter()
    for run in range(ROUNDS):
        run_once(system, RandomDriver(SEED + run))
    elapsed = time.perf_counter() - started
    txns = ROUNDS * len(system)
    samples["simulator"] = {
        "transactions": txns,
        "seconds": round(elapsed, 4),
        "txn_per_s": round(_throughput(txns, elapsed), 1),
    }

    reports = {}
    for transport in ("memory", "tcp"):
        for codec in CODECS:
            for batch in BATCHING:
                cluster_report = run_cluster_sync(
                    system,
                    transport=transport,
                    rounds=ROUNDS,
                    seed=SEED,
                    max_retries=MAX_RETRIES,
                    concurrency=CONCURRENCY,
                    request_timeout=30.0 if transport == "tcp" else None,
                    codec=codec,
                    batch=batch,
                )
                key = cell_key(transport, codec, batch)
                reports[key] = cluster_report
                samples[key] = {
                    "transactions": cluster_report.transactions,
                    "committed": cluster_report.committed,
                    "seconds": round(cluster_report.wall_seconds, 4),
                    "txn_per_s": round(
                        _throughput(
                            cluster_report.transactions,
                            cluster_report.wall_seconds,
                        ),
                        1,
                    ),
                    "messages": cluster_report.messages,
                    "serializable": cluster_report.serializable,
                    "audit_complete": cluster_report.audit_complete,
                    "history_fingerprint": cluster_report.history_fingerprint,
                    "outcome_fingerprint": cluster_report.outcome_fingerprint,
                }

    # Determinism of the memory transport, per configuration: the same
    # seed replays the same history and the same retry schedules.
    for codec in CODECS:
        for batch in BATCHING:
            key = cell_key("memory", codec, batch)
            rerun = run_cluster_sync(
                system,
                transport="memory",
                rounds=ROUNDS,
                seed=SEED,
                max_retries=MAX_RETRIES,
                concurrency=CONCURRENCY,
                codec=codec,
                batch=batch,
            )
            assert rerun.history_fingerprint == reports[key].history_fingerprint, key
            assert rerun.outcome_fingerprint == reports[key].outcome_fingerprint, key

    # The codec only changes bytes on the wire, never scheduling: json
    # and binary memory runs of one batch mode agree on every outcome.
    for batch in BATCHING:
        assert (
            reports[cell_key("memory", "json", batch)].outcome_fingerprint
            == reports[cell_key("memory", "binary", batch)].outcome_fingerprint
        ), f"codec changed the memory-transport outcome (batch={batch})"

    benchmark(
        lambda: run_cluster_sync(
            system, rounds=2, seed=SEED, max_retries=MAX_RETRIES,
            codec="binary", batch=True,
        )
    )

    rows = [
        (
            name,
            row["transactions"],
            f"{row['seconds']:.3f}",
            f"{row['txn_per_s']:.0f}",
        )
        for name, row in samples.items()
    ]
    batch_tcp = samples[cell_key("tcp", "binary", True)]["txn_per_s"]
    plain_tcp = samples[cell_key("tcp", "json", False)]["txn_per_s"]
    report(
        "E14-cluster-throughput",
        f"transfer pair x {ROUNDS} rounds, codec x batching cells",
        table(["cell", "txns", "seconds", "txn/s"], rows)
        + [
            "tcp binary+batch over json+nobatch: "
            f"{batch_tcp / plain_tcp:.2f}x" if plain_tcp else "n/a",
        ],
    )
    write_bench(
        "BENCH_cluster",
        params={
            "rounds": ROUNDS,
            "seed": SEED,
            "max_retries": MAX_RETRIES,
            "concurrency": CONCURRENCY,
            "sites": 2,
            "codecs": list(CODECS),
            "batching": ["nobatch", "batch"],
        },
        samples=samples,
    )

    for key, cluster_report in reports.items():
        assert cluster_report.committed == cluster_report.transactions, key
        assert cluster_report.audit_complete, key
        # Re-audit the committed site orders independently of the flag.
        assert serializable_from_site_orders(cluster_report.site_orders), key
    if not QUICK:
        for codec in CODECS:
            for batch in BATCHING:
                assert reports[cell_key("tcp", codec, batch)].transactions >= 1000
