"""E14 — cluster throughput: simulator vs memory transport vs TCP.

Series: the safe two-site transfer pair (two 2PL transactions locking
``x`` and ``y`` in opposite orders — deadlock-capable, so the run
exercises probes and retries, not just the happy path) executed three
ways: the in-process lock-step simulator (:func:`repro.sim.run_once`),
the full :mod:`repro.cluster` runtime over the deterministic memory
transport, and the same runtime over real TCP sockets on loopback.

The claims under test are the cluster runtime's contracts:

* every committed history is conflict-serializable — re-audited here
  with :func:`repro.sim.analysis.serializable_from_site_orders`
  directly on the reported site orders, not just the report flag;
* in full mode the TCP path executes >= 1000 transactions;
* the memory transport is deterministic: the same seed yields the same
  per-entity committed orders (equal history fingerprints).

Throughput lands in ``results/BENCH_cluster.json`` in the standard
envelope.  ``REPRO_BENCH_QUICK=1`` shrinks the sweep for smoke runs.
"""

import os
import time

from repro.cluster import run_cluster_sync
from repro.core.entity import DistributedDatabase
from repro.core.schedule import TransactionSystem
from repro.core.step import lock, unlock, update
from repro.core.transaction import Transaction
from repro.sim import RandomDriver, run_once
from repro.sim.analysis import serializable_from_site_orders

from _series import report, table, write_bench

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
#: Two transactions per round: full mode puts >= 1000 through TCP.
ROUNDS = 25 if QUICK else 500
SEED = 14
#: High contention (every clone wants x and y) means deadlock churn;
#: a generous retry budget and modest concurrency let every
#: transaction commit rather than exhaust retries.
MAX_RETRIES = 16
CONCURRENCY = 4


def transfer_pair():
    """Two 2PL transactions over a two-site database, locking the
    entities in opposite orders."""
    database = DistributedDatabase({"x": 1, "y": 2})

    def chain(name, entities):
        steps = []
        for entity in entities:
            steps.append(lock(entity))
            steps.append(update(entity))
        for entity in entities:
            steps.append(unlock(entity))
        order = [(steps[i], steps[i + 1]) for i in range(len(steps) - 1)]
        return Transaction(name, database, steps, order)

    return TransactionSystem(
        [chain("T1", ["x", "y"]), chain("T2", ["y", "x"])]
    )


def _throughput(transactions, seconds):
    return transactions / seconds if seconds else float("inf")


def test_cluster_throughput(benchmark):
    system = transfer_pair()
    samples = {}

    started = time.perf_counter()
    for run in range(ROUNDS):
        run_once(system, RandomDriver(SEED + run))
    elapsed = time.perf_counter() - started
    txns = ROUNDS * len(system)
    samples["simulator"] = {
        "transactions": txns,
        "seconds": round(elapsed, 4),
        "txn_per_s": round(_throughput(txns, elapsed), 1),
    }

    reports = {}
    for transport in ("memory", "tcp"):
        cluster_report = run_cluster_sync(
            system,
            transport=transport,
            rounds=ROUNDS,
            seed=SEED,
            max_retries=MAX_RETRIES,
            concurrency=CONCURRENCY,
            request_timeout=30.0 if transport == "tcp" else None,
        )
        reports[transport] = cluster_report
        samples[transport] = {
            "transactions": cluster_report.transactions,
            "committed": cluster_report.committed,
            "seconds": round(cluster_report.wall_seconds, 4),
            "txn_per_s": round(
                _throughput(
                    cluster_report.transactions, cluster_report.wall_seconds
                ),
                1,
            ),
            "serializable": cluster_report.serializable,
            "history_fingerprint": cluster_report.history_fingerprint,
            "outcome_fingerprint": cluster_report.outcome_fingerprint,
        }

    # Determinism of the memory transport: same seed, same history.
    rerun = run_cluster_sync(
        system, transport="memory", rounds=ROUNDS, seed=SEED,
        max_retries=MAX_RETRIES, concurrency=CONCURRENCY,
    )

    benchmark(
        lambda: run_cluster_sync(
            system, rounds=2, seed=SEED, max_retries=MAX_RETRIES
        )
    )

    rows = [
        (
            name,
            row["transactions"],
            f"{row['seconds']:.3f}",
            f"{row['txn_per_s']:.0f}",
        )
        for name, row in samples.items()
    ]
    report(
        "E14-cluster-throughput",
        f"transfer pair x {ROUNDS} rounds, simulator vs cluster transports",
        table(["path", "txns", "seconds", "txn/s"], rows)
        + [
            "memory-transport determinism: "
            f"{rerun.history_fingerprint == reports['memory'].history_fingerprint}",
            "outcome determinism (incl. retry schedules): "
            f"{rerun.outcome_fingerprint == reports['memory'].outcome_fingerprint}",
        ],
    )
    write_bench(
        "BENCH_cluster",
        params={
            "rounds": ROUNDS,
            "seed": SEED,
            "max_retries": MAX_RETRIES,
            "concurrency": CONCURRENCY,
            "sites": 2,
        },
        samples=samples,
    )

    for transport, cluster_report in reports.items():
        assert cluster_report.committed == cluster_report.transactions, (
            transport
        )
        # Re-audit the committed site orders independently of the flag.
        assert serializable_from_site_orders(cluster_report.site_orders), (
            transport
        )
    if not QUICK:
        assert reports["tcp"].transactions >= 1000
    assert rerun.history_fingerprint == reports["memory"].history_fingerprint
    assert rerun.outcome_fingerprint == reports["memory"].outcome_fingerprint
