"""Ablation A1 — materialized D + Tarjan (O(n^2)) vs the implicit
near-linear test (O(n + k log k), the paper's [5, 14] bound).

Design choice ablated: `is_safe_two_site`/`d_graph` build all Θ(k²)
arcs; `is_safe_total_orders_fast` never materializes them.  The series
shows both are exact (always agree) and where the fast path's win
grows — the paper's O(n log n) remark made concrete.
"""

import random
import time

from repro.core import d_graph_of_total_orders, is_safe_total_orders_fast
from repro.graphs import is_strongly_connected
from repro.workloads import random_total_order_pair

from _series import fitted_exponent, report, table


def test_ablation_fast_centralized_test(benchmark):
    rows = []
    fast_times = []
    ks = []
    for k in (25, 50, 100, 200, 400, 800):
        rng = random.Random(k)
        _, t1, t2 = random_total_order_pair(rng, entities=k)
        start = time.perf_counter()
        fast = is_safe_total_orders_fast(t1, t2)
        fast_time = time.perf_counter() - start
        start = time.perf_counter()
        slow = is_strongly_connected(d_graph_of_total_orders(t1, t2))
        slow_time = time.perf_counter() - start
        assert fast == slow
        ks.append(k)
        fast_times.append(fast_time)
        rows.append(
            (
                k,
                f"{fast_time * 1e3:.2f} ms",
                f"{slow_time * 1e3:.1f} ms",
                f"{slow_time / fast_time:.0f}x",
            )
        )
    exponent = fitted_exponent(ks, fast_times)
    rng = random.Random(3)
    _, t1, t2 = random_total_order_pair(rng, entities=200)
    benchmark(lambda: is_safe_total_orders_fast(t1, t2))
    report(
        "A1-fastcheck",
        "ablation: implicit near-linear test vs materialized D + Tarjan",
        table(["k entities", "implicit", "materialized", "speedup"], rows)
        + [
            f"implicit test growth exponent: {exponent:.2f} "
            "(near-linear; paper cites O(n log n) [14] for this problem)",
        ],
    )
    assert exponent < 1.7
