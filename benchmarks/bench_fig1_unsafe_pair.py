"""E1 — Fig. 1: the two-site unsafe pair and its non-serializable
schedule.

Paper artifact: "Two transactions distributed at two sites and a
nonserializable schedule" (Fig. 1).  The reproduction decides the system
unsafe via Theorem 2, regenerates an explicit non-serializable schedule,
verifies it independently, and times the full analysis.
"""

from repro.core import decide_safety, decide_safety_exhaustive
from repro.sim import ReplayDriver, run_once
from repro.workloads import figure_1

from _series import report


def test_fig1_reproduction(benchmark):
    system = figure_1()
    verdict = benchmark(lambda: decide_safety(figure_1()))
    assert not verdict.safe
    certificate = verdict.certificate
    certificate.verify()
    exhaustive = decide_safety_exhaustive(system)
    replay = run_once(system, ReplayDriver(verdict.witness))
    report(
        "E1-fig1",
        "Fig. 1 — two-site pair, unsafe, with non-serializable schedule",
        [
            f"verdict: unsafe={not verdict.safe} via {verdict.method}",
            f"exhaustive ground truth agrees: {not exhaustive.safe}",
            f"dominator: {sorted(certificate.dominator)}",
            f"schedule: {verdict.witness}",
            f"schedule serializable: {verdict.witness.is_serializable()}",
            f"simulator replay outcome: {replay.outcome}",
            "paper: figure exhibits one such schedule; reproduction "
            "regenerates and machine-verifies it",
        ],
    )
