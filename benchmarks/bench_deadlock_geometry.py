"""E12 — deadlock geometry (extension of the §6 side remark).

The paper notes that centralized deadlock "can be studied side by side
with correctness [7]" while distributed deadlock is left open.  This
bench measures, over random centralized pairs, the joint distribution
of (safe?, deadlock-possible?) from the grid analysis, and validates
the geometric deadlock predictor against the lock-manager simulator.
"""

import random

from repro.core import GeometricPicture
from repro.sim import RandomDriver, run_once
from repro.workloads import random_total_order_pair

from _series import report, table


def test_deadlock_vs_safety_matrix(benchmark):
    rng = random.Random(120)
    counts = {
        (safe, deadlock): 0
        for safe in (True, False)
        for deadlock in (True, False)
    }
    trials = 200
    for _ in range(trials):
        _, t1, t2 = random_total_order_pair(rng, entities=rng.randint(2, 5))
        picture = GeometricPicture(t1, t2)
        safe = picture.find_nonserializable_curve() is None
        deadlock = picture.deadlock_possible()
        counts[(safe, deadlock)] += 1
    rows = [
        (
            "safe" if safe else "unsafe",
            "deadlock possible" if deadlock else "deadlock-free",
            count,
        )
        for (safe, deadlock), count in sorted(counts.items(), reverse=True)
    ]
    rng2 = random.Random(7)
    _, t1, t2 = random_total_order_pair(rng2, entities=4)
    picture = GeometricPicture(t1, t2)
    benchmark(picture.deadlock_possible)
    report(
        "E12a-deadlock-matrix",
        f"safety x deadlock over {trials} random centralized pairs",
        table(["safety", "deadlock", "count"], rows)
        + [
            "the two analyses are independent axes on the same geometric "
            "picture — the paper's 'side by side' claim, quantified",
        ],
    )
    # All four combinations should occur in a 200-pair sample.
    assert all(count > 0 for count in counts.values())


def test_geometric_predictor_vs_simulator(benchmark):
    rng = random.Random(121)
    agree_free = 0
    free_total = 0
    confirmed = 0
    possible_total = 0
    for _ in range(60):
        system, t1, t2 = random_total_order_pair(
            rng, entities=rng.randint(2, 4)
        )
        picture = GeometricPicture(t1, t2)
        if picture.deadlock_possible():
            possible_total += 1
            # Some random run should be able to deadlock; sample.
            for run_seed in range(40):
                if not run_once(system, RandomDriver(run_seed)).completed:
                    confirmed += 1
                    break
        else:
            free_total += 1
            clean = all(
                run_once(system, RandomDriver(run_seed)).completed
                for run_seed in range(15)
            )
            agree_free += clean
    benchmark(lambda: None)
    report(
        "E12b-deadlock-predictor",
        "geometric deadlock prediction vs simulator sampling",
        [
            f"predicted deadlock-free: {free_total}; "
            f"no sampled run deadlocked: {agree_free}/{free_total}",
            f"predicted deadlock-possible: {possible_total}; "
            f"deadlock reproduced by sampling: {confirmed}/{possible_total}",
        ],
    )
    assert agree_free == free_total
