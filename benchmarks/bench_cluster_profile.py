"""E15 — wire-latency decomposition: where a distributed lock's time goes.

Series: the deadlock-capable two-site transfer pair (reused from E14)
executed as the in-process lock-step simulator plus the cluster runtime
over every protocol configuration — {memory, tcp} transport x {json,
binary} codec x {nobatch, batch} step shipping — with the
:data:`repro.obs.distributed.WIRE` observer feeding the per-stage
latency histograms (``repro_cluster_latency_ns{stage=...}``).  The
simulator has no wire, so its sample is throughput plus mean wall
latency per transaction; the cluster cells decompose into the five
stages (encode, transport, server_queue, lock_wait, hold) so the
before/after of batching and binary framing can be read per stage.

The claims under test:

* with ``wire_metrics=True`` every one of the five stages records at
  least one sample in every cell (the workload deadlocks, so
  ``lock_wait`` is exercised, not just the happy path);
* the per-stage aggregates survive into ``results/BENCH_profile.json``
  (count, mean and total nanoseconds per stage and cell), alongside
  the batch-frame step counter (``repro_cluster_batched_steps_total``)
  for the batch cells;
* a traced memory run produces a merged span forest in which every
  committed transaction's tree is fully connected across processes
  (coordinator and site spans linked by the wire trace context).

The trace file lands in ``results/PROFILE_trace.jsonl`` so CI can
upload it as an artifact.  ``REPRO_BENCH_QUICK=1`` shrinks the sweep.
"""

import os
import time

from repro.cluster import run_cluster_sync
from repro.obs import trace
from repro.obs.distributed import STAGES, merge_traces, trace_trees
from repro.obs.metrics import REGISTRY
from repro.sim import RandomDriver, run_once

from _series import RESULTS_DIR, report, table, write_bench
from bench_cluster_throughput import BATCHING, CODECS, cell_key, transfer_pair

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
ROUNDS = 10 if QUICK else 200
SEED = 15
MAX_RETRIES = 16
CONCURRENCY = 4
TRACE_PATH = RESULTS_DIR / "PROFILE_trace.jsonl"


def stage_aggregates() -> dict:
    """Per-stage ``{count, mean_ns, total_ns}`` summed over sites, read
    off the ``repro_cluster_latency_ns`` histogram after a run (the
    runtime resets the registry at run *start*, so post-run reads see
    exactly one run's samples)."""
    histogram = REGISTRY.get("repro_cluster_latency_ns")
    stages = {stage: {"count": 0, "total_ns": 0.0} for stage in STAGES}
    if histogram is not None:
        for selector, values in histogram.to_dict().get("series", {}).items():
            for stage in STAGES:
                if f'stage="{stage}"' in selector:
                    stages[stage]["count"] += values["count"]
                    stages[stage]["total_ns"] += values["sum"]
    return {
        stage: {
            "count": entry["count"],
            "total_ns": round(entry["total_ns"]),
            "mean_ns": round(entry["total_ns"] / entry["count"])
            if entry["count"]
            else None,
        }
        for stage, entry in stages.items()
    }


def batched_steps_total() -> int:
    """Steps carried inside batch frames (sent direction), read off
    ``repro_cluster_batched_steps_total`` after a run."""
    counter = REGISTRY.get("repro_cluster_batched_steps_total")
    if counter is None:
        return 0
    return round(
        sum(
            values
            for selector, values in counter.to_dict().get("series", {}).items()
            if 'direction="sent"' in selector
        )
    )


def test_cluster_profile(benchmark):
    system = transfer_pair()
    samples = {}

    # Baseline: the simulator has no wire, so its sample is the whole
    # transaction's wall time, undecomposed.
    started = time.perf_counter()
    for run in range(ROUNDS):
        run_once(system, RandomDriver(SEED + run))
    elapsed = time.perf_counter() - started
    txns = ROUNDS * len(system)
    samples["simulator"] = {
        "transactions": txns,
        "seconds": round(elapsed, 4),
        "txn_per_s": round(txns / elapsed if elapsed else float("inf"), 1),
        "mean_txn_ns": round(elapsed / txns * 1e9) if txns else None,
    }

    for transport in ("memory", "tcp"):
        for codec in CODECS:
            for batch in BATCHING:
                cluster_report = run_cluster_sync(
                    system,
                    transport=transport,
                    rounds=ROUNDS,
                    seed=SEED,
                    max_retries=MAX_RETRIES,
                    concurrency=CONCURRENCY,
                    request_timeout=30.0 if transport == "tcp" else None,
                    codec=codec,
                    batch=batch,
                    wire_metrics=True,
                )
                stages = stage_aggregates()
                batched = batched_steps_total()
                key = cell_key(transport, codec, batch)
                samples[key] = {
                    "transactions": cluster_report.transactions,
                    "committed": cluster_report.committed,
                    "seconds": round(cluster_report.wall_seconds, 4),
                    "txn_per_s": round(
                        cluster_report.transactions / cluster_report.wall_seconds
                        if cluster_report.wall_seconds
                        else float("inf"),
                        1,
                    ),
                    "batched_steps": batched,
                    "stages": stages,
                }
                for stage in STAGES:
                    assert stages[stage]["count"] > 0, (key, stage)
                # Batch frames carry steps exactly when batching is on.
                assert (batched > 0) == batch, key
                assert cluster_report.committed == cluster_report.transactions, key

    # Traced memory run: the merged span forest must link coordinator
    # and site spans into one connected tree per transaction.
    RESULTS_DIR.mkdir(exist_ok=True)
    trace.start_tracing(str(TRACE_PATH))
    try:
        traced = run_cluster_sync(
            system,
            transport="memory",
            rounds=2,
            seed=SEED,
            max_retries=MAX_RETRIES,
            concurrency=CONCURRENCY,
        )
    finally:
        trace.stop_tracing()
    forest = trace_trees(merge_traces([str(TRACE_PATH)]))
    assert len(forest) == traced.transactions
    assert all(tree.connected for tree in forest)
    samples["traced_memory"] = {
        "transactions": traced.transactions,
        "trees": len(forest),
        "connected": sum(1 for tree in forest if tree.connected),
        "trace_file": TRACE_PATH.name,
    }

    benchmark(
        lambda: run_cluster_sync(
            system,
            rounds=2,
            seed=SEED,
            max_retries=MAX_RETRIES,
            wire_metrics=True,
        )
    )

    rows = []
    for transport in ("memory", "tcp"):
        for codec in CODECS:
            for batch in BATCHING:
                key = cell_key(transport, codec, batch)
                for stage in STAGES:
                    entry = samples[key]["stages"][stage]
                    rows.append(
                        (
                            key,
                            stage,
                            entry["count"],
                            f"{(entry['mean_ns'] or 0) / 1e3:.1f}",
                            f"{entry['total_ns'] / 1e6:.1f}",
                        )
                    )
    report(
        "E15-cluster-profile",
        f"transfer pair x {ROUNDS} rounds, per-stage wire-latency decomposition",
        table(["cell", "stage", "samples", "mean us", "total ms"], rows)
        + [
            f"simulator mean txn: {samples['simulator']['mean_txn_ns']} ns",
            f"traced run: {samples['traced_memory']['connected']}/"
            f"{samples['traced_memory']['trees']} trees connected "
            f"({TRACE_PATH.name})",
        ],
    )
    write_bench(
        "BENCH_profile",
        params={
            "rounds": ROUNDS,
            "seed": SEED,
            "max_retries": MAX_RETRIES,
            "concurrency": CONCURRENCY,
            "sites": 2,
            "stages": list(STAGES),
            "codecs": list(CODECS),
            "batching": ["nobatch", "batch"],
        },
        samples=samples,
    )
