"""Ablation A2 — the dominator pruning inside the exact decider.

Design choice ablated: the exact decider enumerates only bit vectors
whose zero-set is ancestor-closed in ``D(T1, T2)`` (a *dominator*,
Definition 2) because realizability forces monotonicity along ``D``'s
arcs.  The naive variant tries all ``2^k - 2`` mixed vectors.  Both are
exact (agreement asserted); the series shows the pruning's factor,
which grows with how connected ``D`` is — on reduction instances the
dominator count is ``2^(middle units)`` vs ``2^(all entities)``, an
astronomically larger naive space.
"""

import random
import time

from repro.core import d_graph, decide_safety_exact
from repro.core.dgraph import dominators_of
from repro.core.safety import decide_safety_exact_naive
from repro.workloads import random_pair_system

from _series import report, table


def test_ablation_dominator_pruning(benchmark):
    rows = []
    rng = random.Random(42)
    for entities in (4, 6, 8, 10):
        system = random_pair_system(
            rng, sites=entities, entities=entities, shared=entities,
            cross_arcs=2,
        )
        first, second = system.pair()
        dominator_count = sum(1 for _ in dominators_of(d_graph(first, second)))
        start = time.perf_counter()
        pruned = decide_safety_exact(first, second)
        pruned_time = time.perf_counter() - start
        start = time.perf_counter()
        naive = decide_safety_exact_naive(first, second)
        naive_time = time.perf_counter() - start
        assert pruned.safe == naive.safe
        rows.append(
            (
                entities,
                dominator_count,
                2**entities - 2,
                f"{pruned_time * 1e3:.1f} ms",
                f"{naive_time * 1e3:.1f} ms",
                "safe" if pruned.safe else "unsafe",
            )
        )
    rng2 = random.Random(9)
    system = random_pair_system(rng2, sites=4, entities=6, shared=6)
    benchmark(lambda: decide_safety_exact(*system.pair()))
    report(
        "A2-dominator-pruning",
        "ablation: dominator-pruned vs naive bit-vector enumeration",
        table(
            [
                "k entities",
                "dominators",
                "naive vectors",
                "pruned",
                "naive",
                "verdict",
            ],
            rows,
        )
        + [
            "the pruning searches the dominators of D only — on unsafe "
            "instances both exit early, on safe ones the gap is the full "
            "dominator-count vs 2^k ratio",
        ],
    )


def test_reduction_instance_pruning_factor(benchmark):
    """On a Theorem 3 instance the contrast is extreme: middle units
    only vs every entity."""
    from repro.core.reduction import reduce_cnf_to_pair
    from repro.logic import CnfFormula

    formula = CnfFormula.parse("(p | y1) & (p | ~y1) & (q | y2) & (q | ~y2) & (~p | ~q)")
    artifacts = reduce_cnf_to_pair(formula)
    graph = d_graph(artifacts.first, artifacts.second)
    dominator_count = sum(1 for _ in dominators_of(graph))
    k = len(graph.nodes())
    start = time.perf_counter()
    verdict = decide_safety_exact(artifacts.first, artifacts.second)
    pruned_time = time.perf_counter() - start
    benchmark(lambda: None)
    report(
        "A2b-reduction-pruning",
        "dominator pruning on a safe (UNSAT) reduction instance",
        [
            f"shared entities k = {k}; naive space 2^k - 2 = {2**k - 2:,}",
            f"dominators actually enumerated: {dominator_count}",
            f"pruned decision time: {pruned_time * 1e3:.1f} ms "
            f"(verdict: {'safe' if verdict.safe else 'unsafe'})",
            "the naive decider would need ~2^{}/{} = {:.1e}x more work".format(
                k, dominator_count, (2**k - 2) / max(1, dominator_count)
            ),
        ],
    )
    assert verdict.safe
    assert dominator_count < 2**k - 2