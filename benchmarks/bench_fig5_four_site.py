"""E4 — Fig. 5: strong connectivity is NOT necessary beyond two sites.

Paper artifact: the four-site system whose D(T1, T2) is not strongly
connected yet which is safe — closure with respect to the only dominator
{x1, x2} forces Ux1 to both precede and follow Ux2.

The bench reproduces the phenomenon on the reconstructed system, times
the exact decider that performs the paper's "exhaustive analysis", and
searches random four-site systems to show the phenomenon is findable in
the wild (and never occurs at <= 2 sites — Theorem 2).
"""

import random

from repro.core import d_graph, decide_safety_exact
from repro.core.closure import ClosureContradiction, close_with_respect_to
from repro.core.dgraph import dominators_of
from repro.graphs import is_strongly_connected
from repro.workloads import figure_5, random_pair_system

from _series import report


def test_fig5_reproduction(benchmark):
    system = figure_5()
    first, second = system.pair()
    verdict = benchmark(lambda: decide_safety_exact(*figure_5().pair()))
    assert verdict.safe
    graph = d_graph(first, second)
    assert not is_strongly_connected(graph)
    doms = list(dominators_of(graph))
    contradiction = None
    try:
        close_with_respect_to(first, second, doms[0])
    except ClosureContradiction as exc:
        contradiction = str(exc)
    report(
        "E4a-fig5",
        "Fig. 5 — four sites, D not strongly connected, system SAFE",
        [
            f"D arcs: {sorted(graph.arcs())}",
            f"strongly connected: {is_strongly_connected(graph)}",
            f"dominators: {[sorted(d) for d in doms]} (paper: only {{x1, x2}})",
            f"exact decider verdict: safe={verdict.safe} ({verdict.detail})",
            f"closure contradiction: {contradiction}",
            "paper: closure forces Ux1 to both precede and follow Ux2",
        ],
    )
    assert contradiction and "Ux1" in contradiction and "Ux2" in contradiction


def test_fig5_phenomenon_search(benchmark):
    """How often do random pairs show the Fig. 5 gap (not SC yet safe)?
    Never at <= 2 sites (Theorem 2); occasionally at 4 sites."""

    def survey(sites: int, trials: int = 150) -> tuple[int, int]:
        rng = random.Random(sites * 1000 + 5)
        gaps = 0
        not_connected = 0
        for _ in range(trials):
            system = random_pair_system(
                rng, sites=sites, entities=4, shared=4,
                cross_arcs=rng.randint(1, 4),
            )
            first, second = system.pair()
            if is_strongly_connected(d_graph(first, second)):
                continue
            not_connected += 1
            if decide_safety_exact(first, second).safe:
                gaps += 1
        return gaps, not_connected

    results = {sites: survey(sites) for sites in (1, 2, 4)}
    benchmark(lambda: survey(4, trials=20))
    lines = [
        f"sites={sites}: {gaps} safe-despite-disconnected-D out of "
        f"{disconnected} disconnected-D systems"
        for sites, (gaps, disconnected) in results.items()
    ]
    lines.append(
        "paper: the gap requires > 2 sites (Theorem 2 exact at <= 2); "
        "random workloads almost never realize it — the engineered "
        "half-arc structure of figure_5() (and of the Theorem 3 "
        "gadgets) is what produces safe-but-disconnected systems"
    )
    report("E4b-fig5-search", "searching for the Fig. 5 gap", lines)
    assert results[1][0] == 0
    assert results[2][0] == 0
