"""E13 — fault recovery: crashed runs must come back, cheaply.

Series: the Fig. 3 pair under a seeded random fault plan (site
crashes with both lock-table semantics, grant delays, a transaction
crash), swept across driver seeds once per deadlock-resolution policy.
For each policy the sweep records the completion rate, the mean
abort-and-requeue count per run, and the p95 rollback-to-completion
latency in logical steps.

The claim under test is the recovery contract of :mod:`repro.faults`:
with a recoverable plan and a resolution policy, every seeded run
terminates (the step/idle budgets guarantee that) and the overwhelming
majority *complete* — faults cost retries, not outcomes.  The sweep
statistics and a process-metrics snapshot land in
``results/BENCH_faults.json`` for the CI bench-smoke job.

``REPRO_BENCH_QUICK=1`` shrinks the sweep for smoke runs.
"""

import os

from repro.faults import chaos_sweep, random_plan
from repro.obs import metrics
from repro.workloads import figure_3

from _series import report, table, write_bench

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
SEEDS = 40 if QUICK else 200
PLAN_SEED = 42
POLICIES_SWEPT = ("abort-youngest", "abort-random", "wound-wait")
MIN_COMPLETION_RATE = 0.9


def test_fault_recovery(benchmark):
    system = figure_3()
    plan = random_plan(
        system,
        PLAN_SEED,
        site_crashes=2,
        grant_delays=1,
        transaction_crashes=1,
        recoverable=True,
    )

    sweeps = {
        policy: chaos_sweep(
            system, seeds=SEEDS, plan=plan, policy=policy, max_retries=4
        )
        for policy in POLICIES_SWEPT
    }
    benchmark(
        lambda: chaos_sweep(
            system,
            seeds=5,
            plan=plan,
            policy="abort-youngest",
            max_retries=4,
        )
    )

    rows = []
    for policy, sweep in sweeps.items():
        p95 = sweep.p95_recovery_latency
        rows.append(
            (
                policy,
                f"{sweep.completion_rate:.2%}",
                f"{sweep.mean_retries:.2f}",
                sweep.deadlocks_resolved,
                f"{p95:.0f}" if p95 is not None else "n/a",
            )
        )
    report(
        "E13-fault-recovery",
        f"{SEEDS}-seed sweeps of figure 3 under plan seed {PLAN_SEED} "
        f"({len(plan)} faults)",
        table(
            ["policy", "completed", "retries/run", "resolved", "p95 steps"],
            rows,
        ),
    )

    registry_dump = metrics.REGISTRY.to_dict()
    write_bench(
        "BENCH_faults",
        params={
            "seeds": SEEDS,
            "plan_seed": PLAN_SEED,
            "plan": plan.to_dict(),
        },
        samples={
            policy: sweep.to_dict() for policy, sweep in sweeps.items()
        },
        metrics={
            name: registry_dump[name]
            for name in (
                "repro_faults_injected_total",
                "repro_deadlocks_resolved_total",
                "repro_retries_total",
            )
            if name in registry_dump
        },
    )

    for policy, sweep in sweeps.items():
        # Budgets guarantee termination; completion is the contract.
        assert sum(sweep.outcomes.values()) == SEEDS, policy
        assert sweep.completion_rate >= MIN_COMPLETION_RATE, (
            policy,
            sweep.outcomes,
        )
