"""E18 — insight overhead: the always-on flight recorder must be ~free.

Series: the deadlock-capable two-site transfer pair of E14 run through
the memory-transport cluster runtime twice — once with the flight
recorder off and once with a :class:`~repro.obs.insight.FlightRecorder`
ring attached (the production default) — plus a direct measurement of
one ``record()`` call, and the latency of ``status`` probes served by
a site that is simultaneously processing lock traffic.

The claims under test are the insight tier's contracts:

* the recorder changes *observability*, not *outcomes*: the recorder-on
  and recorder-off runs produce byte-identical outcome and history
  fingerprints, and the ring contents themselves replay identically
  across same-seed runs;
* the recorder's cost stays under E12's 3% observability budget — the
  assertion is ``records_per_run x ns_per_record`` against the bare
  run's wall time (the honest estimate, immune to run-to-run noise of
  a shared host), with the wall-clock ratio of the two runs also
  recorded;
* a loaded site answers ``status`` probes without stalling: every
  probe completes, and the p95 probe latency lands in the results for
  trend tracking.

Throughput lands in ``results/BENCH_insight.json`` in the standard
envelope; ``tools/check_bench_regression.py --suite insight`` compares
the memory-cell numbers against ``benchmarks/baselines.json`` in CI.
``REPRO_BENCH_QUICK=1`` shrinks the sweep for smoke runs.
"""

import asyncio
import os
import time

from repro import stats
from repro.cluster import protocol, run_cluster_sync
from repro.cluster.siteserver import SiteServer
from repro.cluster.transport import MemoryTransport
from repro.obs.insight import FlightRecorder

from _series import report, table, write_bench
from bench_cluster_throughput import (
    CONCURRENCY,
    MAX_RETRIES,
    SEED,
    transfer_pair,
)

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
ROUNDS = 25 if QUICK else 500
#: E12's observability budget, inherited unchanged: the recorder is
#: part of the same "near-free when idle, cheap when on" contract.
OVERHEAD_BUDGET = 0.03
RECORD_SAMPLES = 20_000 if QUICK else 200_000
PROBES = 50 if QUICK else 200


def _record_ns(samples: int = RECORD_SAMPLES, repeats: int = 5) -> float:
    """Cost of one FlightRecorder record at capacity (the steady
    state: every record overwrites, nothing reallocates).  Min over
    ``repeats`` chunks, per ``timeit`` practice: the minimum is the
    true cost, everything above it is scheduler and GC noise."""
    ring = FlightRecorder()
    message = {"type": "lock", "id": 7, "txn": "T1"}
    # Fill to capacity first so the timed loops measure wraparound.
    for _ in range(ring.capacity):
        ring.wire("send", message, 96, 1)
    chunk = max(1, samples // repeats)
    best = None
    for _ in range(repeats):
        start = time.perf_counter_ns()
        for _ in range(chunk):
            ring.wire("send", message, 96, 1)
        elapsed = (time.perf_counter_ns() - start) / chunk
        best = elapsed if best is None else min(best, elapsed)
    return best


def _run(recorder):
    return run_cluster_sync(
        transfer_pair(),
        transport="memory",
        rounds=ROUNDS,
        concurrency=CONCURRENCY,
        max_retries=MAX_RETRIES,
        seed=SEED,
        recorder=recorder,
    )


async def _probe_loaded_site() -> list[float]:
    """Status-probe latencies (seconds) against a site that is busy
    granting and releasing locks the whole time."""
    transport = MemoryTransport()
    server = SiteServer(1, transport=transport)
    await server.start()
    try:
        load = await transport.connect(1)
        probe = await transport.connect(1)
        running = True

        async def hammer() -> None:
            request_id = 0
            while running:
                request_id += 1
                await load.send(
                    protocol.request(
                        "lock", request_id, txn="L", entity="x", age=0
                    )
                )
                await load.recv()
                request_id += 1
                await load.send(
                    protocol.request("unlock", request_id, txn="L", entity="x")
                )
                await load.recv()

        hammer_task = asyncio.ensure_future(hammer())
        latencies = []
        try:
            for request_id in range(1, PROBES + 1):
                started = time.perf_counter()
                await probe.send(protocol.request("status", request_id))
                reply = await probe.recv()
                latencies.append(time.perf_counter() - started)
                assert reply["status"] == "status"
        finally:
            running = False
            hammer_task.cancel()
            try:
                await hammer_task
            except asyncio.CancelledError:
                pass
        return latencies
    finally:
        await transport.close()


def _cell(report_obj) -> dict:
    return {
        "transactions": report_obj.transactions,
        "committed": report_obj.committed,
        "seconds": round(report_obj.wall_seconds, 4),
        "txn_per_s": round(
            report_obj.transactions / report_obj.wall_seconds, 1
        )
        if report_obj.wall_seconds
        else 0.0,
        "serializable": report_obj.serializable,
        "audit_complete": report_obj.audit_complete,
    }


def test_insight_overhead(benchmark):
    bare = _run(False)
    ring = FlightRecorder()
    instrumented = _run(ring)
    assert ring.seq > 0, "the ring must have seen the run's frames"

    # Contract 1: observability, not outcomes.
    assert instrumented.outcome_fingerprint == bare.outcome_fingerprint
    assert instrumented.history_fingerprint == bare.history_fingerprint
    replay = FlightRecorder()
    _run(replay)
    assert replay.to_jsonl() == ring.to_jsonl(), (
        "ring contents must be a pure function of workload and seed"
    )

    # Contract 2: the recorder fits the observability budget.
    ns_per_record = _record_ns()
    benchmark(lambda: _record_ns(2_000))
    recorder_overhead = (
        ring.seq * ns_per_record / (bare.wall_seconds * 1e9)
    )
    ratio = instrumented.wall_seconds / bare.wall_seconds

    # Contract 3: probes complete against a loaded site.
    latencies = asyncio.run(_probe_loaded_site())
    assert len(latencies) == PROBES
    probe_p50_ms = (stats.percentile(latencies, 50) or 0.0) * 1000.0
    probe_p95_ms = (stats.percentile(latencies, 95) or 0.0) * 1000.0

    hot = instrumented.contention[0] if instrumented.contention else {}
    report(
        "E18-insight-overhead",
        f"flight-recorder cost on {instrumented.transactions} "
        f"memory-transport transactions",
        [
            f"recorder off: {bare.wall_seconds:.3f} s",
            f"recorder on:  {instrumented.wall_seconds:.3f} s "
            f"({ratio:.2f}x, {ring.seq} records through a "
            f"{ring.capacity}-slot ring, {ring.dropped} overwritten)",
            f"one record: {ns_per_record:.0f} ns -> "
            f"{recorder_overhead:.4%} of the bare run "
            f"(budget {OVERHEAD_BUDGET:.0%})",
            f"status probe on a loaded site: p50 {probe_p50_ms:.3f} ms, "
            f"p95 {probe_p95_ms:.3f} ms over {PROBES} probes",
            "hottest entity: "
            + (
                f"{hot.get('entity')} ({hot.get('waits')} waits)"
                if hot
                else "none"
            ),
        ],
    )
    print(
        table(
            ("cell", "txn/s", "seconds"),
            [
                ("memory:bare", f"{_cell(bare)['txn_per_s']}", f"{bare.wall_seconds:.3f}"),
                (
                    "memory:recorder",
                    f"{_cell(instrumented)['txn_per_s']}",
                    f"{instrumented.wall_seconds:.3f}",
                ),
            ],
        )
    )
    write_bench(
        "BENCH_insight",
        params={
            "rounds": ROUNDS,
            "record_samples": RECORD_SAMPLES,
            "probes": PROBES,
            "overhead_budget": OVERHEAD_BUDGET,
        },
        samples={
            "memory:bare": _cell(bare),
            "memory:recorder": _cell(instrumented),
            "recorder": {
                "records_per_run": ring.seq,
                "ring_capacity": ring.capacity,
                "ring_dropped": ring.dropped,
                "ns_per_record": round(ns_per_record, 1),
                "overhead_fraction": round(recorder_overhead, 6),
                "wall_ratio": round(ratio, 3),
            },
            "probe": {
                "count": PROBES,
                "p50_ms": round(probe_p50_ms, 3),
                "p95_ms": round(probe_p95_ms, 3),
            },
        },
    )
    assert recorder_overhead < OVERHEAD_BUDGET
    assert bare.committed == bare.transactions
    assert instrumented.committed == instrumented.transactions
