"""E2 — Fig. 2 / Proposition 1: the geometric picture and the fast
centralized safety test.

Paper artifacts: the coordinated plane (Fig. 2) and the remark that
centralized (one-site) two-transaction safety is testable in
O(n log n) [5, 14]; our test is the strong-connectivity criterion,
O(k^2) over k shared entities.  The series shows near-polynomial growth
of the centralized test and 100% agreement between the graph criterion
and the geometric (curve-search) criterion on small instances.
"""

import random
import time

from repro.core import GeometricPicture, d_graph_of_total_orders
from repro.graphs import is_strongly_connected
from repro.workloads import figure_2_total_orders, random_total_order_pair

from _series import fitted_exponent, report, table


def test_fig2_picture(benchmark):
    _, t1, t2 = figure_2_total_orders()
    picture = GeometricPicture(t1, t2)
    curve = benchmark(picture.find_nonserializable_curve)
    assert curve is not None
    bits = picture.bits_of_curve(curve)
    report(
        "E2a-fig2",
        "Fig. 2 — the separating curve of the geometric picture",
        [
            f"t1 = {' '.join(map(str, t1))}",
            f"t2 = {' '.join(map(str, t2))}",
            f"rectangles: {sorted(picture.rectangles)}",
            f"curve bits: {bits} (mixed => non-serializable, Prop. 1)",
            "paper: h separates the x- and z-rectangles; reproduction "
            f"separates {sorted(e for e, b in bits.items() if b == 0)} from "
            f"{sorted(e for e, b in bits.items() if b == 1)}",
        ],
    )


def test_geometric_vs_graph_agreement(benchmark):
    def run():
        rng = random.Random(202)
        agreements = 0
        total = 0
        for _ in range(60):
            _, t1, t2 = random_total_order_pair(rng, entities=rng.randint(2, 4))
            picture = GeometricPicture(t1, t2)
            geometric_unsafe = picture.find_nonserializable_curve() is not None
            graph_unsafe = not is_strongly_connected(
                d_graph_of_total_orders(t1, t2)
            )
            agreements += geometric_unsafe == graph_unsafe
            total += 1
        return agreements, total

    agreements, total = benchmark(run)
    assert agreements == total
    report(
        "E2b-geometry-agreement",
        "Proposition 1 — geometric vs graph criterion (centralized)",
        [f"agreement: {agreements}/{total} random totally ordered pairs"],
    )


def test_centralized_test_scaling(benchmark):
    sizes = [8, 16, 32, 64, 128, 256]
    rows = []
    times = []
    for entities in sizes:
        rng = random.Random(entities)
        _, t1, t2 = random_total_order_pair(rng, entities=entities)
        start = time.perf_counter()
        for _ in range(3):
            is_strongly_connected(d_graph_of_total_orders(t1, t2))
        elapsed = (time.perf_counter() - start) / 3
        times.append(elapsed)
        rows.append((6 * entities, f"{elapsed * 1e3:.2f} ms"))
    exponent = fitted_exponent([r[0] for r in rows], times)

    # The timed body for pytest-benchmark: one mid-size decision.
    rng = random.Random(99)
    _, t1, t2 = random_total_order_pair(rng, entities=64)
    benchmark(lambda: is_strongly_connected(d_graph_of_total_orders(t1, t2)))

    report(
        "E2c-centralized-scaling",
        "centralized safety test scaling (steps n vs time)",
        table(["n steps", "time"], rows)
        + [
            f"fitted growth exponent: {exponent:.2f} "
            "(paper: polynomial, O(n log n) attainable; ours O(n^2) worst)"
        ],
    )
    assert exponent < 3.0
