"""Shared reporting helper for the benchmark harness.

Each experiment prints the series the paper's claim concerns (and the
reproduction's measured shape) to stdout *and* persists it under
``benchmarks/results/`` so EXPERIMENTS.md can be regenerated from a run.
"""

from __future__ import annotations

import json
import os
import pathlib
from collections.abc import Sequence

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def metrics_snapshot(stats=None, cache=None, *, decisions=False) -> dict:
    """An observability snapshot to embed into a result row: per-phase
    wall seconds (and error counts) from *stats* (a
    :class:`~repro.service.ServiceStats`), the hit ratio from *cache*
    (a :class:`~repro.service.VerdictCache`), and — with *decisions* —
    the process-wide ``repro_decisions_total`` counter series (which
    decision-ladder rungs fired, cumulative for this process)."""
    snapshot: dict = {}
    if stats is not None:
        snapshot["phase_seconds"] = {
            name: round(seconds, 6)
            for name, seconds in sorted(stats.phase_seconds.items())
        }
        if stats.phase_errors:
            snapshot["phase_errors"] = dict(sorted(stats.phase_errors.items()))
    if cache is not None:
        snapshot["cache_hit_rate"] = round(cache.hit_rate(), 4)
    if decisions:
        from repro.obs import metrics

        dump = metrics.REGISTRY.to_dict().get("repro_decisions_total", {})
        snapshot["decisions"] = dump.get("series", {})
    return snapshot


def write_json(name: str, payload: dict) -> pathlib.Path:
    """Merge *payload* into ``results/<name>.json`` (machine-readable
    perf trajectory; keys from earlier calls in the same run survive).

    Returns the path written, so experiments can mention it in their
    text output.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    merged: dict = {}
    if path.exists():
        try:
            merged = json.loads(path.read_text())
        except (OSError, ValueError):
            merged = {}
    merged.update(payload)
    path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    return path


def write_bench(
    name: str, *, params: dict, samples: dict, metrics: dict | None = None
) -> pathlib.Path:
    """Persist a benchmark result in the standard envelope.

    Every ``BENCH_*.json`` file has the same four-part shape: ``name``,
    ``params`` (the knobs that produced the run — seeds, sweep sizes,
    budgets), ``samples`` (the measured series, keyed by sample name),
    an optional ``metrics`` snapshot (:func:`metrics_snapshot` or a
    registry excerpt), and the host ``cpu_count`` (so parallelism
    numbers can be read honestly on single-CPU CI hosts).

    Two experiments writing into the same file (E8's agreement and
    scaling runs both land in ``BENCH_multi.json``) merge: the
    ``params``/``samples``/``metrics`` mappings are combined key-wise,
    later calls winning on conflicts.
    """
    path = RESULTS_DIR / f"{name}.json"
    merged: dict = {}
    if path.exists():
        try:
            merged = json.loads(path.read_text())
        except (OSError, ValueError):
            merged = {}
    envelope = {
        "name": name,
        "params": {**merged.get("params", {}), **params},
        "samples": {**merged.get("samples", {}), **samples},
        "cpu_count": os.cpu_count() or 1,
    }
    combined_metrics = {**merged.get("metrics", {}), **(metrics or {})}
    if combined_metrics:
        envelope["metrics"] = combined_metrics
    RESULTS_DIR.mkdir(exist_ok=True)
    path.write_text(json.dumps(envelope, indent=2, sort_keys=True) + "\n")
    return path


def report(experiment: str, title: str, lines: Sequence[str]) -> None:
    """Print a series block and persist it to results/<experiment>.txt."""
    block = [f"[{experiment}] {title}"] + [f"  {line}" for line in lines]
    text = "\n".join(block)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n")


def table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> list[str]:
    """Fixed-width table lines."""
    widths = [
        max(len(str(header)), *(len(str(row[i])) for row in rows))
        if rows
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    def fmt(cells):
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))

    return [fmt(headers)] + [fmt(row) for row in rows]


def fitted_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) against log(x): the growth exponent
    of a power-law-ish series."""
    import math

    pairs = [
        (math.log(x), math.log(y))
        for x, y in zip(xs, ys)
        if x > 0 and y > 0
    ]
    n = len(pairs)
    mean_x = sum(x for x, _ in pairs) / n
    mean_y = sum(y for _, y in pairs) / n
    num = sum((x - mean_x) * (y - mean_y) for x, y in pairs)
    den = sum((x - mean_x) ** 2 for x, _ in pairs)
    return num / den
