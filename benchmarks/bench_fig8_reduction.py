"""E7a — Figs. 8-9: the Theorem 3 reduction on the paper's running
example.

Paper artifacts: the digraph D(T1(F), T2(F)) for
F = (x1 ∨ x2 ∨ x3) ∧ (¬x1 ∨ x2 ∨ ¬x3), its dominator/assignment table,
and the completed transactions.  The series regenerates the table and
confirms: unsafe ⟺ satisfiable, with the reduction's D matching the
designed skeleton exactly.
"""

from repro.core import decide_safety_exact
from repro.core.reduction import reduce_cnf_to_pair
from repro.graphs import dominators, is_strongly_connected
from repro.logic import all_models, is_satisfiable
from repro.workloads import figure_8_formula

from _series import report, table


def test_fig8_reduction(benchmark):
    formula = figure_8_formula()
    artifacts = benchmark(lambda: reduce_cnf_to_pair(figure_8_formula()))
    verdict = decide_safety_exact(artifacts.first, artifacts.second)
    assert not verdict.safe and is_satisfiable(formula)

    rows = []
    for model in all_models(formula):
        dominator = artifacts.dominator_for_assignment(model)
        rows.append(
            (
                " ".join(
                    f"{var}={int(val)}" for var, val in sorted(model.items())
                ),
                "desirable" if artifacts.is_desirable(dominator) else "-",
            )
        )
    total_dominators = sum(1 for _ in dominators(artifacts.d_expected))
    report(
        "E7a-fig8",
        "Figs. 8-9 — the reduction on F = (x1|x2|x3)&(~x1|x2|~x3)",
        [
            f"entities: {len(artifacts.database)} "
            f"(upper {len(artifacts.upper_cycle)}, middle "
            f"{len(artifacts.middle_nodes)}, lower "
            f"{len(artifacts.lower_cycle)}), one per site",
            f"steps per transaction: {len(artifacts.first)}",
            f"D(T1(F), T2(F)) strongly connected: "
            f"{is_strongly_connected(artifacts.d_expected)}",
            f"dominators of D: {total_dominators} "
            f"(= 2^{len(artifacts.middle_scc_units())} middle units)",
            "satisfying assignments -> desirable dominators (Fig. 8 table):",
            *table(["assignment", "dominator"], rows),
            f"pair unsafe: {not verdict.safe}  |  F satisfiable: "
            f"{is_satisfiable(formula)}",
        ],
    )
