"""The safety workbench: analyzing systems written in the text DSL.

Shows the tooling path a downstream user takes: describe a system in
the plain-text format of :mod:`repro.dsl` (see ``examples/systems/``),
parse it, decide safety, render the conflict digraph, and — when the
verdict is unsafe — replay the certificate on the simulator.  The same
flows are available non-programmatically via ``python -m repro``.

Run:  python examples/safety_workbench.py
"""

import pathlib

from repro.core import d_graph, decide_safety
from repro.dsl import parse_system
from repro.sim import ReplayDriver, run_once
from repro.viz import digraph_to_dot

SYSTEMS_DIR = pathlib.Path(__file__).parent / "systems"


def analyze(path: pathlib.Path) -> None:
    print("=" * 70)
    print(path.name)
    print("=" * 70)
    system = parse_system(path.read_text())
    verdict = decide_safety(system)
    print(f"transactions: {', '.join(system.names)}")
    print(f"safe: {verdict.safe}  via {verdict.method}")
    print(f"      {verdict.detail}")
    if len(system) == 2:
        graph = d_graph(*system.pair())
        arcs = ", ".join(f"{a}->{b}" for a, b in graph.arcs()) or "(none)"
        print(f"D(T1, T2) arcs: {arcs}")
    if not verdict.safe and verdict.witness is not None:
        print(f"witness: {verdict.witness}")
        result = run_once(system, ReplayDriver(verdict.witness))
        print(f"simulator replay: {result.outcome}")
        if verdict.certificate is not None:
            dominator = sorted(verdict.certificate.dominator)
            print(f"dominator used: {dominator}")
            print("DOT (dominator highlighted):")
            print(
                digraph_to_dot(
                    d_graph(*system.pair()),
                    name="D",
                    highlight=verdict.certificate.dominator,
                )
            )
    print()


def main() -> None:
    for name in ("fig3_like.sys", "transfer_2pl.sys", "centralized_pair.sys"):
        analyze(SYSTEMS_DIR / name)
    print("equivalent CLI invocations:")
    print("  python -m repro analyze examples/systems/fig3_like.sys --certificate")
    print("  python -m repro simulate examples/systems/transfer_2pl.sys")
    print("  python -m repro plane examples/systems/centralized_pair.sys")
    print('  python -m repro reduce "(x1 | x2 | x3) & (~x1 | x2 | ~x3)"')


if __name__ == "__main__":
    main()
