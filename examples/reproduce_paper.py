"""Reproduce every result of the paper in one run.

Walks the paper section by section — model, geometric method, Theorem 1,
Theorem 2 with certificates, Fig. 5, Theorem 3, Proposition 2, policies —
executing each claim and printing a PASS/FAIL checklist.  This is the
one-command answer to "does the reproduction hold?"

Run:  python examples/reproduce_paper.py
"""

import random

from repro.core import (
    GeometricPicture,
    d_graph,
    d_graph_of_total_orders,
    decide_safety,
    decide_safety_exact,
    decide_safety_exhaustive,
    decide_safety_multi,
    is_safe_sufficient,
    is_safe_two_site,
)
from repro.core.closure import ClosureContradiction, close_with_respect_to
from repro.core.reduction import decide_satisfiability_via_safety, reduce_cnf_to_pair
from repro.graphs import is_strongly_connected
from repro.logic import CnfFormula, is_satisfiable
from repro.policies import two_phase_pair_is_safe
from repro.sim import ReplayDriver, estimate_violation_rate, run_once
from repro.workloads import (
    figure_1,
    figure_2_total_orders,
    figure_3,
    figure_3_extension_pairs,
    figure_5,
    figure_8_formula,
    random_pair_system,
)

RESULTS: list[tuple[str, bool]] = []


def check(label: str, ok: bool) -> None:
    RESULTS.append((label, ok))
    print(f"  [{'PASS' if ok else 'FAIL'}] {label}")


def main() -> None:
    rng = random.Random(1982)

    print("§2/§3 — the model and the geometric method")
    system, t1, t2 = figure_2_total_orders()
    picture = GeometricPicture(t1, t2)
    curve = picture.find_nonserializable_curve()
    check("Fig. 2: separating curve exists (Proposition 1)", curve is not None)
    check(
        "Fig. 2: curve separates x from z",
        curve is not None
        and picture.bits_of_curve(curve)["x"]
        != picture.bits_of_curve(curve)["z"],
    )
    agree = all(
        (GeometricPicture(u1, u2).find_nonserializable_curve() is None)
        == is_strongly_connected(d_graph_of_total_orders(u1, u2))
        for u1, u2 in [
            tuple(
                tx.a_linear_extension()
                for tx in random_pair_system(
                    rng, sites=1, entities=3, shared=3
                ).transactions
            )
            for _ in range(20)
        ]
    )
    check("centralized: safe ⟺ D(t1,t2) strongly connected (20 random)", agree)

    print("\n§3 — Theorem 1 (sufficiency, any sites)")
    ok = True
    for _ in range(30):
        pair_system = random_pair_system(
            rng, sites=rng.randint(3, 5), entities=3, shared=3
        )
        first, second = pair_system.pair()
        if is_safe_sufficient(first, second) is True:
            ok &= decide_safety_exact(first, second).safe
    check("D strongly connected ⇒ safe (30 random multi-site pairs)", ok)

    print("\n§4 — Theorem 2 (two sites: exact + constructive)")
    fig1 = figure_1()
    verdict1 = decide_safety(fig1)
    check("Fig. 1 pair decided unsafe", not verdict1.safe)
    check(
        "Fig. 1 exhaustive ground truth agrees",
        not decide_safety_exhaustive(fig1).safe,
    )
    check(
        "Fig. 1 certificate verifies independently",
        verdict1.certificate is not None and verdict1.certificate.verify(),
    )
    check(
        "Fig. 1 certificate replays to a violation on the simulator",
        run_once(fig1, ReplayDriver(verdict1.witness)).outcome
        == "non-serializable",
    )
    fig3 = figure_3()
    safe_pair, unsafe_pair = figure_3_extension_pairs()
    check("Fig. 3 system unsafe", not decide_safety(fig3).safe)
    check(
        "Fig. 3c extension pair safe, 3d unsafe",
        is_strongly_connected(d_graph_of_total_orders(*safe_pair))
        and not is_strongly_connected(d_graph_of_total_orders(*unsafe_pair)),
    )
    ok = True
    for _ in range(40):
        two_site = random_pair_system(
            rng, sites=2, entities=rng.randint(2, 4), shared=rng.randint(2, 3)
        )
        first, second = two_site.pair()
        ok &= is_safe_two_site(first, second) == (
            decide_safety_exhaustive(two_site).safe
        )
    check("Theorem 2 ⟺ exhaustive on 40 random two-site systems", ok)

    print("\n§4 — Fig. 5 (the gap beyond two sites)")
    fig5 = figure_5()
    first5, second5 = fig5.pair()
    check(
        "Fig. 5: D not strongly connected",
        not is_strongly_connected(d_graph(first5, second5)),
    )
    check("Fig. 5: system nevertheless safe", decide_safety_exact(first5, second5).safe)
    try:
        close_with_respect_to(first5, second5, {"x1", "x2"})
        contradiction = False
    except ClosureContradiction as exc:
        contradiction = "Ux1" in str(exc) and "Ux2" in str(exc)
    check("Fig. 5: closure forces the Ux1/Ux2 cycle", bool(contradiction))
    check(
        "Fig. 5: never mis-serializes in 300 simulated runs",
        estimate_violation_rate(fig5, runs=300, seed=5)["non-serializable"]
        == 0.0,
    )

    print("\n§5 — Theorem 3 (coNP-completeness)")
    formula = figure_8_formula()
    artifacts = reduce_cnf_to_pair(formula)
    check(
        "Fig. 8 reduction: D(T1(F), T2(F)) equals the designed skeleton",
        set(d_graph(artifacts.first, artifacts.second).arcs())
        == set(artifacts.d_expected.arcs()),
    )
    check(
        "Fig. 8 formula satisfiable ⇒ pair unsafe",
        is_satisfiable(formula)
        and not decide_safety_exact(artifacts.first, artifacts.second).safe,
    )
    unsat = CnfFormula.parse(
        "(p | y1) & (p | ~y1) & (q | y2) & (q | ~y2) & (~p | ~q)"
    )
    check(
        "UNSAT formula ⇒ pair safe",
        not is_satisfiable(unsat)
        and not decide_satisfiability_via_safety(unsat),
    )

    print("\n§6 — many transactions and policies")
    check_triangle()
    ok = True
    for _ in range(15):
        tp = random_pair_system(
            rng, sites=rng.randint(1, 4), entities=3, shared=3, two_phase=True
        )
        ok &= two_phase_pair_is_safe(*tp.pair())
    check("distributed 2PL safe (15 random pairs, any sites)", ok)

    print("\n" + "=" * 60)
    passed = sum(ok for _, ok in RESULTS)
    print(f"{passed}/{len(RESULTS)} checks passed")
    if passed != len(RESULTS):
        raise SystemExit(1)


def check_triangle() -> None:
    from repro.core import (
        DistributedDatabase,
        TransactionBuilder,
        TransactionSystem,
    )

    db = DistributedDatabase.single_site(["a", "b", "c"])
    transactions = []
    for name, entities in (
        ("T1", ["a", "b"]),
        ("T2", ["b", "c"]),
        ("T3", ["c", "a"]),
    ):
        builder = TransactionBuilder(name, db)
        previous = None
        for entity in entities:
            for step in builder.access(entity):
                if previous is not None:
                    builder.precede(previous, step)
                previous = step
        transactions.append(builder.build())
    triangle = TransactionSystem(transactions)
    pairwise_safe = all(
        decide_safety(
            TransactionSystem([a, b]), want_certificate=False
        ).safe
        for a, b in (
            (transactions[0], transactions[1]),
            (transactions[1], transactions[2]),
            (transactions[0], transactions[2]),
        )
    )
    verdict = decide_safety_multi(triangle)
    exhaustive = decide_safety_exhaustive(triangle)
    check(
        "Proposition 2 catches the pairwise-safe / globally-unsafe triangle",
        pairwise_safe and not verdict.safe and not exhaustive.safe,
    )


if __name__ == "__main__":
    main()
