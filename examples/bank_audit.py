"""A distributed bank: auditing the locking of a transfer workload.

Scenario: a bank keeps checking accounts at the city branch (site 1)
and savings accounts at the regional data center (site 2).  Two
operations run concurrently:

* ``transfer``  — move money from checking to savings;
* ``statement`` — read both balances for a customer statement.

Version A locks each account only around its own update ("short locks",
not two-phase).  The safety analyzer proves it unsafe and exhibits a
schedule in which the statement sees the money *in neither account* (or
in both).  Version B wraps the same work in distributed two-phase
locking; the analyzer proves it safe, and the simulator confirms that
thousands of random interleavings never mis-serialize.

Run:  python examples/bank_audit.py
"""

from repro import (
    DistributedDatabase,
    TransactionBuilder,
    TransactionSystem,
    decide_safety,
)
from repro.policies import is_two_phase, two_phase_completion
from repro.sim import ReplayDriver, estimate_violation_rate, run_once


def build_bank() -> DistributedDatabase:
    return DistributedDatabase(
        {"checking": 1, "savings": 2}, sites=2
    )


def short_lock_workload(db: DistributedDatabase) -> TransactionSystem:
    """Version A: each entity locked only around its own update."""
    transfer = TransactionBuilder("transfer", db)
    _, _, checking_done = transfer.access("checking")  # debit
    savings_start, _, _ = transfer.access("savings")   # credit
    transfer.precede(checking_done, savings_start)     # debit first

    statement = TransactionBuilder("statement", db)
    _, _, savings_done = statement.access("savings")
    checking_start, _, _ = statement.access("checking")
    statement.precede(savings_done, checking_start)

    return TransactionSystem([transfer.build(), statement.build()])


def two_phase_workload(db: DistributedDatabase) -> TransactionSystem:
    """Version B: the same logic under distributed two-phase locking."""
    loose = short_lock_workload(db)
    tightened = []
    for tx in loose.transactions:
        # two_phase_completion would fail here (unlock precedes lock by
        # design in version A), so rebuild with both locks up front.
        builder = TransactionBuilder(tx.name, db)
        lock_c = builder.lock("checking")
        lock_s = builder.lock("savings")
        builder.update("checking")
        builder.update("savings")
        unlock_c = builder.unlock("checking")
        unlock_s = builder.unlock("savings")
        builder.precede(lock_c, lock_s)   # ordered acquisition: no deadlock
        builder.precede(lock_c, unlock_s)
        builder.precede(lock_s, unlock_c)
        tightened.append(builder.build())
    return TransactionSystem(tightened)


def main() -> None:
    db = build_bank()

    print("=== Version A: short locks ===")
    version_a = short_lock_workload(db)
    verdict_a = decide_safety(version_a)
    print(f"safe: {verdict_a.safe}  ({verdict_a.detail})")
    if not verdict_a.safe:
        print("\nthe offending interleaving:")
        print(f"  {verdict_a.witness}")
        print("\nreplayed on the lock-manager simulator:")
        result = run_once(version_a, ReplayDriver(verdict_a.witness))
        print(f"  outcome: {result.outcome}")
        print("\nMonte-Carlo rate under random interleaving (1000 runs):")
        rates = estimate_violation_rate(version_a, runs=1000, seed=42)
        for outcome, rate in sorted(rates.items()):
            print(f"  {outcome:>18}: {rate:6.1%}")

    print("\n=== Version B: distributed two-phase locking ===")
    version_b = two_phase_workload(db)
    for tx in version_b.transactions:
        print(f"  {tx.name} two-phase: {is_two_phase(tx)}")
    verdict_b = decide_safety(version_b)
    print(f"safe: {verdict_b.safe}  ({verdict_b.detail})")
    rates = estimate_violation_rate(version_b, runs=1000, seed=43)
    print("Monte-Carlo rate under random interleaving (1000 runs):")
    for outcome, rate in sorted(rates.items()):
        print(f"  {outcome:>18}: {rate:6.1%}")

    print("\n=== What the violation looks like as data ===")
    # Give the updates concrete arithmetic and execute the offending
    # schedule: its final balances match NO serial execution.
    from repro.sim import AffineInterpretation

    interp = AffineInterpretation(version_a, seed=7)
    corrupted = interp.run_schedule(verdict_a.witness)
    print(f"interleaved final state : {corrupted}")
    for order, state in interp.serial_states().items():
        print(f"serial {' -> '.join(order):<24}: {state}")
    print(
        "matching serial order   : "
        f"{interp.matching_serial_order(verdict_a.witness)}"
    )

    print("\n=== Fixing version A mechanically ===")
    # A transaction whose unlock already precedes a lock cannot be made
    # two-phase by strengthening alone; the analyzer reports it:
    from repro.errors import TransactionError

    for tx in version_a.transactions:
        try:
            two_phase_completion(tx)
            print(f"  {tx.name}: strengthened to two-phase")
        except TransactionError as exc:
            print(f"  {tx.name}: cannot strengthen ({exc})")


if __name__ == "__main__":
    main()
