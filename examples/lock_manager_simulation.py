"""Running paper systems on the distributed lock-manager simulator.

* Fig. 1's unsafe pair mis-serializes under most random interleavings;
* Fig. 5's four-site system (safe despite a disconnected D) never does —
  though it deadlocks often, which is exactly the open problem the paper
  flags in its closing discussion;
* the unsafeness certificate of a Theorem 2 analysis replays on the
  engine, step by step, into a provably non-serializable execution.

Run:  python examples/lock_manager_simulation.py
"""

from repro import decide_safety
from repro.sim import (
    RandomDriver,
    ReplayDriver,
    estimate_violation_rate,
    run_once,
)
from repro.workloads import figure_1, figure_5


def report(name, system, runs=2000, seed=0) -> None:
    rates = estimate_violation_rate(system, runs=runs, seed=seed)
    print(f"{name}  ({runs} random runs)")
    for outcome in ("serializable", "non-serializable", "deadlock"):
        print(f"  {outcome:>18}: {rates[outcome]:6.1%}")


def main() -> None:
    print("=" * 70)
    print("Monte-Carlo execution of the paper's systems")
    print("=" * 70)
    report("Fig. 1 (unsafe two-site pair)", figure_1(), seed=1)
    print()
    report("Fig. 5 (safe four-site pair) ", figure_5(), seed=2)
    print()
    print("note: the safe system never mis-serializes; its high deadlock")
    print("rate illustrates why the paper leaves distributed deadlock as")
    print("an open problem distinct from safety.")

    print()
    print("=" * 70)
    print("Replaying a Theorem 2 certificate")
    print("=" * 70)
    system = figure_1()
    verdict = decide_safety(system)
    print(f"static analysis: safe={verdict.safe} via {verdict.method}")
    result = run_once(system, ReplayDriver(verdict.witness))
    print(f"engine outcome: {result.outcome}")
    print("execution history:")
    for event in result.history.events:
        print(f"  {event}")
    print(f"equivalent serial order: {result.history.equivalent_serial_order()}")

    print()
    print("=" * 70)
    print("One random run, fully traced")
    print("=" * 70)
    result = run_once(system, RandomDriver(7))
    print(f"outcome: {result.outcome}")
    for site, events in sorted(result.history.per_site().items()):
        print(f"  site {site}: {' '.join(str(e.step) for e in events)}")


if __name__ == "__main__":
    main()
