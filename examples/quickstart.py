"""Quickstart: is this pair of distributed locked transactions safe?

Builds the canonical two-site example, decides safety with the paper's
Theorem 2 (strong connectivity of D(T1, T2)), and prints the certificate
of unsafeness — an explicit non-serializable schedule.

Run:  python examples/quickstart.py
"""

from repro import (
    DistributedDatabase,
    TransactionBuilder,
    TransactionSystem,
    decide_safety,
)
from repro.core import d_graph
from repro.viz import digraph_to_dot


def main() -> None:
    # A database distributed over two sites.
    db = DistributedDatabase({"accounts": 1, "ledger": 1, "audit": 2})

    # T1 updates accounts, then (strictly later) the audit table.
    t1 = TransactionBuilder("T1", db)
    _, _, done_accounts = t1.access("accounts")
    start_audit, _, _ = t1.access("audit")
    t1.precede(done_accounts, start_audit)

    # T2 goes the other way: audit first, then accounts.
    t2 = TransactionBuilder("T2", db)
    _, _, done_audit = t2.access("audit")
    start_accounts, _, _ = t2.access("accounts")
    t2.precede(done_audit, start_accounts)

    system = TransactionSystem([t1.build(), t2.build()])
    verdict = decide_safety(system)

    print(f"safe: {verdict.safe}   (method: {verdict.method})")
    print(f"why:  {verdict.detail}")
    print()
    if not verdict.safe:
        print(verdict.certificate.describe())
        print()
        print("replaying that schedule step by step would interleave the")
        print("two transactions so that T1 sees the accounts before T2")
        print("but the audit after T2 — no serial order explains both.")
    print()
    print("D(T1, T2) in DOT form (render with graphviz):")
    print(digraph_to_dot(d_graph(*system.pair()), name="D(T1,T2)"))


if __name__ == "__main__":
    main()
