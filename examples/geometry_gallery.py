"""The geometric method in ASCII — the paper's Fig. 2 in a terminal.

Draws the coordinated plane of two totally ordered transactions, the
forbidden rectangles, the two serial curves, and a non-serializable
curve separating two rectangles (Proposition 1).  Then shows the Fig. 3
phenomenon: two extensions of the same distributed pair, one plane
safe, the other unsafe.

Run:  python examples/geometry_gallery.py
"""

from repro.core import GeometricPicture, d_graph_of_total_orders
from repro.graphs import is_strongly_connected
from repro.viz import render_plane
from repro.workloads import figure_2_total_orders, figure_3_extension_pairs


def main() -> None:
    print("=" * 70)
    print("Fig. 2: the coordinated plane of two total orders")
    print("=" * 70)
    _, t1, t2 = figure_2_total_orders()
    picture = GeometricPicture(t1, t2)

    print("\nThe serial schedule t1-then-t2 passes below every rectangle:\n")
    serial = picture.curve_of([1] * picture.m1 + [2] * picture.m2)
    print(render_plane(picture, serial))

    print("\nA schedule separating the x- and z-rectangles — by")
    print("Proposition 1, NOT serializable:\n")
    separating = picture.find_nonserializable_curve()
    print(render_plane(picture, separating))
    bits = picture.bits_of_curve(separating)
    below = [e for e, b in bits.items() if b == 0]
    above = [e for e, b in bits.items() if b == 1]
    print(f"\nrectangles below the curve (t1 first): {sorted(below)}")
    print(f"rectangles above the curve (t2 first): {sorted(above)}")

    print()
    print("=" * 70)
    print("Fig. 3: the same distributed pair, two different extension")
    print("pairs — geometry flips between safe and unsafe")
    print("=" * 70)
    safe_pair, unsafe_pair = figure_3_extension_pairs()
    for label, (e1, e2) in (("SAFE", safe_pair), ("UNSAFE", unsafe_pair)):
        connected = is_strongly_connected(d_graph_of_total_orders(e1, e2))
        plane = GeometricPicture(e1, e2)
        curve = plane.find_nonserializable_curve()
        print(f"\n--- extension pair ({label}) ---")
        print(f"t1 = {' '.join(map(str, e1))}")
        print(f"t2 = {' '.join(map(str, e2))}")
        print(f"D(t1, t2) strongly connected: {connected}")
        print(render_plane(plane, curve))
        print(
            "separating curve exists"
            if curve is not None
            else "no separating curve exists"
        )


if __name__ == "__main__":
    main()
