"""Theorem 3 live: turning SAT into distributed-locking (un)safety.

Reproduces the paper's Figs. 8-9 running example,

    F = (x1 | x2 | x3) & (~x1 | x2 | ~x3),

builds the two transactions T1(F), T2(F) (every entity on its own
site), prints the dominator/assignment table of Fig. 8, and shows that
the pair is unsafe precisely because F is satisfiable — then does the
same for an unsatisfiable formula and watches safety flip.

Run:  python examples/sat_reduction_demo.py
"""

from repro.core import decide_safety_exact
from repro.core.reduction import reduce_cnf_to_pair
from repro.logic import CnfFormula, all_models, is_satisfiable
from repro.workloads import figure_8_formula


def dominator_table(artifacts) -> None:
    """Fig. 8's table: each satisfying assignment's dominator."""
    formula = artifacts.formula
    print(f"  {'assignment':<30} desirable dominator (middle part)")
    shown = 0
    for model in all_models(formula, limit=8):
        dominator = artifacts.dominator_for_assignment(model)
        middles = sorted(
            node for node in dominator if node in set(artifacts.middle_nodes)
        )
        bits = " ".join(
            f"{var}={int(val)}" for var, val in sorted(model.items())
        )
        print(f"  {bits:<30} {{{', '.join(middles)}}}")
        shown += 1
    if not shown:
        print("  (no satisfying assignments)")


def analyze(formula: CnfFormula) -> None:
    print(f"F = {formula}")
    print(f"satisfiable (DPLL): {is_satisfiable(formula)}")
    artifacts = reduce_cnf_to_pair(formula)
    db = artifacts.database
    print(
        f"reduction: {len(db)} entities over {db.sites} sites, "
        f"{len(artifacts.first)} steps per transaction"
    )
    print(
        f"upper cycle {len(artifacts.upper_cycle)} nodes | middle row "
        f"{len(artifacts.middle_nodes)} | lower cycle "
        f"{len(artifacts.lower_cycle)}"
    )
    print("\ndominators as truth assignments (Fig. 8):")
    dominator_table(artifacts)
    verdict = decide_safety_exact(artifacts.first, artifacts.second)
    print(f"\nsafety of {{T1(F), T2(F)}}: {'SAFE' if verdict.safe else 'UNSAFE'}")
    print(f"  ({verdict.detail})")
    if not verdict.safe:
        print("  first steps of the non-serializable witness schedule:")
        head = " ".join(str(item) for item in verdict.witness.steps[:12])
        print(f"  {head} ...")
    print()


def main() -> None:
    print("=" * 70)
    print("The paper's running example (satisfiable)")
    print("=" * 70)
    analyze(figure_8_formula())

    print("=" * 70)
    print("An unsatisfiable formula in restricted form")
    print("=" * 70)
    analyze(
        CnfFormula.parse(
            "(p | y1) & (p | ~y1) & (q | y2) & (q | ~y2) & (~p | ~q)"
        )
    )

    print("Theorem 3 in one line: deciding the safety of two distributed")
    print("transactions is coNP-complete — unsafe certificates are exactly")
    print("the satisfying assignments of the encoded formula.")


if __name__ == "__main__":
    main()
