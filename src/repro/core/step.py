"""Transaction steps, paper §2.

Every step acts on one entity and is one of three kinds:

* ``UPDATE`` — the indivisible read-then-write the paper calls an update;
* ``LOCK`` / ``UNLOCK`` — the special steps that set/clear the entity's
  lock bit.

Steps are frozen values; the ``seq`` field disambiguates multiple update
steps on the same entity within one transaction.  The conventional
renderings match the paper's: ``Lx``, ``Ux`` and bare ``x`` for updates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class StepKind(enum.Enum):
    """The three step semantics of the model."""

    LOCK = "L"
    UNLOCK = "U"
    UPDATE = "W"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, order=True)
class Step:
    """One step of a transaction.

    ``seq`` counts same-kind steps on the same entity within the owning
    transaction (always 0 for locks/unlocks, which are unique per entity
    by the paper's constraints).
    """

    kind: StepKind
    entity: str
    seq: int = 0

    def __str__(self) -> str:
        if self.kind is StepKind.LOCK:
            return f"L{self.entity}"
        if self.kind is StepKind.UNLOCK:
            return f"U{self.entity}"
        if self.seq:
            return f"{self.entity}#{self.seq}"
        return self.entity

    __repr__ = __str__

    @property
    def is_lock(self) -> bool:
        return self.kind is StepKind.LOCK

    @property
    def is_unlock(self) -> bool:
        return self.kind is StepKind.UNLOCK

    @property
    def is_update(self) -> bool:
        return self.kind is StepKind.UPDATE


def lock(entity: str) -> Step:
    """``L entity`` — acquire exclusive access."""
    return Step(StepKind.LOCK, entity)


def unlock(entity: str) -> Step:
    """``U entity`` — give up exclusive access."""
    return Step(StepKind.UNLOCK, entity)


def update(entity: str, seq: int = 0) -> Step:
    """An update step on *entity* (the paper's ``temp := x; x := f(...)``)."""
    return Step(StepKind.UPDATE, entity, seq)
