"""The coNP-completeness reduction of Theorem 3 (§5, Figs. 8-9).

Given a CNF formula ``F`` in the paper's restricted form (clauses of at
most three literals; each variable at most twice unnegated, at most once
negated), build two locked transactions ``T1(F)``, ``T2(F)`` — every
entity on its own site — such that

    ``{T1(F), T2(F)}`` is **unsafe**  ⟺  ``F`` is **satisfiable**.

Construction (step I — the skeleton):  the target digraph ``D`` has

1. an **upper cycle** through ``u`` and one node ``c_ij`` per literal
   occurrence (jth literal of the ith clause), with dummy nodes
   separating the named ones;
2. a **middle row**: nodes ``w_k`` and ``w'_k`` per variable, direct
   descendants of ``u``; when the variable appears twice unnegated,
   ``w_k`` becomes *two* copies joined by arcs both ways (one copy the
   ``u``-descendant);
3. a **lower cycle** through ``v`` and nodes ``z_k``, ``z'_k`` (variable
   and negation), dummy-separated; ``v`` is a direct descendant of every
   middle node that descends directly from ``u``.

The skeleton transactions realize exactly these arcs via Definition 1:
for each arc ``(a, b)`` of ``D``, ``La`` precedes ``Ub`` in ``T1`` and
``Lb`` precedes ``Ua`` in ``T2`` — plus each entity's own
lock–update–unlock chain.  Because every cross precedence runs from a
lock to an unlock, no transitive composition can manufacture additional
``D`` arcs, so ``D(T1(F), T2(F)) = D`` exactly (checked at build time).

A **dominator** of ``D`` is the upper cycle plus any subset of the
middle-row SCCs, and encodes the truth assignment "variable k is true
iff ``w_k`` is in, its negation true iff ``w'_k`` is in" (Fig. 8's
table).  Step II adds *half-arc* gadget precedences — chosen so that
``D`` is unchanged — that kill the undesirable dominators via the
closure mechanism of Definition 3:

(a) per variable ``k``:  ``Lz_k <1 Uw_k``, ``Lz'_k <1 Uw'_k`` and
    ``Lw_k <2 Uz'_k``, ``Lw'_k <2 Uz_k`` — a dominator containing both
    ``w_k`` and ``w'_k`` forces ``Uw_k`` to both precede and follow
    ``Uw'_k`` in any closed extension: contradiction;

(b) per positive occurrence of variable ``k`` as literal ``j`` of
    clause ``i``:  ``Lw_k <1 Uc_ij`` and ``Lc_{i,(j+1) mod |clause|} <2
    Uw_k`` (one ``w_k`` copy per distinct occurrence) — a dominator
    containing no middle node of clause ``i`` forces a length-``|i|``
    cycle among the ``Uc_ij`` in ``T1``: contradiction;

(c) per negative occurrence: as (b) with ``w'_k``.

Satisfying assignments survive as realizable dominators, whose
certificates of unsafeness Corollary 2 constructs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ReductionError
from ..graphs import DiGraph
from ..logic.cnf import CnfFormula, Literal
from .dgraph import d_graph
from .entity import DistributedDatabase
from .step import Step, StepKind
from .transaction import Transaction


@dataclass
class ReductionArtifacts:
    """Everything the Theorem 3 reduction produces, with the bookkeeping
    needed to translate between dominators and truth assignments."""

    formula: CnfFormula
    database: DistributedDatabase
    first: Transaction
    second: Transaction
    d_expected: DiGraph
    upper_cycle: list[str]
    lower_cycle: list[str]
    middle_nodes: list[str]
    # Per variable: the designated w copy, all w copies, and w'.
    w_of: dict[str, str] = field(default_factory=dict)
    w_copies_of: dict[str, list[str]] = field(default_factory=dict)
    w_neg_of: dict[str, str] = field(default_factory=dict)
    # Per literal occurrence (clause index, literal index): middle node.
    occurrence_node: dict[tuple[int, int], str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def pair(self) -> tuple[Transaction, Transaction]:
        return self.first, self.second

    def middle_scc_units(self) -> list[frozenset[str]]:
        """The middle-row SCCs (doubled ``w`` copies form one unit)."""
        units: list[frozenset[str]] = []
        for variable in self.formula.variables():
            units.append(frozenset(self.w_copies_of[variable]))
            units.append(frozenset({self.w_neg_of[variable]}))
        return units

    def dominator_for_assignment(
        self, assignment: dict[str, bool]
    ) -> frozenset[str]:
        """The desirable dominator encoding *assignment* (Fig. 8):
        upper cycle + ``w_k`` units of true variables + ``w'_k`` of
        false ones."""
        members = set(self.upper_cycle)
        for variable in self.formula.variables():
            if assignment.get(variable, False):
                members.update(self.w_copies_of[variable])
            else:
                members.add(self.w_neg_of[variable])
        return frozenset(members)

    def assignment_for_dominator(
        self, dominator: frozenset[str]
    ) -> dict[str, bool | None]:
        """Read the (partial) truth assignment off a dominator: variable
        true iff its ``w`` unit is in, false iff ``w'`` is in, ``None``
        when neither."""
        assignment: dict[str, bool | None] = {}
        for variable in self.formula.variables():
            has_w = self.w_of[variable] in dominator
            has_neg = self.w_neg_of[variable] in dominator
            if has_w and has_neg:
                raise ReductionError(
                    f"dominator contains both w and w' of {variable!r} "
                    "(undesirable type 1)"
                )
            assignment[variable] = True if has_w else (False if has_neg else None)
        return assignment

    def is_desirable(self, dominator: frozenset[str]) -> bool:
        """Neither undesirable type: no ``w_k``/``w'_k`` pair together,
        and every clause contributes at least one middle node."""
        for variable in self.formula.variables():
            if (
                self.w_of[variable] in dominator
                and self.w_neg_of[variable] in dominator
            ):
                return False
        for clause_index, clause in enumerate(self.formula.clauses):
            if not any(
                self.occurrence_node[(clause_index, literal_index)]
                in dominator
                for literal_index in range(len(clause))
            ):
                return False
        return True


def _check_restricted(formula: CnfFormula) -> None:
    if not formula.is_restricted_form():
        raise ReductionError(
            "Theorem 3 needs the restricted CNF form (<=3 literals per "
            "clause, each variable <=2 positive and <=1 negative "
            "occurrences); run repro.logic.to_restricted_form first"
        )
    for clause in formula.clauses:
        if len(clause) < 2:
            raise ReductionError(
                "the reduction gadgets need clauses of 2 or 3 literals; "
                "eliminate unit clauses first (repro.core.reduction."
                "propagate_units)"
            )


def propagate_units(formula: CnfFormula) -> CnfFormula | bool:
    """Eliminate unit clauses by propagation.

    Returns the simplified formula (all clauses with >= 2 literals), or
    ``True`` / ``False`` when propagation settles satisfiability.
    """
    clauses = [list(clause.literals) for clause in formula.clauses]
    forced: dict[str, bool] = {}
    while True:
        unit = next((c for c in clauses if len(c) == 1), None)
        if unit is None:
            break
        literal = unit[0]
        value = not literal.negated
        if forced.get(literal.variable, value) != value:
            return False
        forced[literal.variable] = value
        next_clauses: list[list[Literal]] = []
        for clause in clauses:
            kept: list[Literal] = []
            satisfied = False
            for lit in clause:
                if lit.variable in forced:
                    if lit.value_under(forced):
                        satisfied = True
                        break
                else:
                    kept.append(lit)
            if satisfied:
                continue
            if not kept:
                return False
            next_clauses.append(kept)
        clauses = next_clauses
        if not clauses:
            return True
    return CnfFormula(clauses)


def reduce_cnf_to_pair(formula: CnfFormula) -> ReductionArtifacts:
    """Build ``{T1(F), T2(F)}`` and all the translation bookkeeping.

    Raises :class:`ReductionError` for formulas outside the restricted
    form or containing unit clauses.
    """
    _check_restricted(formula)
    variables = formula.variables()
    occurrences: dict[str, int] = {}
    for clause in formula.clauses:
        for literal in clause:
            if not literal.negated:
                occurrences[literal.variable] = (
                    occurrences.get(literal.variable, 0) + 1
                )

    # ------------------------------------------------------------------
    # Node inventory.
    # ------------------------------------------------------------------
    upper_named = ["u"] + [
        f"c_{i + 1}_{j + 1}"
        for i, clause in enumerate(formula.clauses)
        for j in range(len(clause))
    ]
    upper_cycle: list[str] = []
    for index, node in enumerate(upper_named):
        upper_cycle.append(node)
        upper_cycle.append(f"du{index}")  # dummy after every named node

    w_of: dict[str, str] = {}
    w_copies_of: dict[str, list[str]] = {}
    w_neg_of: dict[str, str] = {}
    middle_nodes: list[str] = []
    for variable in variables:
        if occurrences.get(variable, 0) >= 2:
            copies = [f"w_{variable}", f"w_{variable}_bis"]
        else:
            copies = [f"w_{variable}"]
        w_of[variable] = copies[0]
        w_copies_of[variable] = copies
        middle_nodes.extend(copies)
        w_neg_of[variable] = f"wn_{variable}"
        middle_nodes.append(w_neg_of[variable])

    lower_named = ["v"]
    for variable in variables:
        lower_named.append(f"z_{variable}")
        lower_named.append(f"zn_{variable}")
    lower_cycle: list[str] = []
    for index, node in enumerate(lower_named):
        lower_cycle.append(node)
        lower_cycle.append(f"dl{index}")

    entities = upper_cycle + middle_nodes + lower_cycle
    database = DistributedDatabase.one_entity_per_site(entities)

    # ------------------------------------------------------------------
    # The designed digraph D.
    # ------------------------------------------------------------------
    d_expected = DiGraph(entities)
    for tail, head in zip(upper_cycle, upper_cycle[1:] + upper_cycle[:1]):
        d_expected.add_arc(tail, head)
    for tail, head in zip(lower_cycle, lower_cycle[1:] + lower_cycle[:1]):
        d_expected.add_arc(tail, head)
    designated_middles: list[str] = []
    for variable in variables:
        designated_middles.append(w_of[variable])
        designated_middles.append(w_neg_of[variable])
        copies = w_copies_of[variable]
        if len(copies) == 2:
            d_expected.add_arc(copies[0], copies[1])
            d_expected.add_arc(copies[1], copies[0])
    for middle in designated_middles:
        d_expected.add_arc("u", middle)
        d_expected.add_arc(middle, "v")

    # ------------------------------------------------------------------
    # Step I: skeleton transactions realizing exactly D.
    # ------------------------------------------------------------------
    def step_triplet(entity: str) -> tuple[Step, Step, Step]:
        return (
            Step(StepKind.LOCK, entity),
            Step(StepKind.UPDATE, entity),
            Step(StepKind.UNLOCK, entity),
        )

    steps = {entity: step_triplet(entity) for entity in entities}
    all_steps = [step for entity in entities for step in steps[entity]]
    chains = [
        (steps[entity][0], steps[entity][1]) for entity in entities
    ] + [(steps[entity][1], steps[entity][2]) for entity in entities]

    precedences_first = list(chains)
    precedences_second = list(chains)
    for a, b in d_expected.arcs():
        # La <1 Ub   and   Lb <2 Ua  (Definition 1).
        precedences_first.append((steps[a][0], steps[b][2]))
        precedences_second.append((steps[b][0], steps[a][2]))

    # ------------------------------------------------------------------
    # Step II: the completion gadgets (half-arcs only — D unchanged).
    # ------------------------------------------------------------------
    # (a) variable-consistency gadgets.
    for variable in variables:
        w = w_of[variable]
        w_neg = w_neg_of[variable]
        z = f"z_{variable}"
        z_neg = f"zn_{variable}"
        precedences_first.append((steps[z][0], steps[w][2]))        # Lz  <1 Uw
        precedences_first.append((steps[z_neg][0], steps[w_neg][2]))  # Lz' <1 Uw'
        precedences_second.append((steps[w][0], steps[z_neg][2]))   # Lw  <2 Uz'
        precedences_second.append((steps[w_neg][0], steps[z][2]))   # Lw' <2 Uz

    # (b)/(c) clause gadgets; one w copy per distinct positive occurrence.
    occurrence_node: dict[tuple[int, int], str] = {}
    next_copy: dict[str, int] = {}
    for clause_index, clause in enumerate(formula.clauses):
        size = len(clause)
        for literal_index, literal in enumerate(clause.literals):
            if literal.negated:
                middle = w_neg_of[literal.variable]
            else:
                copy_index = next_copy.get(literal.variable, 0)
                next_copy[literal.variable] = copy_index + 1
                copies = w_copies_of[literal.variable]
                middle = copies[min(copy_index, len(copies) - 1)]
            occurrence_node[(clause_index, literal_index)] = middle
            c_here = f"c_{clause_index + 1}_{literal_index + 1}"
            c_next = f"c_{clause_index + 1}_{(literal_index + 1) % size + 1}"
            precedences_first.append((steps[middle][0], steps[c_here][2]))
            precedences_second.append((steps[c_next][0], steps[middle][2]))

    first = Transaction("T1(F)", database, all_steps, precedences_first)
    second = Transaction("T2(F)", database, all_steps, precedences_second)

    artifacts = ReductionArtifacts(
        formula=formula,
        database=database,
        first=first,
        second=second,
        d_expected=d_expected,
        upper_cycle=upper_cycle,
        lower_cycle=lower_cycle,
        middle_nodes=middle_nodes,
        w_of=w_of,
        w_copies_of=w_copies_of,
        w_neg_of=w_neg_of,
        occurrence_node=occurrence_node,
    )
    _verify_d_graph(artifacts)
    return artifacts


def _verify_d_graph(artifacts: ReductionArtifacts) -> None:
    """Assert ``D(T1(F), T2(F))`` equals the designed ``D`` — the
    reduction's step II must not disturb the dominator structure."""
    actual = d_graph(artifacts.first, artifacts.second)
    expected = artifacts.d_expected
    actual_arcs = set(actual.arcs())
    expected_arcs = set(expected.arcs())
    if set(actual.nodes()) != set(expected.nodes()) or (
        actual_arcs != expected_arcs
    ):
        missing = expected_arcs - actual_arcs
        extra = actual_arcs - expected_arcs
        raise ReductionError(
            f"reduction produced a wrong D graph "
            f"(missing={sorted(missing)[:4]}, extra={sorted(extra)[:4]})"
        )


def decide_satisfiability_via_safety(formula: CnfFormula) -> bool:
    """Theorem 3 run end-to-end: ``F`` is satisfiable iff the reduced
    pair is unsafe (decided by the exact bit-vector decider)."""
    from .safety import decide_safety_exact

    prepared = propagate_units(formula)
    if isinstance(prepared, bool):
        return prepared
    artifacts = reduce_cnf_to_pair(prepared)
    verdict = decide_safety_exact(artifacts.first, artifacts.second)
    return not verdict.safe
