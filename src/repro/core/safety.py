"""Safety deciders for locked transaction systems.

The paper's landscape, implemented:

=====================  ===========================  =====================
situation              decider                      paper result
=====================  ===========================  =====================
any sites, pair        ``is_safe_sufficient``       Theorem 1 (one-sided)
one or two sites       ``is_safe_two_site``         Theorem 2, Corollary 1
any sites, pair        ``decide_safety_exact``      exact; exponential
                                                    only in dominator
                                                    structure (coNP-hard
                                                    in general, Theorem 3)
any system (ground     ``decide_safety_exhaustive``  definition of safety
truth)
many transactions      :mod:`repro.core.multi`      Proposition 2
=====================  ===========================  =====================

``decide_safety`` picks the strongest applicable method and returns a
:class:`SafetyVerdict` carrying a machine-checkable witness: an
:class:`~repro.core.certificates.UnsafenessCertificate` or explicit
non-serializable schedule when unsafe, the strong-connectivity /
dominator-exhaustion argument when safe.

The exact decider implements the bit-vector argument from Theorem 1's
proof, run in reverse (DESIGN.md §2.3): a pair system is unsafe iff some
*mixed* bit vector ``b`` over the shared entities is realizable, i.e. the
digraph ``T1 ∪ T2 ∪ arcs(b)`` is acyclic, where ``arcs(b)`` orders, per
entity, the earlier transaction's unlock before the later one's lock.
Realizability forces ``b`` to be monotone along ``D(T1, T2)``, so only
zero-sets that are **dominators** (Definition 2) need enumeration — the
same objects the paper's Theorem 3 reduction manipulates.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Literal

from ..errors import CertificateError, TransactionError
from ..graphs import DiGraph, is_strongly_connected, topological_sort
from ..graphs.topo import CycleError
from ..obs import metrics, trace
from .certificates import UnsafenessCertificate, certificate_from_dominator
from .closure import ClosureContradiction
from .dgraph import d_graph, dominators_of, shared_locked_entities
from .schedule import (
    Schedule,
    ScheduledStep,
    TransactionSystem,
    find_nonserializable_schedule,
)
from .transaction import Transaction

Method = Literal[
    "trivial",
    "theorem-1",
    "theorem-2",
    "lemma-1",
    "exact-bit-vector",
    "exhaustive",
    "proposition-2",
    "admission",
    "budget-exceeded",
]


@dataclass
class SafetyVerdict:
    """The outcome of a safety decision, with its evidence."""

    safe: bool
    method: Method
    detail: str
    witness: Schedule | None = None
    certificate: UnsafenessCertificate | None = None

    def __bool__(self) -> bool:  # truthiness == safety
        return self.safe

    def record(self) -> "SafetyVerdict":
        """Count this verdict in the process metrics registry."""
        metrics.REGISTRY.counter(
            "repro_decisions_total",
            "safety verdicts by deciding method",
        ).labels(method=self.method, safe=str(self.safe).lower()).inc()
        return self

    def to_dict(self) -> dict:
        """JSON-serializable rendering (used by ``repro analyze --json``)."""
        payload: dict = {
            "safe": self.safe,
            "method": self.method,
            "detail": self.detail,
        }
        if self.witness is not None:
            payload["witness"] = [
                {"transaction": item.transaction, "step": str(item.step)}
                for item in self.witness.steps
            ]
        if self.certificate is not None:
            payload["certificate"] = {
                "dominator": sorted(self.certificate.dominator),
                "bits": dict(sorted(self.certificate.bits.items())),
                "t1": [str(step) for step in self.certificate.t1],
                "t2": [str(step) for step in self.certificate.t2],
            }
        return payload


def _traced_verdict(span_name: str):
    """Wrap a verdict-returning decider in a :func:`repro.obs.trace.span`
    carrying the method rung that fired and the safe bit.  While tracing
    is off the wrapper is one extra call and a falsy check."""

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not trace.tracing_enabled():
                return fn(*args, **kwargs)
            with trace.span(span_name) as sp:
                verdict = fn(*args, **kwargs)
                sp.set(method=verdict.method, safe=verdict.safe)
                return verdict

        return wrapper

    return decorate


# ----------------------------------------------------------------------
# Theorem 1 — sufficiency at any number of sites
# ----------------------------------------------------------------------


def is_safe_sufficient(first: Transaction, second: Transaction) -> bool | None:
    """Theorem 1: strongly connected ``D(T1, T2)`` ⇒ safe.

    Returns ``True`` (provably safe) or ``None`` (criterion silent — the
    system may still be safe, cf. Fig. 5).
    """
    if is_strongly_connected(d_graph(first, second)):
        return True
    return None


# ----------------------------------------------------------------------
# Theorem 2 / Corollary 1 — two sites, O(n^2)
# ----------------------------------------------------------------------


def sites_of_pair(first: Transaction, second: Transaction) -> set[int]:
    """The sites the pair actually uses."""
    return first.sites_used() | second.sites_used()


def is_safe_two_site(first: Transaction, second: Transaction) -> bool:
    """Theorem 2: at one or two sites, safe ⟺ ``D`` strongly connected.

    Raises :class:`TransactionError` when the pair spans more than two
    sites: the criterion is then only sufficient (Fig. 5), so answering
    from it would be unsound.
    """
    used = sites_of_pair(first, second)
    if len(used) > 2:
        raise TransactionError(
            f"is_safe_two_site needs a pair on at most two sites; this "
            f"pair uses sites {sorted(used)} (use decide_safety_exact)"
        )
    return is_strongly_connected(d_graph(first, second))


# ----------------------------------------------------------------------
# Exact decider — any number of sites
# ----------------------------------------------------------------------


def _combined_step_graph(
    first: Transaction, second: Transaction
) -> DiGraph:
    """Disjoint union of the two step posets over ScheduledStep nodes."""
    graph = DiGraph()
    for tx in (first, second):
        for step in tx.steps:
            graph.add_node(ScheduledStep(tx.name, step))
        for before, after in tx.poset().arcs():
            graph.add_arc(
                ScheduledStep(tx.name, before), ScheduledStep(tx.name, after)
            )
    return graph


def _realizes_bits(
    first: Transaction,
    second: Transaction,
    base_graph: DiGraph,
    bits: dict[str, int],
) -> Schedule | None:
    """A legal schedule realizing *bits*, or ``None`` if unrealizable.

    ``bits[x] = 0`` ⇒ ``U1x`` before ``L2x`` (transaction 1 first);
    ``bits[x] = 1`` ⇒ ``U2x`` before ``L1x``.
    """
    graph = base_graph.copy()
    for entity, bit in bits.items():
        if bit == 0:
            graph.add_arc(
                ScheduledStep(first.name, first.unlock_step(entity)),
                ScheduledStep(second.name, second.lock_step(entity)),
            )
        else:
            graph.add_arc(
                ScheduledStep(second.name, second.unlock_step(entity)),
                ScheduledStep(first.name, first.lock_step(entity)),
            )
    try:
        order = topological_sort(graph)
    except CycleError:
        return None
    system = TransactionSystem([first, second])
    return Schedule(system, order)


@_traced_verdict("safety.exact")
def decide_safety_exact(
    first: Transaction, second: Transaction, *, dominator_limit: int | None = None
) -> SafetyVerdict:
    """Exact safety decision for a pair at any number of sites.

    Enumerates dominators ``X`` of ``D(T1, T2)`` as candidate zero-sets
    of the schedule bit vector and checks realizability by acyclicity.
    The first realizable mixed vector yields an explicit
    non-serializable schedule; exhausting all dominators proves safety.

    Worst-case exponential in the number of SCCs of ``D`` — necessarily
    so unless P = NP (Theorem 3).
    """
    shared = shared_locked_entities(first, second)
    if len(shared) < 2:
        return SafetyVerdict(
            safe=True,
            method="trivial",
            detail=(
                f"only {len(shared)} entity(ies) locked by both "
                "transactions: no two rectangles to separate"
            ),
        )
    with trace.span("safety.d_graph") as sp:
        graph = d_graph(first, second)
        connected = is_strongly_connected(graph)
        if sp:
            sp.set(shared_entities=len(shared), strongly_connected=connected)
    if connected:
        return SafetyVerdict(
            safe=True,
            method="theorem-1",
            detail="D(T1, T2) is strongly connected",
        )
    with trace.span("safety.dominators") as sp:
        base = _combined_step_graph(first, second)
        checked = 0
        realizable: Schedule | None = None
        found: frozenset | None = None
        for dominator in dominators_of(graph, limit=dominator_limit):
            checked += 1
            bits = {
                entity: 0 if entity in dominator else 1 for entity in shared
            }
            schedule = _realizes_bits(first, second, base, bits)
            if schedule is not None:
                realizable, found = schedule, dominator
                break
        if sp:
            sp.set(dominators_checked=checked, realizable=found is not None)
    if realizable is not None:
        assert not realizable.is_serializable(), (
            "realizable mixed bit vector must yield a "
            "non-serializable schedule"
        )
        return SafetyVerdict(
            safe=False,
            method="exact-bit-vector",
            detail=(
                f"dominator {sorted(found)} is realizable: "
                "witness schedule attached"
            ),
            witness=realizable,
        )
    if dominator_limit is not None and checked >= dominator_limit:
        raise TransactionError(
            f"dominator enumeration hit its limit ({dominator_limit}) "
            "before exhausting the search; safety is undecided"
        )
    return SafetyVerdict(
        safe=True,
        method="exact-bit-vector",
        detail=(
            f"no realizable mixed bit vector among {checked} dominators "
            "of D(T1, T2)"
        ),
    )


@_traced_verdict("safety.lemma1")
def decide_safety_via_lemma_1(
    first: Transaction,
    second: Transaction,
    *,
    pair_limit: int | None = 200_000,
) -> SafetyVerdict:
    """Lemma 1, run literally: ``{T1, T2}`` is safe iff every pair of
    linear extensions ``(t1, t2)`` is safe — each pair decided by the
    centralized criterion (strong connectivity of ``D(t1, t2)``, via
    the near-linear implicit test).

    Exponential in the number of extensions; a third, independently
    derived exact decider used for cross-validation.  *pair_limit*
    guards runaway inputs (raises :class:`TransactionError` when hit).
    """
    from .fastcheck import is_safe_total_orders_fast
    from .geometry import GeometricPicture

    checked = 0
    for t1 in first.linear_extensions():
        for t2 in second.linear_extensions():
            checked += 1
            if pair_limit is not None and checked > pair_limit:
                raise TransactionError(
                    f"Lemma 1 enumeration exceeded {pair_limit} extension "
                    "pairs; use decide_safety_exact"
                )
            if not is_safe_total_orders_fast(t1, t2):
                picture = GeometricPicture(t1, t2)
                curve = picture.find_nonserializable_curve()
                witness = None
                if curve is not None:
                    system = TransactionSystem([first, second])
                    names = {1: first.name, 2: second.name}
                    witness = Schedule(
                        system,
                        [
                            ScheduledStep(names[axis], step)
                            for axis, step in picture.schedule_steps_of_curve(
                                curve
                            )
                        ],
                    )
                return SafetyVerdict(
                    safe=False,
                    method="lemma-1",
                    detail=(
                        f"extension pair #{checked} is unsafe "
                        "(D(t1, t2) not strongly connected)"
                    ),
                    witness=witness,
                )
    return SafetyVerdict(
        safe=True,
        method="lemma-1",
        detail=f"all {checked} extension pairs are safe",
    )


def decide_safety_exact_naive(
    first: Transaction, second: Transaction
) -> SafetyVerdict:
    """Ablation reference: the exact decider WITHOUT the dominator
    pruning — try all ``2^k`` bit vectors over the shared entities.

    Exists to quantify (benchmark ``A2``) how much the paper's dominator
    structure buys: the pruned decider enumerates only the
    ancestor-closed zero-sets of ``D(T1, T2)``, the naive one every
    subset.  Verdicts are always identical (tested).
    """
    shared = shared_locked_entities(first, second)
    if len(shared) < 2:
        return SafetyVerdict(
            safe=True,
            method="trivial",
            detail="fewer than two shared entities",
        )
    base = _combined_step_graph(first, second)
    checked = 0
    for mask in range(1, (1 << len(shared)) - 1):  # mixed vectors only
        bits = {
            entity: (mask >> position) & 1
            for position, entity in enumerate(shared)
        }
        # zero-set = entities with bit 0; any mixed vector qualifies.
        checked += 1
        schedule = _realizes_bits(first, second, base, bits)
        if schedule is not None:
            return SafetyVerdict(
                safe=False,
                method="exact-bit-vector",
                detail=f"naive enumeration: vector #{checked} realizable",
                witness=schedule,
            )
    return SafetyVerdict(
        safe=True,
        method="exact-bit-vector",
        detail=f"naive enumeration: none of {checked} mixed vectors realizable",
    )


# ----------------------------------------------------------------------
# Exhaustive ground truth
# ----------------------------------------------------------------------


@_traced_verdict("safety.exhaustive")
def decide_safety_exhaustive(
    system: TransactionSystem, state_budget: int = 2_000_000
) -> SafetyVerdict:
    """Decide safety straight from the definition by searching every
    legal schedule.  Exponential; the cross-validation ground truth."""
    witness = find_nonserializable_schedule(system, state_budget=state_budget)
    if witness is None:
        return SafetyVerdict(
            safe=True,
            method="exhaustive",
            detail="every legal schedule is serializable",
        )
    return SafetyVerdict(
        safe=False,
        method="exhaustive",
        detail="found a non-serializable legal schedule",
        witness=witness,
    )


# ----------------------------------------------------------------------
# Unified front end
# ----------------------------------------------------------------------


def decide_safety(
    system: TransactionSystem, *, want_certificate: bool = True
) -> SafetyVerdict:
    """Decide safety with the strongest applicable method.

    * pair on ≤ 2 sites — Theorem 2 with, if unsafe and requested, a full
      :class:`UnsafenessCertificate` built by the constructive proof;
    * pair on ≥ 3 sites — Theorem 1 fast path, else the exact decider;
    * ≥ 3 transactions — Proposition 2 (:mod:`repro.core.multi`).

    Every call is observable: the rung of the ladder that fired lands in
    the ``repro_decisions_total`` metric (labelled by method and
    verdict) and, when tracing is on, in a ``safety.decide`` span.
    """
    with trace.span("safety.decide") as sp:
        verdict = _decide_safety_ladder(
            system, want_certificate=want_certificate
        )
        if sp:
            sp.set(
                method=verdict.method,
                safe=verdict.safe,
                transactions=len(system),
            )
    return verdict.record()


def _decide_safety_ladder(
    system: TransactionSystem, *, want_certificate: bool
) -> SafetyVerdict:
    """The method ladder behind :func:`decide_safety`."""
    if len(system) > 2:
        from .multi import decide_safety_multi

        return decide_safety_multi(system)
    if len(system) == 0:
        return SafetyVerdict(
            safe=True,
            method="trivial",
            detail="an empty system has no schedules to mis-serialize",
        )
    if len(system) == 1:
        return SafetyVerdict(
            safe=True,
            method="trivial",
            detail="a single transaction is always serializable",
        )
    first, second = system.pair()
    used = sites_of_pair(first, second)
    if len(used) <= 2:
        if is_strongly_connected(d_graph(first, second)):
            return SafetyVerdict(
                safe=True,
                method="theorem-2",
                detail=(
                    f"pair on sites {sorted(used)}: D(T1, T2) strongly "
                    "connected ⟺ safe"
                ),
            )
        verdict = SafetyVerdict(
            safe=False,
            method="theorem-2",
            detail=(
                f"pair on sites {sorted(used)}: D(T1, T2) not strongly "
                "connected ⟺ unsafe"
            ),
        )
        if want_certificate:
            try:
                with trace.span("safety.certificate"):
                    verdict.certificate = certificate_from_dominator(
                        first, second
                    )
                verdict.witness = verdict.certificate.schedule
            except (CertificateError, ClosureContradiction) as exc:
                raise AssertionError(
                    "Theorem 2 guarantees a certificate at two sites; "
                    f"construction failed: {exc}"
                ) from exc
        return verdict
    return decide_safety_exact(first, second)
