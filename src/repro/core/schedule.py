"""Schedules of a locked transaction system, paper §2.

    "A schedule h is a total ordering of all the steps, such that:
     (a) h does not contradict any partial order in T, and
     (b) for each x, every two lock x steps in h are separated by an
         unlock x step."

``h`` is *serializable* iff it is equivalent to a serial schedule under
all interpretations of the update functions; with exclusive locks and
update steps (each a read-then-write), this is conflict equivalence, so a
schedule is serializable iff its transaction conflict graph is acyclic.
The system is **safe** iff every legal schedule is serializable.

This module supplies:

* :class:`TransactionSystem` — a named set of transactions over one
  database;
* :class:`Schedule` — a total order of scheduled steps with legality and
  serializability checks;
* exhaustive enumeration / search over all legal schedules — the
  *definitional* ground truth used to cross-validate every cleverer
  decider in :mod:`repro.core.safety`.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Sequence

from ..errors import ScheduleError, TransactionError
from ..graphs import DiGraph, is_acyclic
from .entity import DistributedDatabase
from .step import Step
from .transaction import Transaction


@dataclass(frozen=True, order=True)
class ScheduledStep:
    """One step of one transaction, as it appears in a schedule."""

    transaction: str
    step: Step

    def __str__(self) -> str:
        return f"{self.step}[{self.transaction}]"

    __repr__ = __str__


class TransactionSystem:
    """A set ``T = {T1, ..., Tk}`` of locked transactions over a common
    distributed database."""

    def __init__(
        self,
        transactions: Sequence[Transaction],
        *,
        database: "DistributedDatabase | None" = None,
    ) -> None:
        if not transactions and database is None:
            raise TransactionError(
                "a transaction system needs transactions (or an explicit "
                "database= for an empty system)"
            )
        names = [tx.name for tx in transactions]
        if len(set(names)) != len(names):
            raise TransactionError(f"duplicate transaction names: {names}")
        if database is None:
            database = transactions[0].database
        for tx in transactions:
            if tx.database != database:
                raise TransactionError(
                    f"transaction {tx.name} uses a different database"
                )
        self.database = database
        self._transactions = {tx.name: tx for tx in transactions}

    # ------------------------------------------------------------------
    @property
    def transactions(self) -> list[Transaction]:
        return list(self._transactions.values())

    @property
    def names(self) -> list[str]:
        return list(self._transactions)

    def __len__(self) -> int:
        return len(self._transactions)

    def __getitem__(self, name: str) -> Transaction:
        return self._transactions[name]

    def pair(self) -> tuple[Transaction, Transaction]:
        """The two transactions of a pair system (most of the paper)."""
        if len(self._transactions) != 2:
            raise TransactionError(
                f"expected a two-transaction system, have {len(self)}"
            )
        first, second = self.transactions
        return first, second

    def shared_locked_entities(self) -> list[str]:
        """Entities locked by at least two transactions (the vertex set
        of ``D(T1, T2)`` when the system is a pair)."""
        counts: dict[str, int] = {}
        for tx in self.transactions:
            for entity in tx.locked_entities():
                counts[entity] = counts.get(entity, 0) + 1
        return [entity for entity, count in counts.items() if count >= 2]

    def total_steps(self) -> int:
        """``n`` — the total number of steps in the system."""
        return sum(len(tx) for tx in self.transactions)

    # ------------------------------------------------------------------
    # Serial schedules
    # ------------------------------------------------------------------
    def serial_schedule(self, order: Sequence[str]) -> "Schedule":
        """The serial schedule running whole transactions in *order*."""
        if sorted(order) != sorted(self.names):
            raise ScheduleError(
                f"serial order {order!r} is not a permutation of {self.names}"
            )
        steps: list[ScheduledStep] = []
        for name in order:
            tx = self._transactions[name]
            steps.extend(
                ScheduledStep(name, step) for step in tx.a_linear_extension()
            )
        return Schedule(self, steps)


class Schedule:
    """A legal schedule of a :class:`TransactionSystem`.

    Construction validates clauses (a) and (b) of the paper's definition
    and raises :class:`ScheduleError` on any violation.
    """

    def __init__(
        self,
        system: TransactionSystem,
        steps: Iterable[ScheduledStep | tuple[str, Step]],
    ) -> None:
        self.system = system
        normalized: list[ScheduledStep] = []
        for item in steps:
            if isinstance(item, ScheduledStep):
                normalized.append(item)
            else:
                name, step = item
                normalized.append(ScheduledStep(name, step))
        self.steps = normalized
        self._validate()

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        expected = {
            ScheduledStep(tx.name, step)
            for tx in self.system.transactions
            for step in tx.steps
        }
        got = set(self.steps)
        if len(got) != len(self.steps):
            raise ScheduleError("schedule repeats a step")
        if got != expected:
            missing = expected - got
            extra = got - expected
            raise ScheduleError(
                f"schedule is not a total order of all steps "
                f"(missing={sorted(map(str, missing))[:5]}, "
                f"extra={sorted(map(str, extra))[:5]})"
            )
        # (a) respects every transaction's partial order.
        position = {item: index for index, item in enumerate(self.steps)}
        for tx in self.system.transactions:
            for before, after in tx.poset().arcs():
                if (
                    position[ScheduledStep(tx.name, before)]
                    > position[ScheduledStep(tx.name, after)]
                ):
                    raise ScheduleError(
                        f"schedule contradicts {tx.name}: {before} must "
                        f"precede {after}"
                    )
        # (b) two locks on x always separated by an unlock on x.
        holder: dict[str, str | None] = {}
        for item in self.steps:
            entity = item.step.entity
            if item.step.is_lock:
                current = holder.get(entity)
                if current is not None:
                    raise ScheduleError(
                        f"{item.transaction} locks {entity!r} while "
                        f"{current} still holds it"
                    )
                holder[entity] = item.transaction
            elif item.step.is_unlock:
                holder[entity] = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[ScheduledStep]:
        return iter(self.steps)

    def __str__(self) -> str:
        return " ".join(str(item) for item in self.steps)

    def position(self, transaction: str, step: Step) -> int:
        """Index of the given step in the schedule."""
        return self.steps.index(ScheduledStep(transaction, step))

    # ------------------------------------------------------------------
    def conflict_graph(self) -> DiGraph:
        """Arc ``Ti -> Tj`` iff some update of ``Ti`` on an entity
        precedes some update of ``Tj`` on the same entity."""
        return conflict_graph(
            [(item.transaction, item.step) for item in self.steps],
            self.system.names,
        )

    def is_serializable(self) -> bool:
        """Conflict-serializability: acyclic conflict graph."""
        return is_acyclic(self.conflict_graph())

    def is_serial(self) -> bool:
        """True iff transactions run one after another without overlap."""
        seen_complete: set[str] = set()
        current: str | None = None
        for item in self.steps:
            if item.transaction != current:
                if item.transaction in seen_complete:
                    return False
                if current is not None:
                    seen_complete.add(current)
                current = item.transaction
        return True

    def equivalent_serial_order(self) -> list[str] | None:
        """A serial order witnessing serializability, or ``None``."""
        graph = self.conflict_graph()
        if not is_acyclic(graph):
            return None
        from ..graphs import topological_sort

        return topological_sort(graph)


def conflict_graph(
    history: Sequence[tuple[str, Step]], names: Sequence[str]
) -> DiGraph:
    """Conflict graph of any step history (shared with the simulator).

    Only update steps access data, so only they generate conflicts; the
    lock steps merely constrain which histories are legal.
    """
    graph = DiGraph(names)
    updated_by: dict[str, set[str]] = {}
    for name, step in history:
        if not step.is_update:
            continue
        previous = updated_by.setdefault(step.entity, set())
        for other in previous:
            if other != name:
                graph.add_arc(other, name)
        previous.add(name)
    return graph


# ----------------------------------------------------------------------
# Exhaustive enumeration — the definitional ground truth
# ----------------------------------------------------------------------


class SearchBudgetExceeded(ScheduleError):
    """The exhaustive search visited more states than its budget allows."""


def _prefix_search(
    system: TransactionSystem,
    *,
    want_nonserializable: bool,
    state_budget: int,
) -> Iterator[list[ScheduledStep]]:
    """DFS over legal schedule prefixes.

    Yields complete schedules; when *want_nonserializable* is set, only
    non-serializable ones are yielded and memoization prunes states from
    which no non-serializable completion exists.  The memo key is the
    pair (executed steps, conflict arcs so far): together they determine
    both which continuations are legal and the final conflict graph.
    """
    transactions = system.transactions
    all_steps: list[tuple[str, Step, frozenset]] = []
    step_ids: dict[ScheduledStep, int] = {}
    for tx in transactions:
        for step in tx.steps:
            step_ids[ScheduledStep(tx.name, step)] = len(step_ids)

    predecessor_masks: dict[ScheduledStep, int] = {}
    for tx in transactions:
        poset = tx.poset()
        for step in tx.steps:
            mask = 0
            for other in tx.steps:
                if poset.precedes(other, step):
                    mask |= 1 << step_ids[ScheduledStep(tx.name, other)]
            predecessor_masks[ScheduledStep(tx.name, step)] = mask

    items = list(step_ids)
    total_mask = (1 << len(items)) - 1
    visited: set[tuple[int, frozenset]] = set()
    states = 0

    def lock_holder(executed_mask: int) -> dict[str, str]:
        holders: dict[str, str] = {}
        for item in items:
            if not executed_mask >> step_ids[item] & 1:
                continue
            if item.step.is_lock:
                tx = system[item.transaction]
                unlock = tx.unlock_step(item.step.entity)
                if unlock is None or not (
                    executed_mask >> step_ids[ScheduledStep(item.transaction, unlock)] & 1
                ):
                    holders[item.step.entity] = item.transaction
        return holders

    def search(
        executed_mask: int,
        prefix: list[ScheduledStep],
        conflicts: frozenset[tuple[str, str]],
        last_updater: dict[str, tuple[str, ...]],
    ) -> Iterator[list[ScheduledStep]]:
        nonlocal states
        states += 1
        if states > state_budget:
            raise SearchBudgetExceeded(
                f"exhaustive schedule search exceeded {state_budget} states"
            )
        if executed_mask == total_mask:
            graph = DiGraph(system.names, conflicts)
            if want_nonserializable:
                if not is_acyclic(graph):
                    yield list(prefix)
            else:
                yield list(prefix)
            return
        key = (executed_mask, conflicts)
        if want_nonserializable:
            if key in visited:
                return
            visited.add(key)
        holders = lock_holder(executed_mask)
        for item in items:
            idx = step_ids[item]
            if executed_mask >> idx & 1:
                continue
            if predecessor_masks[item] & ~executed_mask:
                continue  # a predecessor within the transaction is pending
            if item.step.is_lock:
                holder = holders.get(item.step.entity)
                if holder is not None and holder != item.transaction:
                    continue  # lock held elsewhere
            new_conflicts = conflicts
            new_updaters = last_updater
            if item.step.is_update:
                previous = last_updater.get(item.step.entity, ())
                added = {
                    (other, item.transaction)
                    for other in previous
                    if other != item.transaction
                }
                if added - conflicts:
                    new_conflicts = conflicts | added
                if item.transaction not in previous:
                    new_updaters = dict(last_updater)
                    new_updaters[item.step.entity] = previous + (
                        item.transaction,
                    )
            prefix.append(item)
            yield from search(
                executed_mask | (1 << idx), prefix, new_conflicts, new_updaters
            )
            prefix.pop()

    yield from search(0, [], frozenset(), {})


def all_legal_schedules(
    system: TransactionSystem,
    limit: int | None = None,
    state_budget: int = 2_000_000,
) -> Iterator[Schedule]:
    """Enumerate every legal schedule (use only on small systems)."""
    produced = 0
    for steps in _prefix_search(
        system, want_nonserializable=False, state_budget=state_budget
    ):
        yield Schedule(system, steps)
        produced += 1
        if limit is not None and produced >= limit:
            return


def find_nonserializable_schedule(
    system: TransactionSystem, state_budget: int = 2_000_000
) -> Schedule | None:
    """Search for a non-serializable legal schedule; ``None`` means the
    system is safe (this *is* the definition of safety)."""
    for steps in _prefix_search(
        system, want_nonserializable=True, state_budget=state_budget
    ):
        return Schedule(system, steps)
    return None
