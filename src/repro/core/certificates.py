"""Certificates of unsafeness — the constructive content of Theorem 2.

A certificate packages everything needed to *verify* that a pair system
is unsafe, independently of how it was found:

* two total orders ``t1 ∈ T1``, ``t2 ∈ T2`` (Lemma 1's witnesses);
* the bit vector (dominator entities below the curve, complement above);
* an explicit legal, non-serializable schedule.

Construction follows the proof of Theorem 2: close the system with
respect to a dominator ``X`` (Lemmas 2–3), then topologically sort

* ``t1`` placing the ``Ux`` (``x ∈ X``) steps *as early as possible*, and
* ``t2`` placing the ``Lx`` (``x ∈ X``) steps *as late as possible*,
  breaking ties among them by the ``Ux`` order of ``t1``,

and finally read a separating monotone curve off the geometric picture.
At two sites this always succeeds (Theorem 2); via Corollary 2 it also
succeeds at any number of sites whenever the system is already closed
with respect to the dominator.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CertificateError
from .closure import ClosureResult, close_with_respect_to, is_closed
from .dgraph import d_graph, is_dominator_of, some_dominator_of
from .geometry import GeometricPicture
from .schedule import Schedule, ScheduledStep, TransactionSystem
from .step import Step
from .transaction import Transaction


@dataclass
class UnsafenessCertificate:
    """A self-contained, independently checkable proof of unsafeness."""

    system: TransactionSystem
    t1: list[Step]
    t2: list[Step]
    bits: dict[str, int]
    schedule: Schedule
    dominator: frozenset[str]

    def verify(self) -> bool:
        """Re-check every claim; raises :class:`CertificateError` with a
        specific reason on failure, returns True otherwise."""
        first, second = self.system.pair()
        if not first.is_linear_extension(self.t1):
            raise CertificateError(
                f"t1 is not a linear extension of {first.name}"
            )
        if not second.is_linear_extension(self.t2):
            raise CertificateError(
                f"t2 is not a linear extension of {second.name}"
            )
        if set(self.bits.values()) != {0, 1}:
            raise CertificateError(
                f"bit vector is not mixed: {self.bits}"
            )
        try:
            # Re-validating legality happens inside Schedule.__init__;
            # rebuild to defend against mutated .steps.
            rebuilt = Schedule(self.system, list(self.schedule.steps))
        except Exception as exc:  # noqa: BLE001 - rewrap for the caller
            raise CertificateError(f"schedule is not legal: {exc}") from exc
        if rebuilt.is_serializable():
            raise CertificateError("schedule is serializable")
        # The schedule must actually interleave t1 with t2 in their order.
        order1 = [
            item.step for item in rebuilt.steps if item.transaction == first.name
        ]
        order2 = [
            item.step for item in rebuilt.steps if item.transaction == second.name
        ]
        if order1 != self.t1 or order2 != self.t2:
            raise CertificateError(
                "schedule does not project onto the claimed total orders"
            )
        return True

    def describe(self) -> str:
        first, second = self.system.pair()
        below = sorted(e for e, bit in self.bits.items() if bit == 0)
        above = sorted(e for e, bit in self.bits.items() if bit == 1)
        return "\n".join(
            [
                f"Unsafeness certificate for {{{first.name}, {second.name}}}",
                f"  dominator X = {sorted(self.dominator)}",
                f"  {first.name} first on: {below}; "
                f"{second.name} first on: {above}",
                f"  t1 = {' '.join(map(str, self.t1))}",
                f"  t2 = {' '.join(map(str, self.t2))}",
                f"  non-serializable schedule: {self.schedule}",
            ]
        )


def _priority_total_orders(
    closed: ClosureResult,
) -> tuple[list[Step], list[Step]]:
    """The two priority topological sorts from the proof of Theorem 2.

    "As early as possible" for the ``Ux`` steps of ``t1`` is *not* the
    myopic greedy that merely prefers an available ``Ux``: each ``Ux``
    must drag its whole down-set forward.  Equivalently, topologically
    sort the **reversed** partial order while *delaying* ``Ux`` steps
    (emit them only when nothing else is available) and reverse the
    result.  The symmetric rule for ``t2`` — ``Lx`` as late as
    possible — is exactly the myopic delay, applied directly.
    """
    members = closed.dominator

    def t1_reversed_key(step: Step) -> int:
        # Delay Ux in the reversed order == emit Ux early in t1.
        return 1 if step.is_unlock and step.entity in members else 0

    from ..graphs import topological_sort

    reversed_order = topological_sort(
        closed.first.poset().graph().reversed(), key=t1_reversed_key
    )
    t1 = list(reversed(reversed_order))
    unlock_rank = {
        step.entity: position
        for position, step in enumerate(t1)
        if step.is_unlock and step.entity in members
    }

    def t2_key(step: Step) -> tuple[int, int]:
        # Lx steps of the dominator as late as possible; among them,
        # follow the Ux order of t1.
        if step.is_lock and step.entity in members:
            return (1, unlock_rank.get(step.entity, len(t1)))
        return (0, 0)

    t2 = closed.second.a_linear_extension(key=t2_key)
    return t1, t2


def _certificate_from_orders(
    first: Transaction,
    second: Transaction,
    t1: list[Step],
    t2: list[Step],
    dominator: frozenset[str],
) -> UnsafenessCertificate:
    """Find the separating curve for the closed system's total orders and
    package the certificate."""
    picture = GeometricPicture(t1, t2)
    bits = {
        entity: 0 if entity in dominator else 1
        for entity in picture.entities()
    }
    curve = picture.find_curve_with_bits(bits)
    if curve is None:
        raise CertificateError(
            f"no separating curve exists for dominator {sorted(dominator)}; "
            "the construction does not apply to this system"
        )
    system = TransactionSystem([first, second])
    names = {1: first.name, 2: second.name}
    schedule = Schedule(
        system,
        [
            ScheduledStep(names[axis], step)
            for axis, step in picture.schedule_steps_of_curve(curve)
        ],
    )
    certificate = UnsafenessCertificate(
        system=system,
        t1=t1,
        t2=t2,
        bits=bits,
        schedule=schedule,
        dominator=dominator,
    )
    certificate.verify()
    return certificate


def certificate_from_dominator(
    first: Transaction,
    second: Transaction,
    dominator: frozenset[str] | set[str] | None = None,
    *,
    enforce_dominator_invariant: bool = True,
) -> UnsafenessCertificate:
    """Theorem 2's construction: close w.r.t. a dominator of
    ``D(T1, T2)``, build the priority total orders, extract the schedule.

    With *dominator* omitted, the canonical source-SCC dominator is used;
    raises :class:`CertificateError` when ``D`` is strongly connected
    (Theorem 1 then proves the system safe) and propagates
    :class:`~repro.core.closure.ClosureContradiction` when closure is
    impossible (e.g. the four-site Fig. 5 system).
    """
    graph = d_graph(first, second)
    if dominator is None:
        found = some_dominator_of(graph)
        if found is None:
            raise CertificateError(
                "D(T1, T2) is strongly connected; the system is safe "
                "(Theorem 1) and has no unsafeness certificate"
            )
        dominator = found
    members = frozenset(dominator)
    if not is_dominator_of(graph, members):
        raise CertificateError(
            f"{sorted(members)} is not a dominator of D(T1, T2)"
        )
    closed = close_with_respect_to(
        first,
        second,
        members,
        enforce_dominator_invariant=enforce_dominator_invariant,
    )
    t1, t2 = _priority_total_orders(closed)
    return _certificate_from_orders(first, second, t1, t2, members)


def certificate_via_corollary_2(
    first: Transaction, second: Transaction, dominator: frozenset[str] | set[str]
) -> UnsafenessCertificate:
    """Corollary 2: a system already *closed* with respect to a dominator
    is unsafe at any number of sites; build its certificate directly."""
    members = frozenset(dominator)
    graph = d_graph(first, second)
    if not is_dominator_of(graph, members):
        raise CertificateError(
            f"{sorted(members)} is not a dominator of D(T1, T2)"
        )
    if not is_closed(first, second, members):
        raise CertificateError(
            f"system is not closed with respect to {sorted(members)}; "
            "Corollary 2 does not apply (use certificate_from_dominator)"
        )
    closed = ClosureResult(first, second, members)
    t1, t2 = _priority_total_orders(closed)
    return _certificate_from_orders(first, second, t1, t2, members)
