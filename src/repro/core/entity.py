"""The distributed database of the paper, §2.

    "A distributed database is a triple D = (E, m, σ), where E is a set
    of entities, m > 0 is the number of sites, and σ: E → {1, ..., m} is
    the stored-at function, assigning a site to each entity."

Entities are plain strings; sites are integers ``1..m``.  The class is
immutable: transactions hold a reference to their database and rely on
the stored-at map never changing underneath them.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from ..errors import DatabaseError


class DistributedDatabase:
    """``D = (E, m, σ)`` — entities partitioned into ``m`` sites."""

    def __init__(self, stored_at: Mapping[str, int], sites: int | None = None):
        """*stored_at* maps each entity name to its site (1-based).

        *sites* fixes ``m`` explicitly; when omitted, ``m`` is the largest
        site mentioned.  Sites may be empty (an ``m`` larger than the
        number of distinct sites used is allowed, matching the paper's
        model where σ need not be surjective).
        """
        if not stored_at:
            raise DatabaseError("a database needs at least one entity")
        for entity, site in stored_at.items():
            if not isinstance(entity, str) or not entity:
                raise DatabaseError(
                    f"entity names must be nonempty strings, got {entity!r}"
                )
            if not isinstance(site, int) or site < 1:
                raise DatabaseError(
                    f"site of entity {entity!r} must be a positive integer, "
                    f"got {site!r}"
                )
        used = max(stored_at.values())
        if sites is None:
            sites = used
        elif sites < used:
            raise DatabaseError(
                f"declared {sites} sites but entity map uses site {used}"
            )
        self._stored_at = dict(stored_at)
        self._sites = sites

    # ------------------------------------------------------------------
    @classmethod
    def single_site(cls, entities: Iterable[str]) -> "DistributedDatabase":
        """A centralized database (m = 1) — the paper's special case."""
        return cls({entity: 1 for entity in entities}, sites=1)

    @classmethod
    def one_entity_per_site(cls, entities: Iterable[str]) -> "DistributedDatabase":
        """Each entity on its own site — the Theorem 3 reduction's layout
        ("each entity locked and unlocked in these transactions belongs
        to its own site")."""
        names = list(entities)
        return cls(
            {entity: index + 1 for index, entity in enumerate(names)},
            sites=max(1, len(names)),
        )

    # ------------------------------------------------------------------
    @property
    def sites(self) -> int:
        """``m`` — the number of sites."""
        return self._sites

    @property
    def entities(self) -> list[str]:
        """All entity names, in insertion order."""
        return list(self._stored_at)

    def site_of(self, entity: str) -> int:
        """``σ(entity)``; raises :class:`DatabaseError` if unknown."""
        try:
            return self._stored_at[entity]
        except KeyError:
            raise DatabaseError(f"unknown entity {entity!r}") from None

    def entities_at(self, site: int) -> list[str]:
        """All entities stored at *site*."""
        return [
            entity
            for entity, stored in self._stored_at.items()
            if stored == site
        ]

    def same_site(self, first: str, second: str) -> bool:
        """True iff σ(first) == σ(second)."""
        return self.site_of(first) == self.site_of(second)

    def __contains__(self, entity: str) -> bool:
        return entity in self._stored_at

    def __len__(self) -> int:
        return len(self._stored_at)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DistributedDatabase):
            return NotImplemented
        return self._stored_at == other._stored_at and self._sites == other._sites

    def __repr__(self) -> str:
        return (
            f"DistributedDatabase(entities={len(self._stored_at)}, "
            f"sites={self._sites})"
        )
