"""Near-linear centralized safety testing — the [5, 14] fast path.

The paper notes (after Proposition 1) that non-safety of two *totally
ordered* transactions "can be tested in O(n log n log log n) time [5],
or even O(n log n) time [14]".  This module supplies that fast path:
strong connectivity of ``D(t1, t2)`` decided **without materializing the
graph** — ``D`` can have Θ(k²) arcs, but its arcs are 2-dimensional
dominance relations between lock/unlock positions, so reachability can
expand each frontier node with prefix arg-max queries over the
not-yet-visited entities.

Arc ``(x, y)``: ``pos1(Lx) < pos1(Uy)`` and ``pos2(Ly) < pos2(Ux)``.
Successor extraction from ``x``: among unvisited ``y`` with
``pos2(Ly) < pos2(Ux)`` (a prefix of entities sorted by ``pos2(Ly)``),
repeatedly pop one with maximal ``pos1(Uy)`` while it exceeds
``pos1(Lx)``.  Each entity is extracted at most once over the whole
search, so full reachability costs ``O(k log k)`` after ``O(n)``
position scanning — ``O(n + k log k)`` in total.  Strong connectivity =
everything reachable from one node, forward and backward.

This is an optional optimization: semantics are defined by
:func:`repro.core.dgraph.d_graph_of_total_orders` + Tarjan, and the test
suite checks exact agreement; the ablation benchmark
(``bench_ablation_fastcheck``) measures the win.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..graphs.segtree import MaxSegmentTree
from .step import Step


def _lock_tables(order: Sequence[Step]) -> dict[str, tuple[int, int]]:
    locks: dict[str, int] = {}
    pairs: dict[str, tuple[int, int]] = {}
    for position, step in enumerate(order):
        if step.is_lock:
            locks[step.entity] = position
        elif step.is_unlock and step.entity in locks:
            pairs[step.entity] = (locks[step.entity], position)
    return pairs


class _ImplicitDGraph:
    """Positions of the shared entities' lock pairs on both axes."""

    def __init__(self, t1: Sequence[Step], t2: Sequence[Step]) -> None:
        pairs1 = _lock_tables(t1)
        pairs2 = _lock_tables(t2)
        self.entities = [e for e in pairs1 if e in pairs2]
        self.l1 = {}
        self.u1 = {}
        self.l2 = {}
        self.u2 = {}
        for entity in self.entities:
            self.l1[entity], self.u1[entity] = pairs1[entity]
            self.l2[entity], self.u2[entity] = pairs2[entity]

    def reach_all(self, start: str, *, forward: bool) -> bool:
        """Does *start* reach every entity (forward arcs) / is it reached
        by every entity (equivalently: reaches all in the reverse graph)?

        Forward arc  (x, y): l1[x] < u1[y]  and  l2[y] < u2[x].
        Reverse arc  (x, y) in D^R  <=>  (y, x) in D:
                      l1[y] < u1[x]  and  l2[x] < u2[y]
        which is the same dominance shape with the two axes swapped.
        """
        if forward:
            sort_key = self.l2     # prefix bound comes from u2[x]
            value_key = self.u1    # threshold comes from l1[x]
            bound_key = self.u2
            threshold_key = self.l1
        else:
            sort_key = self.l1
            value_key = self.u2
            bound_key = self.u1
            threshold_key = self.l2

        order = sorted(self.entities, key=lambda e: sort_key[e])
        index_of = {entity: i for i, entity in enumerate(order)}
        sorted_keys = [sort_key[e] for e in order]
        tree = MaxSegmentTree([float(value_key[e]) for e in order])

        import bisect

        tree.deactivate(index_of[start])
        visited = 1
        queue = [start]
        while queue:
            x = queue.pop()
            prefix_end = bisect.bisect_left(sorted_keys, bound_key[x])
            threshold = float(threshold_key[x])
            while True:
                popped = tree.extract_above(prefix_end, threshold)
                if popped is None:
                    break
                queue.append(order[popped])
                visited += 1
        return visited == len(self.entities)


def is_d_strongly_connected_fast(
    t1: Sequence[Step], t2: Sequence[Step]
) -> bool:
    """Strong connectivity of the implicit ``D(t1, t2)`` in
    ``O(n + k log k)``."""
    graph = _ImplicitDGraph(t1, t2)
    if len(graph.entities) <= 1:
        return True
    start = graph.entities[0]
    return graph.reach_all(start, forward=True) and graph.reach_all(
        start, forward=False
    )


def is_safe_total_orders_fast(t1: Sequence[Step], t2: Sequence[Step]) -> bool:
    """Centralized two-transaction safety (the single-site case of
    Theorem 2) via the near-linear implicit test."""
    return is_d_strongly_connected_fast(t1, t2)
