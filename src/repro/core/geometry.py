"""The coordinated-plane geometric method of [Yannakakis, Papadimitriou,
Kung 1979] / [Papadimitriou 1983], as used in §3 of the paper.

For two *totally ordered* transactions ``t1`` (horizontal axis) and ``t2``
(vertical axis), every entity ``x`` locked by both creates a **forbidden
rectangle** of lattice points: the states in which both transactions would
hold the lock on ``x``.  A legal schedule is a monotone lattice path from
``(0, 0)`` to ``(m1, m2)`` avoiding all forbidden points; reading the grid
lines it crosses recovers the schedule.

Proposition 1: *a schedule is not serializable iff it separates two
rectangles* — it passes below one (its transaction-1 accesses come first)
and above another.  Below/above is the bit ``b_x`` of Theorem 1's proof:

* ``b_x = 0`` — the path passes **below** the ``x``-rectangle
  (``U1x`` before ``L2x``: transaction 1 accesses ``x`` first);
* ``b_x = 1`` — the path passes **above** it (transaction 2 first).

The module provides the picture itself, bit extraction, Proposition 1
checks, and a grid-BFS that decides whether a monotone path realizing a
prescribed bit vector exists (used both to cross-validate the exact
safety decider and to extract explicit non-serializable schedules from
Theorem 2 certificates).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from ..errors import ScheduleError
from .step import Step


@dataclass(frozen=True)
class Rectangle:
    """The forbidden rectangle of one entity, in lattice-point space.

    A lattice point ``(i, j)`` (``i`` steps of ``t1`` done, ``j`` of
    ``t2``) is forbidden iff ``x_lo <= i <= x_hi and y_lo <= j <= y_hi``.
    """

    entity: str
    x_lo: int
    x_hi: int
    y_lo: int
    y_hi: int

    def contains(self, i: int, j: int) -> bool:
        return self.x_lo <= i <= self.x_hi and self.y_lo <= j <= self.y_hi


class GeometricPicture:
    """The coordinated plane of a pair of total orders (Fig. 2)."""

    def __init__(self, t1: Sequence[Step], t2: Sequence[Step]) -> None:
        self.t1 = list(t1)
        self.t2 = list(t2)
        self.m1 = len(self.t1)
        self.m2 = len(self.t2)
        # 1-based positions of each step on its axis.
        self._pos1 = {step: index + 1 for index, step in enumerate(self.t1)}
        self._pos2 = {step: index + 1 for index, step in enumerate(self.t2)}

        def lock_pairs(order: Sequence[Step]) -> dict[str, tuple[int, int]]:
            locks: dict[str, int] = {}
            pairs: dict[str, tuple[int, int]] = {}
            for index, step in enumerate(order):
                if step.is_lock:
                    locks[step.entity] = index + 1
                elif step.is_unlock and step.entity in locks:
                    pairs[step.entity] = (locks[step.entity], index + 1)
            return pairs

        pairs1 = lock_pairs(self.t1)
        pairs2 = lock_pairs(self.t2)
        self.rectangles: dict[str, Rectangle] = {}
        for entity in pairs1:
            if entity not in pairs2:
                continue
            (l1, u1), (l2, u2) = pairs1[entity], pairs2[entity]
            # Both hold the lock at point (i, j) iff l1 <= i < u1 and
            # l2 <= j < u2.
            self.rectangles[entity] = Rectangle(
                entity, l1, u1 - 1, l2, u2 - 1
            )

    # ------------------------------------------------------------------
    def position(self, axis: int, step: Step) -> int:
        """1-based position of *step* on axis 1 or 2."""
        return (self._pos1 if axis == 1 else self._pos2)[step]

    def entities(self) -> list[str]:
        """Entities locked by both total orders (rectangle owners)."""
        return list(self.rectangles)

    def is_forbidden(self, i: int, j: int) -> bool:
        """Is lattice point ``(i, j)`` inside some forbidden rectangle?"""
        return any(rect.contains(i, j) for rect in self.rectangles.values())

    # ------------------------------------------------------------------
    # Schedules as curves
    # ------------------------------------------------------------------
    def curve_of(self, interleaving: Sequence[int]) -> list[tuple[int, int]]:
        """Lattice points visited by an interleaving given as a sequence
        of axis ids (1 or 2), one per step."""
        points = [(0, 0)]
        i = j = 0
        for axis in interleaving:
            if axis == 1:
                i += 1
            else:
                j += 1
            points.append((i, j))
        if (i, j) != (self.m1, self.m2):
            raise ScheduleError(
                f"interleaving has wrong step counts: ({i}, {j}) != "
                f"({self.m1}, {self.m2})"
            )
        return points

    def is_legal_curve(self, points: Iterable[tuple[int, int]]) -> bool:
        """A curve is legal iff it never enters a forbidden rectangle."""
        return not any(self.is_forbidden(i, j) for i, j in points)

    def bits_of_curve(
        self, points: Sequence[tuple[int, int]]
    ) -> dict[str, int]:
        """The above/below bit of every rectangle for a legal curve.

        For each rectangle, find the curve point in the rectangle's
        column range; the curve is below (bit 0) iff it is under the
        rectangle there.
        """
        bits: dict[str, int] = {}
        for entity, rect in self.rectangles.items():
            bit: int | None = None
            for i, j in points:
                if rect.x_lo <= i <= rect.x_hi:
                    bit = 0 if j < rect.y_lo else 1
                    break
            if bit is None:
                # The curve jumped the column range in one vertical climb
                # at i < x_lo or i > x_hi; decide by the height at x_lo.
                height = max(j for i, j in points if i < rect.x_lo)
                bit = 1 if height > rect.y_hi else 0
            bits[entity] = bit
        return bits

    def separates_two_rectangles(
        self, points: Sequence[tuple[int, int]]
    ) -> bool:
        """Proposition 1's criterion: the curve passes below one rectangle
        and above another (⇔ the schedule is not serializable)."""
        bits = set(self.bits_of_curve(points).values())
        return bits == {0, 1}

    # ------------------------------------------------------------------
    # Path search with prescribed bits
    # ------------------------------------------------------------------
    def _forbidden_with_bits(self, bits: dict[str, int]):
        """Point predicate forbidding, per rectangle, the half-plane that
        would flip its prescribed bit.

        bit 0 (t1 first): forbid ``i < u1_pos and j >= l2_pos`` — t2 must
        not reach ``Lx`` until t1 passed ``Ux``.
        bit 1 (t2 first): symmetric.
        """
        regions: list[tuple[int, int, int, int]] = []
        for entity, bit in bits.items():
            rect = self.rectangles[entity]
            if bit == 0:
                regions.append((0, rect.x_hi, rect.y_lo, self.m2))
            else:
                regions.append((rect.x_lo, self.m1, 0, rect.y_hi))
        plain = [
            (r.x_lo, r.x_hi, r.y_lo, r.y_hi)
            for entity, r in self.rectangles.items()
            if entity not in bits
        ]
        regions.extend(plain)

        def forbidden(i: int, j: int) -> bool:
            return any(
                x_lo <= i <= x_hi and y_lo <= j <= y_hi
                for x_lo, x_hi, y_lo, y_hi in regions
            )

        return forbidden

    def find_curve_with_bits(
        self, bits: dict[str, int]
    ) -> list[tuple[int, int]] | None:
        """A monotone legal path realizing *bits*, or ``None``.

        BFS over the lattice with the bit-augmented forbidden regions;
        rectangles without a prescribed bit are merely avoided.
        """
        forbidden = self._forbidden_with_bits(bits)
        if forbidden(0, 0) or forbidden(self.m1, self.m2):
            return None
        parent: dict[tuple[int, int], tuple[int, int] | None] = {(0, 0): None}
        frontier = [(0, 0)]
        while frontier:
            new_frontier: list[tuple[int, int]] = []
            for i, j in frontier:
                for ni, nj in ((i + 1, j), (i, j + 1)):
                    if ni > self.m1 or nj > self.m2:
                        continue
                    if (ni, nj) in parent or forbidden(ni, nj):
                        continue
                    parent[(ni, nj)] = (i, j)
                    new_frontier.append((ni, nj))
            frontier = new_frontier
            if (self.m1, self.m2) in parent:
                break
        if (self.m1, self.m2) not in parent:
            return None
        path: list[tuple[int, int]] = []
        cursor: tuple[int, int] | None = (self.m1, self.m2)
        while cursor is not None:
            path.append(cursor)
            cursor = parent[cursor]
        path.reverse()
        return path

    def schedule_steps_of_curve(
        self, points: Sequence[tuple[int, int]]
    ) -> list[tuple[int, Step]]:
        """Translate a curve back into scheduled steps ``(axis, step)`` —
        "to read the schedule off any such curve we simply enumerate the
        grid lines that it intersects"."""
        result: list[tuple[int, Step]] = []
        for (i0, j0), (i1, j1) in zip(points, points[1:]):
            if i1 == i0 + 1 and j1 == j0:
                result.append((1, self.t1[i0]))
            elif j1 == j0 + 1 and i1 == i0:
                result.append((2, self.t2[j0]))
            else:
                raise ScheduleError(
                    f"curve is not a monotone unit-step path at "
                    f"({i0},{j0}) -> ({i1},{j1})"
                )
        return result

    # ------------------------------------------------------------------
    # Deadlock geometry (§6's side remark: in the centralized case
    # "deadlocks can be studied side by side with correctness [7]")
    # ------------------------------------------------------------------
    def is_deadlock_point(self, i: int, j: int) -> bool:
        """A progress state from which neither transaction can move:
        both unit successors are forbidden (boundaries never block — a
        finished transaction holds no locks)."""
        if i >= self.m1 or j >= self.m2:
            return False
        if self.is_forbidden(i, j):
            return False
        return self.is_forbidden(i + 1, j) and self.is_forbidden(i, j + 1)

    def find_deadlock_state(self) -> list[tuple[int, int]] | None:
        """A monotone legal path from (0, 0) into a deadlock point, or
        ``None`` when every reachable state can make progress.

        The returned path is the curve of the deadlocking prefix
        schedule; replaying its steps on the simulator reproduces the
        deadlock (tested in ``tests/core/test_geometry_deadlock.py``).
        """
        parent: dict[tuple[int, int], tuple[int, int] | None] = {(0, 0): None}
        frontier = [(0, 0)]
        while frontier:
            new_frontier = []
            for i, j in frontier:
                if self.is_deadlock_point(i, j):
                    path = []
                    cursor: tuple[int, int] | None = (i, j)
                    while cursor is not None:
                        path.append(cursor)
                        cursor = parent[cursor]
                    path.reverse()
                    return path
                for ni, nj in ((i + 1, j), (i, j + 1)):
                    if ni > self.m1 or nj > self.m2:
                        continue
                    if (ni, nj) in parent or self.is_forbidden(ni, nj):
                        continue
                    parent[(ni, nj)] = (i, j)
                    new_frontier.append((ni, nj))
            frontier = new_frontier
        return None

    def deadlock_possible(self) -> bool:
        """Can some legal prefix of an interleaving deadlock?"""
        return self.find_deadlock_state() is not None

    def find_nonserializable_curve(self) -> list[tuple[int, int]] | None:
        """Search for a curve separating two rectangles, trying every
        mixed bit vector that is monotone along ``D(t1, t2)``.

        Exhaustive over ancestor-closed zero-sets; exponential only in
        the number of rectangle SCCs (tiny for realistic inputs).  Used
        as geometric ground truth for the centralized safety criterion.
        """
        from ..graphs import enumerate_ancestor_closed_sets
        from .dgraph import d_graph_of_total_orders

        if len(self.rectangles) < 2:
            return None
        graph = d_graph_of_total_orders(self.t1, self.t2)
        for zero_set in enumerate_ancestor_closed_sets(graph):
            bits = {
                entity: 0 if entity in zero_set else 1
                for entity in self.rectangles
            }
            curve = self.find_curve_with_bits(bits)
            if curve is not None:
                return curve
        return None
