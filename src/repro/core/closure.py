"""Closure with respect to a dominator — Lemmas 2 and 3, Definition 3.

The heart of Theorem 2's only-if direction.  Given a dominator ``X`` of
``D(T1, T2)``, whenever three entities ``z ∈ V−X`` and ``x, y ∈ X``
satisfy

    ``Lz`` precedes ``Ux`` in ``T1``   and   ``Ly`` precedes ``Uz`` in ``T2``,

Lemma 2 shows ``x ≠ y``, ``Ux`` does not precede ``Uy`` in ``T1`` and
``Lx`` does not precede ``Ly`` in ``T2`` — so the *closure precedences*

    ``Uy`` before ``Ux`` in ``T1``     and   ``Ly`` before ``Lx`` in ``T2``

can be added without creating cycles (one triple at a time).  A system in
which every such triple already has the closure precedences is **closed
with respect to X** (Definition 3).  Lemma 3: at **two sites**, adding
the closure precedences keeps ``X`` a dominator of the strengthened
system, so repeated application terminates in a closed system ``R``;
Corollary 2 then certifies unsafeness.

At three or more sites the process may instead force a cycle in one of
the partial orders — exactly the phenomenon of the paper's four-site
Fig. 5 example, reported here as :class:`ClosureContradiction`.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from ..errors import ReproError, TransactionError
from ..obs.trace import current_span
from .dgraph import d_graph, is_dominator_of, shared_locked_entities
from .step import Step
from .transaction import Transaction


class ClosureContradiction(ReproError):
    """Closing the system w.r.t. the dominator forces a cyclic
    'partial order' — no certificate can be built from this dominator
    (possible only at three or more sites, by Lemma 3)."""


class DominatorInvariantBroken(ReproError):
    """`X` stopped being a dominator during closure.  Lemma 3 proves this
    cannot happen at two sites; raised (rather than silently mis-deciding)
    if a caller applies the two-site construction out of scope."""


@dataclass
class ClosureResult:
    """Outcome of closing ``{T1, T2}`` with respect to ``X``."""

    first: Transaction
    second: Transaction
    dominator: frozenset[str]
    added_to_first: list[tuple[Step, Step]] = field(default_factory=list)
    added_to_second: list[tuple[Step, Step]] = field(default_factory=list)
    rounds: int = 0


def closure_violations(
    first: Transaction,
    second: Transaction,
    dominator: Iterable[str],
) -> list[tuple[str, str, str]]:
    """All triples ``(z, x, y)`` violating Definition 3's closure
    conditions: the hypotheses hold but a required precedence is absent."""
    members = set(dominator)
    shared = shared_locked_entities(first, second)
    outside = [entity for entity in shared if entity not in members]
    inside = [entity for entity in shared if entity in members]
    violations: list[tuple[str, str, str]] = []
    for z in outside:
        lock1_z = first.lock_step(z)
        unlock2_z = second.unlock_step(z)
        for x in inside:
            if not first.precedes(lock1_z, first.unlock_step(x)):
                continue
            for y in inside:
                if not second.precedes(second.lock_step(y), unlock2_z):
                    continue
                ok_first = x != y and first.precedes(
                    first.unlock_step(y), first.unlock_step(x)
                )
                ok_second = x != y and second.precedes(
                    second.lock_step(y), second.lock_step(x)
                )
                if not (ok_first and ok_second):
                    violations.append((z, x, y))
    return violations


def is_closed(
    first: Transaction, second: Transaction, dominator: Iterable[str]
) -> bool:
    """Definition 3: is ``{T1, T2}`` closed with respect to *dominator*?"""
    return not closure_violations(first, second, dominator)


def close_with_respect_to(
    first: Transaction,
    second: Transaction,
    dominator: Iterable[str],
    *,
    enforce_dominator_invariant: bool = True,
    max_rounds: int | None = None,
) -> ClosureResult:
    """Iterate Lemma 2's inference until the system is closed w.r.t.
    ``X`` (Definition 3), or fail.

    Raises
    ------
    ClosureContradiction
        if a required closure precedence would create a cycle (the x = y
        degenerate case of Lemma 2, or a genuinely cyclic strengthening —
        the Fig. 5 situation).
    DominatorInvariantBroken
        if ``X`` ceases to be a dominator of the strengthened ``D`` while
        *enforce_dominator_invariant* is set (never at two sites).
    """
    members = frozenset(dominator)
    result = ClosureResult(first, second, members)
    total_steps = len(first) + len(second)
    # Each round adds at least one precedence; at most O(n^2) can exist.
    round_cap = max_rounds if max_rounds is not None else total_steps * total_steps + 1

    while True:
        violations = closure_violations(result.first, result.second, members)
        if not violations:
            sp = current_span()
            if sp:
                sp.set(closure_rounds=result.rounds)
            return result
        result.rounds += 1
        if result.rounds > round_cap:
            raise ClosureContradiction(
                f"closure did not converge within {round_cap} rounds"
            )
        # Process the whole round as a batch: every violated triple's
        # closure precedences are individually forced, so if their union
        # is cyclic the dominator admits no certificate (the Fig. 5
        # contradiction, e.g. Ux1 both before and after Ux2 in T1).
        first_tx, second_tx = result.first, result.second
        first_additions: list[tuple[Step, Step]] = []
        second_additions: list[tuple[Step, Step]] = []
        for z, x, y in violations:
            if x == y:
                raise ClosureContradiction(
                    f"closure hypotheses hold for z={z!r} with x = y = "
                    f"{x!r}; (z, x) would be an arc of D into the dominator"
                )
            unlock_pair = (first_tx.unlock_step(y), first_tx.unlock_step(x))
            lock_pair = (second_tx.lock_step(y), second_tx.lock_step(x))
            if (
                not first_tx.precedes(*unlock_pair)
                and unlock_pair not in first_additions
            ):
                first_additions.append(unlock_pair)
            if (
                not second_tx.precedes(*lock_pair)
                and lock_pair not in second_additions
            ):
                second_additions.append(lock_pair)
        try:
            if first_additions:
                result.first = first_tx.with_precedences(first_additions)
                result.added_to_first.extend(first_additions)
            if second_additions:
                result.second = second_tx.with_precedences(second_additions)
                result.added_to_second.extend(second_additions)
        except TransactionError as exc:
            raise ClosureContradiction(
                f"the closure precedences forced by dominator "
                f"{sorted(members)} are cyclic: {exc}"
            ) from exc
        if enforce_dominator_invariant:
            strengthened = d_graph(result.first, result.second)
            if not is_dominator_of(strengthened, members):
                raise DominatorInvariantBroken(
                    f"{sorted(members)} is no longer a dominator of "
                    "D(T1', T2') after closure additions (cannot happen "
                    "at two sites, by Lemma 3)"
                )
