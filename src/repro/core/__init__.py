"""The paper's model and results: databases, transactions, schedules,
the geometric method, ``D(T1, T2)``, safety deciders, certificates,
many-transaction systems and the Theorem 3 reduction."""

from .certificates import (
    UnsafenessCertificate,
    certificate_from_dominator,
    certificate_via_corollary_2,
)
from .closure import (
    ClosureContradiction,
    ClosureResult,
    close_with_respect_to,
    closure_violations,
    is_closed,
)
from .dgraph import (
    d_graph,
    d_graph_of_total_orders,
    dominators_of,
    is_d_strongly_connected,
    is_dominator_of,
    shared_locked_entities,
    some_dominator_of,
)
from .entity import DistributedDatabase
from .fastcheck import is_d_strongly_connected_fast, is_safe_total_orders_fast
from .geometry import GeometricPicture, Rectangle
from .herbrand import (
    herbrand_state_of,
    is_final_state_serializable,
    serializability_tests_agree,
)
from .multi import (
    b_graph_of_cycle,
    b_graph_of_triple,
    decide_safety_multi,
    interaction_graph,
)
from .schedule import (
    Schedule,
    ScheduledStep,
    TransactionSystem,
    all_legal_schedules,
    conflict_graph,
    find_nonserializable_schedule,
)
from .safety import (
    SafetyVerdict,
    decide_safety,
    decide_safety_exact,
    decide_safety_exhaustive,
    is_safe_sufficient,
    is_safe_two_site,
    sites_of_pair,
)
from .step import Step, StepKind, lock, unlock, update
from .transaction import Transaction, TransactionBuilder

__all__ = [
    "ClosureContradiction",
    "ClosureResult",
    "DistributedDatabase",
    "GeometricPicture",
    "Rectangle",
    "SafetyVerdict",
    "Schedule",
    "ScheduledStep",
    "Step",
    "StepKind",
    "Transaction",
    "TransactionBuilder",
    "TransactionSystem",
    "UnsafenessCertificate",
    "all_legal_schedules",
    "b_graph_of_cycle",
    "b_graph_of_triple",
    "certificate_from_dominator",
    "certificate_via_corollary_2",
    "close_with_respect_to",
    "closure_violations",
    "conflict_graph",
    "d_graph",
    "d_graph_of_total_orders",
    "decide_safety",
    "decide_safety_exact",
    "decide_safety_exhaustive",
    "decide_safety_multi",
    "dominators_of",
    "find_nonserializable_schedule",
    "herbrand_state_of",
    "interaction_graph",
    "is_closed",
    "is_d_strongly_connected_fast",
    "is_d_strongly_connected",
    "is_dominator_of",
    "is_final_state_serializable",
    "is_safe_sufficient",
    "is_safe_total_orders_fast",
    "is_safe_two_site",
    "lock",
    "serializability_tests_agree",
    "shared_locked_entities",
    "sites_of_pair",
    "some_dominator_of",
    "unlock",
    "update",
]
