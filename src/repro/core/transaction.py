"""Distributed locked transactions, paper §2.

    "A transaction is a triple T = (S, A, e), where S is a set of steps,
    (S, A) is a partial order on S, and e: S → E is the modifies function
    [...] An important restriction is that transactions are totally
    ordered at each site."

A :class:`Transaction` couples a step set with a partial order and a
:class:`~repro.core.entity.DistributedDatabase`, and validates, on
construction, every structural rule the paper imposes:

* the precedence relation is a partial order (acyclic);
* steps on entities stored at the same site are totally ordered;
* locking discipline: at most one ``Lx``–``Ux`` pair per entity, the lock
  preceding the unlock, at least one update on ``x`` between them, and no
  update on ``x`` outside such a pair.

Use :class:`TransactionBuilder` to assemble transactions: it maintains
the per-site chains automatically (guaranteeing the total-order-per-site
restriction by construction) and accepts explicit cross-site precedences.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from ..errors import LockingError, SiteOrderError, TransactionError
from ..posets import NotAPartialOrderError, Poset, linear_extensions
from .entity import DistributedDatabase
from .step import Step, StepKind


class Transaction:
    """An immutable distributed locked transaction."""

    def __init__(
        self,
        name: str,
        database: DistributedDatabase,
        steps: Sequence[Step],
        precedences: Iterable[tuple[Step, Step]] = (),
        *,
        validate_locking: bool = True,
    ) -> None:
        if not name:
            raise TransactionError("transactions need a nonempty name")
        if len(set(steps)) != len(steps):
            raise TransactionError(f"{name}: duplicate steps in step list")
        self.name = name
        self.database = database
        self._steps = list(steps)
        try:
            self._poset = Poset(self._steps, precedences)
        except NotAPartialOrderError as exc:
            raise TransactionError(
                f"{name}: precedence relation is not a partial order ({exc})"
            ) from exc
        except KeyError as exc:
            raise TransactionError(f"{name}: {exc}") from exc
        self._validate_entities()
        self._validate_site_total_orders()
        if validate_locking:
            self._validate_locking()
        self._lock_steps = {
            step.entity: step for step in self._steps if step.is_lock
        }
        self._unlock_steps = {
            step.entity: step for step in self._steps if step.is_unlock
        }

    # ------------------------------------------------------------------
    # Validation of the paper's constraints
    # ------------------------------------------------------------------
    def _validate_entities(self) -> None:
        for step in self._steps:
            if step.entity not in self.database:
                raise TransactionError(
                    f"{self.name}: step {step} touches entity "
                    f"{step.entity!r} not in the database"
                )

    def _validate_site_total_orders(self) -> None:
        by_site: dict[int, list[Step]] = {}
        for step in self._steps:
            by_site.setdefault(self.database.site_of(step.entity), []).append(step)
        for site, site_steps in by_site.items():
            for i, a in enumerate(site_steps):
                for b in site_steps[i + 1 :]:
                    if not self._poset.comparable(a, b):
                        raise SiteOrderError(
                            f"{self.name}: steps {a} and {b} are both at "
                            f"site {site} but are unordered"
                        )

    def _validate_locking(self) -> None:
        locks: dict[str, list[Step]] = {}
        unlocks: dict[str, list[Step]] = {}
        updates: dict[str, list[Step]] = {}
        for step in self._steps:
            bucket = {
                StepKind.LOCK: locks,
                StepKind.UNLOCK: unlocks,
                StepKind.UPDATE: updates,
            }[step.kind]
            bucket.setdefault(step.entity, []).append(step)
        for entity, steps in locks.items():
            if len(steps) > 1:
                raise LockingError(
                    f"{self.name}: more than one lock step on {entity!r}"
                )
        for entity, steps in unlocks.items():
            if len(steps) > 1:
                raise LockingError(
                    f"{self.name}: more than one unlock step on {entity!r}"
                )
        for entity in set(locks) ^ set(unlocks):
            raise LockingError(
                f"{self.name}: entity {entity!r} has a lock or unlock step "
                "without its partner (steps appear only as Lx-Ux pairs)"
            )
        for entity in locks:
            lock_step, unlock_step = locks[entity][0], unlocks[entity][0]
            if not self._poset.precedes(lock_step, unlock_step):
                raise LockingError(
                    f"{self.name}: L{entity} does not precede U{entity}"
                )
            between = [
                upd
                for upd in updates.get(entity, [])
                if self._poset.precedes(lock_step, upd)
                and self._poset.precedes(upd, unlock_step)
            ]
            if not between:
                raise LockingError(
                    f"{self.name}: no update step on {entity!r} between "
                    f"L{entity} and U{entity} (superfluous locking)"
                )
        for entity, steps in updates.items():
            if entity not in locks:
                raise LockingError(
                    f"{self.name}: update on {entity!r} without a "
                    "surrounding lock-unlock pair"
                )
            lock_step, unlock_step = locks[entity][0], unlocks[entity][0]
            for upd in steps:
                if not (
                    self._poset.precedes(lock_step, upd)
                    and self._poset.precedes(upd, unlock_step)
                ):
                    raise LockingError(
                        f"{self.name}: update {upd} not surrounded by "
                        f"L{entity}-U{entity}"
                    )

    # ------------------------------------------------------------------
    # Step and order queries
    # ------------------------------------------------------------------
    @property
    def steps(self) -> list[Step]:
        """All steps, in insertion order."""
        return list(self._steps)

    def __len__(self) -> int:
        return len(self._steps)

    def __contains__(self, step: Step) -> bool:
        return step in self._poset

    def __repr__(self) -> str:
        return f"Transaction({self.name!r}, steps={len(self._steps)})"

    def poset(self) -> Poset:
        """The step partial order (the pair ``(S, A)`` of the paper)."""
        return self._poset

    def precedes(self, a: Step, b: Step) -> bool:
        """Strict precedence in the transaction's partial order
        (the paper's ``a >_i b`` notation, transitively closed)."""
        return self._poset.precedes(a, b)

    def concurrent(self, a: Step, b: Step) -> bool:
        """True iff the two steps are unordered ("steps can be
        concurrent", §4)."""
        return self._poset.concurrent(a, b)

    def lock_step(self, entity: str) -> Step | None:
        """The unique ``L entity`` step, if any."""
        return self._lock_steps.get(entity)

    def unlock_step(self, entity: str) -> Step | None:
        """The unique ``U entity`` step, if any."""
        return self._unlock_steps.get(entity)

    def locked_entities(self) -> list[str]:
        """Entities this transaction locks (and therefore updates)."""
        return list(self._lock_steps)

    def update_steps(self, entity: str | None = None) -> list[Step]:
        """Update steps, optionally restricted to one entity."""
        return [
            step
            for step in self._steps
            if step.is_update and (entity is None or step.entity == entity)
        ]

    def sites_used(self) -> set[int]:
        """The sites at which this transaction has steps."""
        return {
            self.database.site_of(step.entity) for step in self._steps
        }

    def steps_at_site(self, site: int) -> list[Step]:
        """The steps at *site*, in their (total) site order."""
        site_steps = [
            step
            for step in self._steps
            if self.database.site_of(step.entity) == site
        ]
        site_steps.sort(
            key=lambda step: sum(
                1 for other in site_steps if self._poset.precedes(other, step)
            )
        )
        return site_steps

    def is_totally_ordered(self) -> bool:
        """True iff the transaction is a chain (centralized-style)."""
        return self._poset.is_total()

    # ------------------------------------------------------------------
    # Derived transactions and extensions
    # ------------------------------------------------------------------
    def with_precedences(
        self, extra: Iterable[tuple[Step, Step]]
    ) -> "Transaction":
        """This transaction strengthened with extra precedences — the
        ``T' = T + (a before b)`` operation the Theorem 2 closure uses.
        Raises :class:`TransactionError` if the result is cyclic."""
        return Transaction(
            self.name,
            self.database,
            self._steps,
            list(self._poset.arcs()) + list(extra),
        )

    def linear_extensions(
        self, limit: int | None = None
    ) -> Iterator[list[Step]]:
        """Enumerate the total orders ``t ∈ T`` (paper §2: a transaction
        can be thought of as the set of total orders compatible with it)."""
        return linear_extensions(self._poset, limit=limit)

    def a_linear_extension(self, key=None) -> list[Step]:
        """One linear extension, optionally greedy on *key* (used by the
        certificate construction's priority topological sorts)."""
        return self._poset.a_linear_extension(key=key)

    def is_linear_extension(self, order: Sequence[Step]) -> bool:
        """Is *order* a total order compatible with this transaction?"""
        return self._poset.is_linear_extension(order)

    def canonical_form(self) -> tuple:
        """A deterministic, name-independent description of the
        transaction's structure: its steps (with the site each entity is
        stored at) and the full strict precedence relation, both in a
        canonical sort order.

        Two transactions have equal canonical forms iff they perform the
        same steps on the same entities (stored at the same sites) under
        the same partial order — regardless of transaction name, step
        insertion order, or which generating arcs were supplied.  Safety
        of a pair depends only on the canonical forms of its members,
        which is what makes the form usable as a verdict-sharing cache
        key (:mod:`repro.service.fingerprint`).
        """
        encode = {
            step: (step.kind.value, step.entity, step.seq)
            for step in self._steps
        }
        steps = tuple(sorted(encode.values()))
        sites = tuple(
            sorted(
                (entity, self.database.site_of(entity))
                for entity in {step.entity for step in self._steps}
            )
        )
        order = tuple(
            sorted(
                (encode[a], encode[b])
                for a in self._steps
                for b in self._steps
                if a != b and self._poset.precedes(a, b)
            )
        )
        return (steps, sites, order)

    def describe(self) -> str:
        """Human-readable rendering: per-site chains plus cross-site arcs."""
        lines = [f"Transaction {self.name}"]
        for site in sorted(self.sites_used()):
            chain = " -> ".join(str(step) for step in self.steps_at_site(site))
            lines.append(f"  site {site}: {chain}")
        cover = self._poset.cover_graph()
        cross = [
            f"  {tail} -> {head}"
            for tail, head in cover.arcs()
            if not self.database.same_site(tail.entity, head.entity)
        ]
        if cross:
            lines.append("  cross-site precedences:")
            lines.extend(cross)
        return "\n".join(lines)


class TransactionBuilder:
    """Incremental construction of a :class:`Transaction`.

    Steps appended through :meth:`lock` / :meth:`update` / :meth:`unlock`
    are automatically chained after the previous step *at the same site*,
    so the per-site total-order restriction holds by construction.
    Cross-site orderings are added with :meth:`precede`.
    """

    def __init__(self, name: str, database: DistributedDatabase) -> None:
        self.name = name
        self.database = database
        self._steps: list[Step] = []
        self._precedences: list[tuple[Step, Step]] = []
        self._site_tail: dict[int, Step] = {}
        self._update_counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    def _append(self, step: Step) -> Step:
        if step in self._steps:
            raise TransactionError(
                f"{self.name}: step {step} added twice"
            )
        site = self.database.site_of(step.entity)
        previous = self._site_tail.get(site)
        self._steps.append(step)
        if previous is not None:
            self._precedences.append((previous, step))
        self._site_tail[site] = step
        return step

    def lock(self, entity: str) -> Step:
        """Append ``L entity`` at the entity's site."""
        return self._append(Step(StepKind.LOCK, entity))

    def unlock(self, entity: str) -> Step:
        """Append ``U entity`` at the entity's site."""
        return self._append(Step(StepKind.UNLOCK, entity))

    def update(self, entity: str) -> Step:
        """Append an update step at the entity's site."""
        seq = self._update_counts.get(entity, 0)
        self._update_counts[entity] = seq + 1
        return self._append(Step(StepKind.UPDATE, entity, seq))

    def access(self, entity: str) -> tuple[Step, Step, Step]:
        """Convenience: ``L entity; update entity; U entity`` in a row."""
        return self.lock(entity), self.update(entity), self.unlock(entity)

    def precede(self, before: Step, after: Step) -> None:
        """Record the (typically cross-site) precedence *before* → *after*."""
        self._precedences.append((before, after))

    def build(self, *, validate_locking: bool = True) -> Transaction:
        """Validate everything and produce the immutable transaction."""
        return Transaction(
            self.name,
            self.database,
            self._steps,
            self._precedences,
            validate_locking=validate_locking,
        )
