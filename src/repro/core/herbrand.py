"""Final-state serializability under all interpretations — the paper's
actual definition, checked symbolically.

§2 gives each update step ``s`` the semantics

    temp_s := e(s);   e(s) := f_s(temp_{s1}, ..., temp_{sk})

where ``s1, ..., sk`` are all steps preceding ``s`` in its transaction
(including ``s`` itself), and calls a schedule *serializable* iff it is
equivalent to a serial schedule **under all interpretations of the
update functions** ``f_s``.  Equivalence under all interpretations is
Herbrand equivalence: interpret every ``f_s`` as a free function symbol
and compare the resulting final-state expressions.

The library's working serializability test is conflict-graph
acyclicity (:meth:`Schedule.is_serializable`), which is the standard
equivalent for this model.  This module makes that equivalence a
*checked theorem* rather than an assumption: it evaluates schedules
symbolically and compares against every serial order
(:func:`is_final_state_serializable`), and the test suite asserts
agreement with the conflict test on exhaustive small-system sweeps.
"""

from __future__ import annotations

from itertools import permutations

from .schedule import Schedule, ScheduledStep
from .step import Step


def _herbrand_final_state(
    schedule_steps: list[ScheduledStep],
    system,
) -> dict[str, object]:
    """Symbolic final value of every entity after running the steps.

    Values are nested tuples (hashable Herbrand terms):

    * initial value of entity ``x`` — ``("init", x)``;
    * value written by update step ``s`` of transaction ``T`` —
      ``("f", T, s, ((s1, temp_{s1}), ..., (sk, temp_{sk})))`` where
      ``s1, ..., sk`` are the update steps preceding ``s`` **in T's
      partial order** (including ``s`` itself, §2), in a canonical
      order, and ``temp_{si}`` is the value step ``si`` read in this
      schedule.  The argument set is fixed by the transaction; only the
      temps vary with the interleaving — exactly the paper's
      ``e(s) := f_s(temp_{s1}, ..., temp_{sk})``.
    """
    # Fixed per transaction: each update's partial-order predecessors.
    argument_steps: dict[tuple[str, Step], list[Step]] = {}
    for tx in system.transactions:
        updates = [step for step in tx.steps if step.is_update]
        for step in updates:
            preceding = [
                other
                for other in updates
                if other == step or tx.precedes(other, step)
            ]
            preceding.sort(key=str)
            argument_steps[(tx.name, step)] = preceding

    current: dict[str, object] = {}
    temps: dict[tuple[str, Step], object] = {}

    for item in schedule_steps:
        step = item.step
        if not step.is_update:
            continue
        entity = step.entity
        temps[(item.transaction, step)] = current.get(
            entity, ("init", entity)
        )
        arguments = tuple(
            (str(argument), temps[(item.transaction, argument)])
            for argument in argument_steps[(item.transaction, step)]
            if (item.transaction, argument) in temps
        )
        current[entity] = ("f", item.transaction, str(step), arguments)
    # Entities never updated keep their initial value.
    for entity in system.database.entities:
        current.setdefault(entity, ("init", entity))
    return current


def herbrand_state_of(schedule: Schedule) -> dict[str, object]:
    """The symbolic final state of a legal schedule."""
    return _herbrand_final_state(list(schedule.steps), schedule.system)


def is_final_state_serializable(schedule: Schedule) -> bool:
    """The paper's definition, decided directly: does some serial order
    produce the identical Herbrand final state?

    Exponential in the number of transactions (tries every serial
    permutation); intended for validation on small systems.
    """
    target = herbrand_state_of(schedule)
    system = schedule.system
    for order in permutations(system.names):
        serial = system.serial_schedule(list(order))
        if herbrand_state_of(serial) == target:
            return True
    return False


def serializability_tests_agree(schedule: Schedule) -> bool:
    """Does the conflict test match the definitional Herbrand test on
    this schedule?  (Exposed for sweeps and property tests.)"""
    return schedule.is_serializable() == is_final_state_serializable(
        schedule
    )
