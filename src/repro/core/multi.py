"""Many-transaction systems — Section 6 / Proposition 2 of the paper.

For a distributed system ``T = {T1, ..., Tk}``:

* ``G`` is the (undirected) *interaction graph*: an edge ``[Ti, Tj]`` iff
  the two transactions lock-unlock a common entity;
* for each directed length-two path ``(Ti, Tj, Tk)`` of ``G``, the digraph
  ``B_ijk`` has a node ``x_ij`` for each entity ``x`` locked by ``Ti`` and
  ``Tj``, a node ``y_jk`` for each entity ``y`` locked by ``Tj`` and
  ``Tk``, and arcs (all read off the *middle* transaction ``Tj``):

  - ``(x_ij, y_jk)``  iff ``Lx`` precedes ``Uy``  in ``Tj``,
  - ``(x_ij, x'_ij)`` iff ``Lx`` precedes ``Lx'`` in ``Tj``,
  - ``(y_jk, y'_jk)`` iff ``Uy`` precedes ``Uy'`` in ``Tj``.

Proposition 2: **T is safe iff (a) every two-transaction subsystem is
safe, and (b) for each directed cycle ``c`` of ``G``, the union ``B_c``
of the ``B_ijk`` over the consecutive triples of ``c`` has a cycle.**

Nodes are shared between consecutive triples through their
``(entity, {i, j})`` identity, so the union is well defined.  Directed
cycles of length two are the two-transaction subsystems themselves and
are covered by condition (a); the enumeration in
:func:`decide_safety_multi` therefore ranges over directed cycles of
length at least three (each undirected cycle in both traversal
directions, since ``B_ijk`` depends on the direction).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..graphs import DiGraph, has_cycle, simple_cycles
from ..obs import trace
from .schedule import TransactionSystem
from .transaction import Transaction


def interaction_graph(system: TransactionSystem) -> DiGraph:
    """``G`` as a symmetric digraph (edge = arcs both ways)."""
    graph = DiGraph(system.names)
    transactions = system.transactions
    for i, first in enumerate(transactions):
        locked_first = set(first.locked_entities())
        for second in transactions[i + 1 :]:
            if locked_first & set(second.locked_entities()):
                graph.add_arc(first.name, second.name)
                graph.add_arc(second.name, first.name)
    return graph


BNode = tuple[str, frozenset[str]]


def b_graph_of_triple(
    left: Transaction, middle: Transaction, right: Transaction
) -> DiGraph:
    """``B_ijk`` for the directed path ``(left, middle, right)``."""
    pair_lm = frozenset({left.name, middle.name})
    pair_mr = frozenset({middle.name, right.name})
    shared_lm = sorted(
        set(left.locked_entities()) & set(middle.locked_entities())
    )
    shared_mr = sorted(
        set(middle.locked_entities()) & set(right.locked_entities())
    )
    graph = DiGraph()
    for entity in shared_lm:
        graph.add_node((entity, pair_lm))
    for entity in shared_mr:
        graph.add_node((entity, pair_mr))
    # (x_ij, y_jk) iff Lx precedes Uy in Tj.
    for x in shared_lm:
        lock_x = middle.lock_step(x)
        for y in shared_mr:
            if middle.precedes(lock_x, middle.unlock_step(y)):
                graph.add_arc((x, pair_lm), (y, pair_mr))
    # (x_ij, x'_ij) iff Lx precedes Lx' in Tj.
    for x in shared_lm:
        for x2 in shared_lm:
            if x != x2 and middle.precedes(
                middle.lock_step(x), middle.lock_step(x2)
            ):
                graph.add_arc((x, pair_lm), (x2, pair_lm))
    # (y_jk, y'_jk) iff Uy precedes Uy' in Tj.
    for y in shared_mr:
        for y2 in shared_mr:
            if y != y2 and middle.precedes(
                middle.unlock_step(y), middle.unlock_step(y2)
            ):
                graph.add_arc((y, pair_mr), (y2, pair_mr))
    return graph


def b_graph_of_cycle(
    system: TransactionSystem, cycle: Sequence[str]
) -> DiGraph:
    """``B_c``: the union of ``B_ijk`` over all consecutive triples of the
    directed cycle *cycle* (given without the repeated final node)."""
    union = DiGraph()
    length = len(cycle)
    for index in range(length):
        left = system[cycle[index]]
        middle = system[cycle[(index + 1) % length]]
        right = system[cycle[(index + 2) % length]]
        triple = b_graph_of_triple(left, middle, right)
        for node in triple.nodes():
            union.add_node(node)
        for tail, head in triple.arcs():
            union.add_arc(tail, head)
    return union


def directed_cycles_of_interaction_graph(
    system: TransactionSystem, *, limit: int | None = None
):
    """Directed cycles of ``G`` with length >= 3 (both directions of each
    undirected cycle appear)."""
    graph = interaction_graph(system)
    for cycle in simple_cycles(graph, limit=limit):
        if len(cycle) >= 3:
            yield cycle


def decide_safety_multi(system: TransactionSystem, *, cycle_limit: int | None = None):
    """Proposition 2's decision procedure for ``k >= 3`` transactions.

    Condition (a) uses the strongest pair decider (Theorem 2 at two
    sites, exact bit-vector search otherwise); condition (b) checks that
    ``B_c`` has a cycle for every directed cycle of ``G``.
    """
    from .safety import SafetyVerdict, decide_safety

    transactions = system.transactions
    # (a) every two-transaction subsystem safe.
    with trace.span("multi.pairs") as sp:
        if sp:
            sp.set(transactions=len(transactions))
        for i, first in enumerate(transactions):
            for second in transactions[i + 1 :]:
                sub = TransactionSystem([first, second])
                verdict = decide_safety(sub, want_certificate=False)
                if not verdict.safe:
                    return SafetyVerdict(
                        safe=False,
                        method="proposition-2",
                        detail=(
                            f"two-transaction subsystem "
                            f"{{{first.name}, {second.name}}} is unsafe: "
                            f"{verdict.detail}"
                        ),
                        witness=verdict.witness,
                        certificate=verdict.certificate,
                    )
    # (b) every directed cycle's B_c has a cycle.
    checked = 0
    with trace.span("multi.cycles") as sp:
        for cycle in directed_cycles_of_interaction_graph(
            system, limit=cycle_limit
        ):
            checked += 1
            if not has_cycle(b_graph_of_cycle(system, cycle)):
                if sp:
                    sp.set(cycles_checked=checked)
                return SafetyVerdict(
                    safe=False,
                    method="proposition-2",
                    detail=(
                        f"B_c is acyclic for the interaction-graph cycle "
                        f"{' -> '.join(cycle)}"
                    ),
                )
        if sp:
            sp.set(cycles_checked=checked)
    return SafetyVerdict(
        safe=True,
        method="proposition-2",
        detail=(
            f"all pairs safe and B_c cyclic for each of {checked} "
            "interaction-graph cycles"
        ),
    )
