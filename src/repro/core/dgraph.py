"""The conflict digraph ``D(T1, T2)`` of Definition 1, and its dominators.

    "For a transaction pair {T1, T2} let D(T1, T2) be the directed graph
    (V, A), where
      (1) V is the set of all entities locked-unlocked by both T1 and T2,
      (2) (x, y) ∈ A iff Lx precedes Uy in T1, and Ly precedes Ux in T2."

Geometrically (Fig. 4): ``(x, y)`` is an arc iff in *every* compatible
pair of total orders the upper-left corner of the ``x``-rectangle lies
above-left of the lower-right corner of the ``y``-rectangle — which
forces any legal curve's bits to satisfy ``b_x <= b_y``.

Strong connectivity of ``D`` is sufficient for safety at any number of
sites (Theorem 1), and exactly characterizes safety for one- and
two-site systems (Theorem 2).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from ..graphs import (
    DiGraph,
    dominators as _graph_dominators,
    is_dominator as _is_dominator,
    is_strongly_connected,
    some_dominator as _some_dominator,
)
from .step import Step
from .transaction import Transaction


def shared_locked_entities(first: Transaction, second: Transaction) -> list[str]:
    """``V``: entities locked-unlocked by both transactions, in the first
    transaction's insertion order."""
    second_locked = set(second.locked_entities())
    return [
        entity
        for entity in first.locked_entities()
        if entity in second_locked
    ]


def d_graph(first: Transaction, second: Transaction) -> DiGraph:
    """Build ``D(T1, T2)`` per Definition 1 (no self-loops).

    Cost: ``O(k^2)`` precedence queries over ``k`` shared entities, each
    O(1) after the transactions' transitive closures are built — within
    the ``O(n^2)`` bound of Corollary 1.
    """
    entities = shared_locked_entities(first, second)
    graph = DiGraph(entities)
    for x in entities:
        lock1_x = first.lock_step(x)
        unlock2_x = second.unlock_step(x)
        for y in entities:
            if x == y:
                continue
            unlock1_y = first.unlock_step(y)
            lock2_y = second.lock_step(y)
            if first.precedes(lock1_x, unlock1_y) and second.precedes(
                lock2_y, unlock2_x
            ):
                graph.add_arc(x, y)
    return graph


def d_graph_of_total_orders(
    t1: Sequence[Step], t2: Sequence[Step]
) -> DiGraph:
    """``D(t1, t2)`` for two total orders given as step sequences."""
    pos1 = {step: index for index, step in enumerate(t1)}
    pos2 = {step: index for index, step in enumerate(t2)}

    def lock_pair(pos: dict[Step, int], entity: str):
        lock = next(
            (s for s in pos if s.is_lock and s.entity == entity), None
        )
        unlock = next(
            (s for s in pos if s.is_unlock and s.entity == entity), None
        )
        return lock, unlock

    entities1 = {s.entity for s in t1 if s.is_lock}
    entities2 = {s.entity for s in t2 if s.is_lock}
    shared = [e for e in dict.fromkeys(s.entity for s in t1) if e in entities1 and e in entities2]
    graph = DiGraph(shared)
    pairs1 = {e: lock_pair(pos1, e) for e in shared}
    pairs2 = {e: lock_pair(pos2, e) for e in shared}
    for x in shared:
        for y in shared:
            if x == y:
                continue
            lock1_x, _ = pairs1[x]
            _, unlock1_y = pairs1[y]
            lock2_y, _ = pairs2[y]
            _, unlock2_x = pairs2[x]
            if None in (lock1_x, unlock1_y, lock2_y, unlock2_x):
                continue
            if pos1[lock1_x] < pos1[unlock1_y] and pos2[lock2_y] < pos2[unlock2_x]:
                graph.add_arc(x, y)
    return graph


def is_d_strongly_connected(first: Transaction, second: Transaction) -> bool:
    """Theorem 1's hypothesis. A ``D`` with fewer than two vertices is
    trivially strongly connected (no two rectangles to separate)."""
    return is_strongly_connected(d_graph(first, second))


def dominators_of(graph: DiGraph, limit: int | None = None) -> Iterator[frozenset]:
    """All dominators of ``D`` (Definition 2): nonempty proper subsets of
    the vertices with no incoming arcs from the complement."""
    return _graph_dominators(graph, limit=limit)


def some_dominator_of(graph: DiGraph) -> frozenset | None:
    """A canonical dominator (a source SCC), or ``None`` when strongly
    connected — the paper: "a directed graph has a dominator iff it is
    not strongly connected"."""
    return _some_dominator(graph)


def is_dominator_of(graph: DiGraph, candidate: set | frozenset) -> bool:
    """Definition 2, checked directly."""
    return _is_dominator(graph, candidate)
