"""Typed exceptions for the whole package.

The paper's model (§2) imposes structural constraints on databases,
transactions and schedules; each violated constraint raises a dedicated
exception so callers (and the failure-injection tests) can tell exactly
which rule broke.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ModelError(ReproError, ValueError):
    """A structural violation of the paper's model (§2)."""


class DatabaseError(ModelError):
    """Invalid distributed database definition (entities/sites/stored-at)."""


class TransactionError(ModelError):
    """Invalid transaction: bad partial order or step structure."""


class LockingError(TransactionError):
    """Violation of the paper's locking constraints: at most one Lx-Ux
    pair per entity, lock before unlock, at least one update between
    them, and no update outside its pair."""


class SiteOrderError(TransactionError):
    """Steps on entities stored at the same site are not totally ordered
    (the paper's distribution restriction, §2)."""


class ScheduleError(ModelError):
    """A step sequence that is not a legal schedule: it contradicts a
    transaction's partial order or violates lock exclusion."""


class CertificateError(ReproError):
    """An unsafeness certificate failed verification."""


class ReductionError(ReproError):
    """The Theorem 3 reduction was fed a formula outside the restricted
    CNF form it requires."""


class AdmissionError(ReproError):
    """A protocol-level mistake against the admission service
    (:mod:`repro.service`): duplicate transaction name, database
    mismatch, or eviction of an unknown transaction.  Distinct from a
    *rejection*, which is a normal decision outcome."""


class AdmissionTimeout(AdmissionError):
    """One admission exceeded its wall-clock budget
    (:class:`~repro.service.AdmissionRegistry` ``admission_timeout``).
    The registry is left unchanged; the caller may retry or shed the
    request."""


class VettingBudgetError(AdmissionError):
    """An admission's Proposition-2 cycle vetting hit its deterministic
    work bound (:class:`~repro.service.AdmissionRegistry`
    ``cycle_limit``) before reaching a verdict.  The registry is left
    unchanged; safety of the extension is *undecided*, never assumed."""


class TrafficSpecError(ReproError):
    """An invalid traffic-model spec (:mod:`repro.workloads.traffic`):
    unknown keys, an unknown key distribution or arrival process,
    malformed latency matrix, or out-of-range knobs."""


class FaultPlanError(ReproError):
    """An invalid fault-injection plan (:mod:`repro.faults`): unknown
    site or transaction, malformed times, or an unknown crash
    semantics / deadlock-resolution policy."""
