"""Replicated sites: leased leaders, log shipping, failover.

The cluster runtime (:mod:`repro.cluster`) keeps the paper's
assumption that every site stays up — a permanent
:class:`~repro.faults.plan.SiteCrash` leaves its history unreachable
and the audit incomplete.  This package removes the assumption:

* :class:`~repro.replica.group.ReplicaGroup` — N
  :class:`~repro.replica.server.ReplicaServer` replicas stand in for
  each logical site, addressed ``site * 1000 + index``;
* a lease-based leader serves clients and ships every lock-table
  mutation to its followers (:class:`~repro.replica.log.
  ReplicationLog`), awaiting acks before acknowledging a commit;
* :class:`~repro.replica.resolver.LeaderResolver` routes
  :class:`~repro.cluster.coordinator.Coordinator` traffic to the
  current leader and, with the coordinator's idempotent step replay,
  carries in-flight transactions across a failover;
* :class:`~repro.replica.faults.ReplicaFaultAdapter` reinterprets
  fault-plan site crashes as *leader kills*, so existing chaos plans
  become availability experiments;
* :func:`~repro.replica.runtime.run_replicated_cluster` boots it all,
  audits serializability exactly like a plain cluster run, and
  measures recovery time in shared-logical-clock steps.

Protocol and failure semantics are documented in
``docs/replication.md``.
"""

from .clock import LogicalClock
from .faults import ReplicaFaultAdapter
from .group import GroupRegistry, ReplicaGroup, logical_site_of, replica_address
from .log import ReplicationLog
from .resolver import LeaderResolver
from .runtime import ReplicaReport, run_replicated_cluster, run_replicated_sync
from .server import ReplicaServer

__all__ = [
    "LogicalClock",
    "ReplicaFaultAdapter",
    "GroupRegistry",
    "ReplicaGroup",
    "logical_site_of",
    "replica_address",
    "ReplicationLog",
    "LeaderResolver",
    "ReplicaReport",
    "run_replicated_cluster",
    "run_replicated_sync",
    "ReplicaServer",
]
