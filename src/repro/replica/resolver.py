"""Client-side leader discovery for replicated sites.

A :class:`LeaderResolver` is shared by every
:class:`~repro.cluster.coordinator.Coordinator` of a run.  It maps a
logical site id to the transport address of the replica currently
holding that site's lease, caching aggressively: the common case is one
``leader`` query per site per run.  When a request to the cached
address fails (connection refused, wall-clock timeout, a ``not-leader``
redirect) the coordinator calls :meth:`invalidate`, and the next
:meth:`resolve` re-queries the group round-robin — carrying the dead
address as a *suspect* hint, which is what licenses a follower to
campaign before its lease view expires (see :meth:`repro.replica.
server.ReplicaServer._on_leader`).

Everything here speaks the wire protocol, never shared memory, so the
same resolver drives memory-transport tests and TCP deployments.
"""

from __future__ import annotations

import asyncio

from ..cluster import protocol
from ..cluster.transport import Transport, TransportError


class LeaderResolver:
    """Cached site -> leader-address lookup over ``leader`` queries."""

    def __init__(
        self,
        transport: Transport,
        addresses: dict[int, tuple[int, ...]],
        *,
        query_timeout: float = 0.25,
    ) -> None:
        self.transport = transport
        #: Logical site -> every replica address of its group.
        self.addresses = {site: tuple(addrs) for site, addrs in addresses.items()}
        self.query_timeout = query_timeout
        self._cache: dict[int, int] = {}
        self._suspect: dict[int, int] = {}
        self._offset: dict[int, int] = {}

    # ------------------------------------------------------------------
    def invalidate(self, site: int, hint: int | None = None) -> None:
        """Forget *site*'s cached leader; it stopped behaving like one.

        The forgotten address becomes the group's *suspect* until a new
        leader is resolved.  A *hint* (the ``leader`` field of a
        ``not-leader`` redirect) short-circuits the next resolve.
        """
        dead = self._cache.pop(site, None)
        if dead is not None and dead != hint:
            self._suspect[site] = dead
        if hint is not None and hint != self._suspect.get(site):
            self._cache[site] = int(hint)

    async def resolve(self, site: int) -> int:
        """The current leader address of *site* (cached or queried)."""
        cached = self._cache.get(site)
        if cached is not None:
            return cached
        addrs = self.addresses[site]
        suspect = self._suspect.get(site)
        start = self._offset.get(site, 0)
        for i in range(len(addrs)):
            address = addrs[(start + i) % len(addrs)]
            self._offset[site] = (start + i + 1) % len(addrs)
            if address == suspect and len(addrs) > 1:
                continue
            reply = await self._query(address, suspect)
            if reply is None:
                continue
            leader = reply.get("leader")
            if leader is None:
                continue
            leader = int(leader)
            if leader == suspect and len(addrs) > 1:
                # A follower that has not yet noticed its leader died.
                continue
            self._cache[site] = leader
            self._suspect.pop(site, None)
            return leader
        raise TransportError(f"no replica of site {site} answered a leader query")

    async def _query(self, address: int, suspect: int | None) -> dict | None:
        """One-shot ``leader`` request; ``None`` on any failure."""
        try:
            connection = await self.transport.connect(address)
        except TransportError:
            return None
        try:
            fields = {"suspect": suspect} if suspect is not None else {}
            await connection.send(protocol.request("leader", 1, **fields))
            return await asyncio.wait_for(connection.recv(), self.query_timeout)
        except (asyncio.TimeoutError, TransportError):
            return None
        finally:
            await connection.close()
