"""The cluster-wide logical clock leases are measured against.

Replication needs one notion of elapsed "time" that is deterministic
under the memory transport: the number of protocol messages the whole
cluster has processed.  Every :class:`~repro.replica.server.
ReplicaServer` of a run shares one :class:`LogicalClock` and ticks it
once per inbound message; lease grants and expiries are plain integer
comparisons against it, so two runs of the same seeded workload elect
and expire leaders at exactly the same points.

A crashed replica's stall loop deliberately does **not** tick this
clock (see :meth:`repro.replica.server.ReplicaServer._fault_gate`):
time is advanced by the traffic of live replicas, never by a dead
server spinning in place.
"""

from __future__ import annotations


class LogicalClock:
    """A shared monotone message counter."""

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0

    def tick(self) -> int:
        """Advance by one processed message; returns the new time."""
        self.now += 1
        return self.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LogicalClock(now={self.now})"
