"""Replica groups: N servers standing in for one logical site.

A :class:`ReplicaGroup` is the bookkeeping for one logical site's
replicas: their transport addresses, who currently holds the lease (and
under which epoch), and the election/failover history the runtime turns
into recovery-time measurements.  The servers themselves are
:class:`~repro.replica.server.ReplicaServer` instances; the group never
sends messages — it is shared state they and the fault adapter consult.

Addressing: replica *i* of logical site *s* listens on transport id
``s * 1000 + i``, so plain cluster ids (1, 2, ...) and replica
addresses (1000, 1001, ..., 2000, ...) never collide and
:func:`logical_site_of` is a division.
"""

from __future__ import annotations

from ..obs.events import EventLog
from ..obs.metrics import REGISTRY

#: Address stride between logical sites (bounds replicas per site).
ADDRESS_STRIDE = 1000


# Metric handles are resolved by name per call, never cached at module
# scope: ``REGISTRY.reset()`` between back-to-back runs would otherwise
# leave these functions mutating orphaned objects while the registry
# reports zeros.
def _lease_epoch_gauge():
    return REGISTRY.gauge(
        "repro_replica_lease_epoch",
        "Current lease epoch of each logical site's replica group.",
    )


def _elections_counter():
    return REGISTRY.counter(
        "repro_replica_elections_total",
        "Leadership assumptions (boot leaders included) per site.",
    )


def _failovers_counter():
    return REGISTRY.counter(
        "repro_replica_failovers_total",
        "Leader changes after the boot leader, per site.",
    )


def _log_lag_gauge():
    return REGISTRY.gauge(
        "repro_replica_log_lag",
        "Replication records the slowest follower trails the leader by.",
    )


def replica_address(site: int, index: int) -> int:
    """Transport address of replica *index* of logical *site*."""
    if not 0 <= index < ADDRESS_STRIDE:
        raise ValueError(f"replica index {index} outside [0, {ADDRESS_STRIDE})")
    return site * ADDRESS_STRIDE + index


def logical_site_of(address: int) -> int:
    """The logical site a replica address (or plain site id) serves."""
    return address // ADDRESS_STRIDE if address >= ADDRESS_STRIDE else address


class ReplicaGroup:
    """Lease and election state shared by one site's replicas."""

    def __init__(
        self,
        site: int,
        replicas: int,
        *,
        lease_ticks: int = 64,
        event_log: EventLog | None = None,
    ) -> None:
        if replicas < 1:
            raise ValueError(f"need at least one replica, got {replicas}")
        self.site = site
        self.replicas = replicas
        self.lease_ticks = lease_ticks
        self.event_log = event_log
        self.addresses = tuple(replica_address(site, i) for i in range(replicas))
        #: Majority of the *configured* group, dead replicas included.
        self.quorum = replicas // 2 + 1
        self.leader_address: int | None = None
        self.leader_epoch = 0
        #: One entry per leadership assumption: epoch, address, the
        #: clock at election, and the clock of that leader's first
        #: lock grant (``None`` until it grants one).
        self.elections: list[dict] = []
        self.failovers = 0

    # ------------------------------------------------------------------
    def record_leader(self, address: int, epoch: int, now: int) -> None:
        """A replica assumed leadership under *epoch* at clock *now*."""
        changed = self.leader_address is not None and address != self.leader_address
        self.leader_address = address
        self.leader_epoch = epoch
        self.elections.append(
            {"epoch": epoch, "address": address, "elected_at": now, "first_grant_at": None}
        )
        _elections_counter().labels(site=str(self.site)).inc()
        _lease_epoch_gauge().labels(site=str(self.site)).set(float(epoch))
        if self.event_log is not None:
            self.event_log.emit(
                "elect",
                site=self.site,
                detail=f"replica {address} leads epoch {epoch} at clock {now}",
            )
        if changed:
            self.failovers += 1
            _failovers_counter().labels(site=str(self.site)).inc()
            if self.event_log is not None:
                self.event_log.emit(
                    "failover",
                    site=self.site,
                    detail=f"leadership moved to replica {address} (epoch {epoch})",
                )

    def note_grant(self, epoch: int, now: int) -> None:
        """The epoch-*epoch* leader granted a lock at clock *now*."""
        for entry in self.elections:
            if entry["epoch"] == epoch and entry["first_grant_at"] is None:
                entry["first_grant_at"] = now
                return

    def note_lag(self, lag: int) -> None:
        """Slowest-follower replication lag after a ship, in records."""
        _log_lag_gauge().labels(site=str(self.site)).set(float(lag))


class GroupRegistry:
    """All replica groups of one run, by logical site."""

    def __init__(self) -> None:
        self._groups: dict[int, ReplicaGroup] = {}

    def add(self, group: ReplicaGroup) -> None:
        self._groups[group.site] = group

    def group(self, site: int) -> ReplicaGroup:
        return self._groups[site]

    @property
    def sites(self) -> list[int]:
        return sorted(self._groups)

    def leader_of(self, site: int) -> int | None:
        """Current lease leader's address for logical *site*."""
        group = self._groups.get(site)
        return group.leader_address if group is not None else None

    def __iter__(self):
        return iter(self._groups.values())

    def __len__(self) -> int:
        return len(self._groups)
