"""The replication log one replica ships to its followers.

Every durable state change of a site's lock table — a grant, an
unlock, an applied tentative update, a release, a commit point — is
one JSON-friendly record ``{"seq": n, "op": ..., ...}`` appended by
the leader and shipped (:meth:`repro.replica.server.ReplicaServer.
_ship`) to every follower, which adopts it verbatim.  Sequence numbers
are dense and start at 1, so "how far behind is this follower" is a
subtraction, and a new leader catching up (``fetch_log``) just asks
for everything ``since`` its own tail.
"""

from __future__ import annotations


class ReplicationLog:
    """An append-only, densely numbered list of mutation records."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    @property
    def seq(self) -> int:
        """Sequence number of the latest record (0 when empty)."""
        return len(self.records)

    def append(self, op: str, **fields) -> dict:
        """Append a new record as this log's next sequence number."""
        record = {"seq": self.seq + 1, "op": op}
        record.update(fields)
        self.records.append(record)
        return record

    def adopt(self, record: dict) -> bool:
        """Adopt a record shipped by the leader.

        Records may arrive more than once (a re-ship after an ack was
        lost) but never out of order per connection; anything at or
        below our tail is a duplicate and ignored.  Returns whether
        the record was actually appended.
        """
        seq = int(record["seq"])
        if seq <= self.seq:
            return False
        if seq != self.seq + 1:
            raise ValueError(
                f"replication gap: log at seq {self.seq}, record has seq {seq}"
            )
        self.records.append(dict(record))
        return True

    def since(self, from_seq: int, limit: int | None = None) -> list[dict]:
        """All records with ``seq > from_seq`` (bounded by *limit*)."""
        tail = self.records[from_seq:]
        if limit is not None:
            tail = tail[:limit]
        return [dict(record) for record in tail]

    def __len__(self) -> int:
        return len(self.records)
