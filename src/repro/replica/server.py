"""One replica of a logical site: a SiteServer that ships its log.

A :class:`ReplicaServer` is a :class:`~repro.cluster.siteserver.
SiteServer` listening on a replica address (``site * 1000 + index``)
with three roles layered on top:

**Leader** — serves client traffic exactly like a plain site, but
every durable mutation (grant, unlock, update, release, commit) is
appended to a :class:`~repro.replica.log.ReplicationLog` and shipped
to the group's followers.  Ordinary mutations ship asynchronously
(coalesced); a ``commit`` ships **synchronously** — the leader awaits
acks from every non-suspect follower before answering ``committed``,
which is the acked commit point the never-lost-after-failover
guarantee rests on.

**Follower** — answers client requests ``not-leader`` (with a redirect
hint), adopts shipped records in sequence and applies them to its own
lock table and update log, so its state trails the leader's by at most
the in-flight batch.

**Candidate** — a follower poked by a ``leader`` query whose
``suspect`` names its current leader (or whose lease view has
expired) campaigns: it picks an epoch above every one it has promised,
collects single-decree-Paxos-style votes (granted iff the epoch beats
the voter's promise), and on majority quorum catches up from the most
advanced voter (``fetch_log``) before assuming leadership.  Epoch
fencing keeps the old leader safe to ignore: its ships are answered
``stale``, which demotes it.

There are no background timers — every transition is message-driven,
so memory-transport runs remain deterministic.
"""

from __future__ import annotations

import asyncio

from ..cluster import protocol
from ..cluster.coordinator import _SiteClient
from ..cluster.siteserver import SiteServer
from ..cluster.transport import Connection, TransportError
from ..obs import trace
from ..obs.events import EventLog
from .clock import LogicalClock
from .faults import ReplicaFaultAdapter
from .group import ReplicaGroup
from .log import ReplicationLog

#: Kinds only the lease leader serves; followers redirect.
LEADER_ONLY_KINDS = ("lock", "unlock", "update", "release", "commit", "batch")

#: Records per ``fetch_log`` reply (bounds catch-up frame sizes).
FETCH_LIMIT = 5000


class ReplicaServer(SiteServer):
    """One member of a :class:`~repro.replica.group.ReplicaGroup`."""

    def __init__(
        self,
        group: ReplicaGroup,
        index: int,
        *,
        transport,
        clock: LogicalClock,
        peers: tuple[int, ...] = (),
        deadlock_policy: str = "abort-youngest",
        grant_timeout: int | None = None,
        faults: ReplicaFaultAdapter | None = None,
        event_log: EventLog | None = None,
        seed: int = 0,
        election_timeout: float = 0.25,
        replication_timeout: float = 0.5,
    ) -> None:
        super().__init__(
            group.addresses[index],
            transport=transport,
            peers=peers,
            deadlock_policy=deadlock_policy,
            grant_timeout=grant_timeout,
            faults=faults,
            event_log=event_log,
            seed=seed,
        )
        self.group = group
        self.index = index
        self.address = group.addresses[index]
        self.clock = clock
        self.log = ReplicationLog()
        self.election_timeout = election_timeout
        self.replication_timeout = replication_timeout
        #: Replica 0 boots as leader of epoch 1; everyone agrees.
        self.role = "leader" if index == 0 else "follower"
        self.epoch = 1
        self.promised_epoch = 1
        self.leader_address: int | None = group.addresses[0]
        self.leader_seen_at = 0
        self._ship_clients: dict[int, _SiteClient] = {}
        self._shipped: dict[int, int] = {}
        #: Followers that stopped acking ships; excluded from the
        #: write-all-available commit barrier until the next election.
        self._suspect_followers: set[int] = set()
        self._ship_lock = asyncio.Lock()
        self._ship_task: asyncio.Task | None = None
        self._campaigning = False
        self._campaign_lock = asyncio.Lock()
        # Followers mirror lock-table mutations by record replay; mute
        # their lock manager's event stream so the timeline carries
        # each grant/release once (from the leader).
        self._lock_events = self.locks.event_log
        if not self.is_leader():
            self.locks.event_log = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def is_leader(self) -> bool:
        return self.role == "leader"

    def _followers(self) -> tuple[int, ...]:
        return tuple(a for a in self.group.addresses if a != self.address)

    async def start(self) -> None:
        await super().start()
        if self.is_leader():
            self.group.record_leader(self.address, self.epoch, self.clock.now)

    async def stop(self) -> None:
        if self._ship_task is not None:
            self._ship_task.cancel()
        # Snapshot: a cancelled ship task's cleanup (or a concurrent
        # _ship_to failure) may drop entries while we close.
        clients, self._ship_clients = dict(self._ship_clients), {}
        for client in clients.values():
            await client.close()
        await super().stop()

    # ------------------------------------------------------------------
    # Clock and faults
    # ------------------------------------------------------------------
    async def _process(self, connection: Connection, message: dict) -> None:
        if self.faults is None:
            self.clock.tick()
        await super()._process(connection, message)

    async def _fault_gate(self, message: dict) -> bool:
        """Like the base gate, but time is the *shared* clock — and a
        stalled victim does not tick it: a dead server cannot be the
        thing that ages everyone else's leases."""
        self.clock.tick()
        self.faults.observe(self.clock.now)
        while self.running and self.faults.site_down(self.address):
            await self.transport.sleep(1)
        return not self.faults.drop(
            self.address,
            message.get("type", "?"),
            transaction=message.get("txn"),
        )

    # ------------------------------------------------------------------
    # Leader-only guard on client traffic
    # ------------------------------------------------------------------
    async def _require_leader(self, connection: Connection, message: dict) -> bool:
        if self.is_leader():
            return True
        await self._safe_send(
            connection,
            protocol.reply(
                message["id"],
                "not-leader",
                leader=self.leader_address,
                epoch=self.epoch,
            ),
        )
        return False

    async def _on_lock(self, connection: Connection, message: dict) -> None:
        if await self._require_leader(connection, message):
            await super()._on_lock(connection, message)

    async def _on_unlock(self, connection: Connection, message: dict) -> None:
        if await self._require_leader(connection, message):
            await super()._on_unlock(connection, message)

    async def _on_update(self, connection: Connection, message: dict) -> None:
        if await self._require_leader(connection, message):
            await super()._on_update(connection, message)

    async def _on_release(self, connection: Connection, message: dict) -> None:
        if await self._require_leader(connection, message):
            await super()._on_release(connection, message)

    async def _on_batch(self, connection: Connection, message: dict) -> None:
        # The redirect is batch-level: the coordinator resolves every
        # step of a not-leader batch against the same redirect and
        # replays the attempt at the new leader.
        if await self._require_leader(connection, message):
            await super()._on_batch(connection, message)

    # ------------------------------------------------------------------
    # Log shipping
    # ------------------------------------------------------------------
    def _log_mutation(self, op: str, **fields) -> None:
        self.log.append(op, **fields)
        self._schedule_ship()

    def _schedule_ship(self) -> None:
        if not self._followers():
            return
        if self._ship_task is None or self._ship_task.done():
            self._ship_task = asyncio.ensure_future(self._ship_outstanding())

    async def _ship_outstanding(self) -> None:
        """Ship every unacked record to every non-suspect follower."""
        async with self._ship_lock:
            if not self.is_leader():
                return
            for follower in self._followers():
                if follower in self._suspect_followers:
                    continue
                await self._ship_to(follower)
                if not self.is_leader():
                    return
            lag = max(
                (self.log.seq - self._shipped.get(f, 0) for f in self._followers()),
                default=0,
            )
            self.group.note_lag(lag)

    async def _ship_to(self, follower: int) -> None:
        records = self.log.since(self._shipped.get(follower, 0))
        if not records:
            return
        client = self._ship_clients.get(follower)
        if client is None:
            try:
                connection = await self.transport.connect(follower)
            except TransportError:
                self._suspect_followers.add(follower)
                return
            client = _SiteClient(connection, address=follower)
            self._ship_clients[follower] = client
        try:
            fields = {
                "epoch": self.epoch,
                "leader": self.address,
                "records": records,
            }
            if self._trace_ctx is not None:
                # Ships triggered by a traced client mutation parent
                # the follower's replicate span under that request.
                fields["trace"] = self._trace_ctx
            reply = await client.request(
                "replicate",
                timeout=self.replication_timeout,
                **fields,
            )
        except TransportError:
            self._suspect_followers.add(follower)
            await self._drop_ship_client(follower)
            return
        status = reply.get("status")
        if status == "ok":
            self._shipped[follower] = int(reply.get("seq", self.log.seq))
        elif status == "gap":
            # The follower is further behind than we believed (a lost
            # ack); rewind our view and let the next ship re-send.
            self._shipped[follower] = int(reply.get("seq", 0))
            self._schedule_ship()
        elif status == "stale":
            await self._accept_leader(reply.get("leader"), int(reply["epoch"]))
        else:  # "timeout" / "diverged": stop counting on this follower
            self._suspect_followers.add(follower)

    async def _drop_ship_client(self, follower: int) -> None:
        client = self._ship_clients.pop(follower, None)
        if client is not None:
            await client.close()

    # ------------------------------------------------------------------
    # Acked commit point
    # ------------------------------------------------------------------
    async def _on_commit(self, connection: Connection, message: dict) -> None:
        if not await self._require_leader(connection, message):
            return
        txn = message["txn"]
        if txn not in self._committed:
            self._committed.add(txn)
            self.log.append("commit", txn=txn)
        await self._ship_outstanding()
        if not self.is_leader():
            # Deposed mid-ship by a ``stale`` reply: the client must
            # re-commit at the new leader (commit is idempotent).
            await self._safe_send(
                connection,
                protocol.reply(
                    message["id"],
                    "not-leader",
                    leader=self.leader_address,
                    epoch=self.epoch,
                ),
            )
            return
        if self.event_log is not None:
            self.event_log.emit("complete", transaction=txn, site=self.address)
        await self._safe_send(connection, protocol.reply(message["id"], "committed"))

    async def _reply_granted(
        self,
        connection: Connection,
        request_id: int,
        txn: str,
        entity: str,
        latency: int,
    ) -> None:
        self.group.note_grant(self.epoch, self.clock.now)
        await super()._reply_granted(connection, request_id, txn, entity, latency)

    # ------------------------------------------------------------------
    # Replication protocol handlers
    # ------------------------------------------------------------------
    async def _on_replicate(self, connection: Connection, message: dict) -> None:
        epoch = int(message["epoch"])
        if epoch < self.promised_epoch or epoch < self.epoch:
            await self._safe_send(
                connection,
                protocol.reply(
                    message["id"],
                    "stale",
                    epoch=max(self.promised_epoch, self.epoch),
                    leader=self.leader_address,
                ),
            )
            return
        sender = int(message["leader"])
        if epoch > self.epoch or self.leader_address != sender or self.is_leader():
            await self._accept_leader(sender, epoch)
        self.leader_seen_at = self.clock.now
        for record in message.get("records", ()):
            seq = int(record["seq"])
            if seq <= self.log.seq:
                if self.log.records[seq - 1] != record:
                    # A suffix written by a fenced-off leader we voted
                    # past: refuse — this replica must not serve or
                    # lead until the operator intervenes.
                    await self._safe_send(
                        connection,
                        protocol.reply(message["id"], "diverged", seq=self.log.seq),
                    )
                    return
                continue
            if seq != self.log.seq + 1:
                await self._safe_send(
                    connection,
                    protocol.reply(message["id"], "gap", seq=self.log.seq),
                )
                return
            self.log.adopt(record)
            self._apply_record(record)
        await self._safe_send(
            connection, protocol.reply(message["id"], "ok", seq=self.log.seq)
        )

    async def _on_vote(self, connection: Connection, message: dict) -> None:
        epoch = int(message["epoch"])
        if epoch > self.promised_epoch:
            self.promised_epoch = epoch
            await self._safe_send(
                connection,
                protocol.reply(message["id"], "granted", seq=self.log.seq, epoch=epoch),
            )
            return
        await self._safe_send(
            connection,
            protocol.reply(
                message["id"],
                "denied",
                epoch=self.promised_epoch,
                leader=self.leader_address,
            ),
        )

    async def _on_fetch_log(self, connection: Connection, message: dict) -> None:
        since = int(message.get("since", 0))
        records = self.log.since(since, limit=FETCH_LIMIT)
        await self._safe_send(
            connection,
            protocol.reply(message["id"], "log", records=records, seq=self.log.seq),
        )

    async def _on_leader(self, connection: Connection, message: dict) -> None:
        suspect = message.get("suspect")
        if not self.is_leader():
            # Queries arriving during an election wait for it rather
            # than racing off with a known-stale answer; the re-check
            # under the lock sees whatever that election decided.
            async with self._campaign_lock:
                suspected_leader = (
                    suspect is not None and int(suspect) == self.leader_address
                )
                if not self.is_leader() and (
                    suspected_leader or self._lease_expired()
                ):
                    await self._campaign()
        await self._safe_send(
            connection,
            protocol.reply(
                message["id"],
                "leader",
                leader=self.leader_address,
                epoch=self.epoch,
                site=self.address,
            ),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _status_payload(self) -> dict:
        """The base site snapshot plus replication state.

        ``status`` is deliberately *not* in :data:`LEADER_ONLY_KINDS`:
        any replica answers, so an operator can ask a follower what it
        believes about the lease while the leader is unreachable.
        """
        payload = super()._status_payload()
        lag = 0
        if self.is_leader():
            lag = max(
                (self.log.seq - self._shipped.get(f, 0) for f in self._followers()),
                default=0,
            )
        payload.update(
            role=self.role,
            replica=self.index,
            address=self.address,
            epoch=self.epoch,
            promised_epoch=self.promised_epoch,
            leader=self.leader_address,
            leader_seen_at=self.leader_seen_at,
            clock=self.clock.now,
            lease_ticks=self.group.lease_ticks,
            lease_expired=self._lease_expired(),
            log_seq=self.log.seq,
            lag=lag,
            suspect_followers=sorted(self._suspect_followers),
        )
        return payload

    # ------------------------------------------------------------------
    # Elections
    # ------------------------------------------------------------------
    def _lease_expired(self) -> bool:
        return self.clock.now - self.leader_seen_at > self.group.lease_ticks

    async def _campaign(self) -> bool:
        """One election attempt; True iff this replica took the lease."""
        self._campaigning = True
        with trace.detached_span("replica.campaign") as campaign_span:
            if campaign_span:
                campaign_span.set(address=self.address, clock=self.clock.now)
            won = await self._campaign_inner()
            if campaign_span:
                campaign_span.set(won=won, epoch=self.epoch)
            return won

    async def _campaign_inner(self) -> bool:
        try:
            # Stamp this replica's index into the epoch (epoch mod
            # group size) so simultaneous candidates always campaign
            # under *distinct* epochs — identical epochs deny each
            # other's votes and re-split identically forever under the
            # deterministic transport.
            epoch = max(self.promised_epoch, self.epoch) + 1
            while epoch % self.group.replicas != self.index:
                epoch += 1
            self.promised_epoch = epoch
            votes = 1
            best_seq = self.log.seq
            best_addr: int | None = None
            replies = await asyncio.gather(
                *(
                    self._one_shot(
                        peer, "vote", timeout=self.election_timeout, epoch=epoch
                    )
                    for peer in self._followers()
                )
            )
            for peer, reply in zip(self._followers(), replies):
                if reply is None or reply.get("status") != "granted":
                    continue
                votes += 1
                seq = int(reply.get("seq", 0))
                if seq > best_seq:
                    best_seq, best_addr = seq, peer
            if votes < self.group.quorum:
                return False
            if best_addr is not None:
                await self._catch_up(best_addr, best_seq)
            self._become_leader(epoch)
            return True
        finally:
            self._campaigning = False

    async def _catch_up(self, address: int, target_seq: int) -> None:
        """Raft-style: adopt the most advanced voter's log before
        leading, so every record an old leader acked survives."""
        while self.log.seq < target_seq:
            reply = await self._one_shot(
                address,
                "fetch_log",
                timeout=self.replication_timeout,
                since=self.log.seq,
            )
            if reply is None:
                return
            records = reply.get("records", ())
            progressed = False
            for record in records:
                if self.log.adopt(record):
                    self._apply_record(record)
                    progressed = True
            if not progressed:
                return

    def _become_leader(self, epoch: int) -> None:
        with trace.detached_span("replica.elect") as span:
            if span:
                span.set(address=self.address, epoch=epoch, clock=self.clock.now)
        self.role = "leader"
        self.epoch = epoch
        self.leader_address = self.address
        self.leader_seen_at = self.clock.now
        self.locks.event_log = self._lock_events
        # Follower ack state is unknown across the transition: re-ship
        # from the start and let seq-dedupe absorb the duplicates.
        self._shipped = {}
        self._suspect_followers = set()
        self.group.record_leader(self.address, epoch, self.clock.now)
        self._schedule_ship()

    async def _accept_leader(self, address, epoch: int) -> None:
        """Someone else leads *epoch*: follow them."""
        was_leader = self.is_leader()
        self.role = "follower"
        self.epoch = epoch
        self.promised_epoch = max(self.promised_epoch, epoch)
        self.leader_address = int(address) if address is not None else None
        self.leader_seen_at = self.clock.now
        self.locks.event_log = None
        if was_leader:
            # Waiters queued here will never be granted by this
            # replica; answer them now so their coordinators re-resolve
            # instead of burning a wall-clock timeout each.
            for (txn, entity), pending in list(self._pending.items()):
                del self._pending[(txn, entity)]
                if pending.timer is not None:
                    pending.timer.cancel()
                self._finish_wait(pending, "not-leader")
                self.locks.withdraw(entity, txn)
                await self._safe_send(
                    pending.connection,
                    protocol.reply(
                        pending.request_id,
                        "not-leader",
                        entity=entity,
                        leader=self.leader_address,
                        epoch=self.epoch,
                    ),
                )

    async def _one_shot(
        self, address: int, kind: str, *, timeout: float, **fields
    ) -> dict | None:
        """Connect, ask once, hang up; ``None`` on any failure."""
        try:
            connection = await self.transport.connect(address)
        except TransportError:
            return None
        try:
            if self._trace_ctx is not None and "trace" not in fields:
                fields["trace"] = self._trace_ctx
            await connection.send(protocol.request(kind, 1, **fields))
            return await asyncio.wait_for(connection.recv(), timeout)
        except (asyncio.TimeoutError, TransportError):
            return None
        finally:
            await connection.close()

    # ------------------------------------------------------------------
    # Record replay (follower side)
    # ------------------------------------------------------------------
    def _apply_record(self, record: dict) -> None:
        """Mirror one shipped mutation into this replica's state."""
        op = record["op"]
        txn = record.get("txn")
        entity = record.get("entity")
        if op == "grant":
            # Shipped in grant order, so the entity is free unless this
            # is a duplicate of a grant we already hold.
            if self.locks.holder(entity) is None:
                self.locks.try_lock(entity, txn)
        elif op == "unlock":
            if self.locks.holder(entity) == txn:
                self.locks.unlock(entity, txn)
        elif op == "update":
            key = record.get("key")
            marker = tuple(key) if key is not None else ("seq", record["seq"])
            applied = self._applied_ids.setdefault(txn, set())
            if marker not in applied:
                applied.add(marker)
                self._updates.setdefault(entity, []).append(txn)
        elif op == "release":
            self.locks.release_all(txn)
            if txn not in self._committed:
                for order in self._updates.values():
                    while txn in order:
                        order.remove(txn)
            self._applied_ids.pop(txn, None)
        elif op == "commit":
            self._committed.add(txn)
