"""Fault plans reinterpreted as *leader kills*.

A :class:`~repro.faults.plan.SiteCrash` against a replicated site no
longer means "the site is gone" — the site has replicas precisely so
it survives.  This adapter pins each crash window to a concrete
victim: **the replica holding the site's lease when the window
opens**.  That replica stalls (permanently, or until ``recover_at``);
its followers keep running, one of them wins the next election, and
the run completes.  Existing chaos plans thereby exercise failover
without being rewritten.

Time here is the shared :class:`~repro.replica.clock.LogicalClock`
(mirrored into :attr:`clock` by :meth:`observe` on every processed
message) rather than the per-adapter counter of the base class — a
stalled replica must not advance time by spinning (see the clock's
module docstring).  Grant delays and message drops still target
*logical* sites, so they apply to whichever replica currently serves
the site.
"""

from __future__ import annotations

from ..cluster.netfaults import NetworkFaultAdapter
from ..faults.plan import FaultPlan
from ..obs.events import EventLog
from .clock import LogicalClock
from .group import GroupRegistry, logical_site_of


class ReplicaFaultAdapter(NetworkFaultAdapter):
    """Crash windows pinned to lease leaders at open time."""

    def __init__(
        self,
        plan: FaultPlan | None = None,
        *,
        registry: GroupRegistry,
        clock: LogicalClock,
        event_log: EventLog | None = None,
    ) -> None:
        super().__init__(plan, event_log=event_log)
        self.registry = registry
        self.shared_clock = clock
        #: Crash -> the replica address pinned as its victim.
        self._victims: dict = {}
        #: One entry per opened window: the raw material the runtime
        #: turns into recovery-time measurements.
        self.kills: list[dict] = []
        self._recover_announced: set = set()

    def observe(self, now: int) -> None:
        """Mirror the shared logical clock (called once per message)."""
        self.clock = now

    # ------------------------------------------------------------------
    def site_down(self, address: int) -> bool:
        """Is the replica at *address* a stalled crash victim now?"""
        for crash in self.plan.site_crashes:
            if self.clock < crash.at:
                continue
            if crash.recover_at is not None and self.clock >= crash.recover_at:
                if crash in self._victims and crash not in self._recover_announced:
                    self._recover_announced.add(crash)
                    if self.event_log is not None:
                        self.event_log.emit(
                            "recover",
                            site=crash.site,
                            detail=(
                                f"replica {self._victims[crash]} resumed "
                                f"at clock {self.clock}"
                            ),
                        )
                continue
            victim = self._victims.get(crash)
            if victim is None:
                if logical_site_of(address) != crash.site:
                    continue
                victim = self.registry.leader_of(crash.site)
                if victim is None:
                    continue
                self._victims[crash] = victim
                self.kills.append(
                    {"site": crash.site, "victim": victim, "killed_at": self.clock}
                )
                if self.event_log is not None:
                    self.event_log.emit(
                        "crash",
                        site=crash.site,
                        detail=f"leader replica {victim} killed at clock {self.clock}",
                    )
            if victim == address:
                return True
        return False

    def grant_delayed(self, entity: str, address: int) -> bool:
        return super().grant_delayed(entity, logical_site_of(address))

    def drop(self, address: int, kind: str, *, transaction: str | None = None) -> bool:
        return super().drop(logical_site_of(address), kind, transaction=transaction)
