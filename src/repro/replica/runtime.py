"""Boot a replicated cluster, run a workload, audit it, time failover.

:func:`run_replicated_cluster` is :func:`repro.cluster.runtime.
run_cluster`'s replicated sibling: every logical site becomes a
:class:`~repro.replica.group.ReplicaGroup` of N
:class:`~repro.replica.server.ReplicaServer` replicas sharing one
:class:`~repro.replica.clock.LogicalClock`, coordinators route through
a :class:`~repro.replica.resolver.LeaderResolver`, and
:class:`~repro.faults.plan.SiteCrash` entries kill *leaders* instead
of sites.  The :class:`ReplicaReport` extends the cluster report with
the replication story: failover count, the election timeline, and per
kill the **recovery time in logical steps** — shared-clock ticks from
the leader kill to the new leader's first lock grant.
"""

from __future__ import annotations

import asyncio
import os
import time
from dataclasses import dataclass, field

from ..core.schedule import TransactionSystem
from ..core.transaction import Transaction
from ..obs import distributed, trace
from ..obs.events import EventLog
from ..obs.insight import (
    ContentionTally,
    FlightRecorder,
    dump_postmortem,
    postmortem_reason,
)
from ..obs.metrics import REGISTRY
from ..sim.analysis import (
    serial_witness_from_site_orders,
    serializable_from_site_orders,
)
from ..cluster import protocol
from ..cluster.coordinator import Coordinator, TxnOutcome
from ..cluster.gateway import Gateway, GatewayDecision
from ..cluster.runtime import (
    HISTORY_TIMEOUT,
    ClusterError,
    ClusterReport,
    _build_workload,
    _fetch_history,
)
from ..cluster.transport import MemoryTransport, TcpTransport, Transport, TransportError
from ..faults.plan import FaultPlan
from .clock import LogicalClock
from .faults import ReplicaFaultAdapter
from .group import GroupRegistry, ReplicaGroup
from .resolver import LeaderResolver
from .server import ReplicaServer


@dataclass
class ReplicaReport(ClusterReport):
    """A :class:`ClusterReport` plus the replication story."""

    replicas: int = 1
    lease_ticks: int = 64
    #: Leader changes after boot, summed over all groups.
    failovers: int = 0
    #: Every leadership assumption: site, epoch, address, clocks.
    elections: list[dict] = field(default_factory=list)
    #: One entry per leader kill; ``recovery_steps`` is the logical
    #: distance from the kill to the new leader's first lock grant
    #: (``None`` when no replacement ever granted one).
    recovery: list[dict] = field(default_factory=list)
    #: Final value of the shared logical clock.
    clock_end: int = 0

    def to_dict(self) -> dict:
        payload = super().to_dict()
        payload.update(
            replicas=self.replicas,
            lease_ticks=self.lease_ticks,
            failovers=self.failovers,
            elections=self.elections,
            recovery=self.recovery,
            clock_end=self.clock_end,
        )
        return payload

    def render(self) -> str:
        lines = [
            super().render(),
            f"  replicas         {self.replicas} per site "
            f"(lease {self.lease_ticks} ticks)",
            f"  failovers        {self.failovers}",
        ]
        for entry in self.recovery:
            steps = entry.get("recovery_steps")
            took = f"{steps} steps" if steps is not None else "never recovered"
            lines.append(
                f"  recovery         site {entry['site']}: "
                f"leader {entry['victim']} killed at clock "
                f"{entry['killed_at']}, {took}"
            )
        return "\n".join(lines)


async def run_replicated_cluster(
    system: TransactionSystem,
    *,
    replicas: int = 3,
    lease_ticks: int = 64,
    election_timeout: float = 0.25,
    replication_timeout: float = 0.5,
    transport: str | Transport = "memory",
    rounds: int = 1,
    concurrency: int = 8,
    deadlock_policy: str = "abort-youngest",
    max_retries: int = 5,
    seed: int = 0,
    vet: bool = True,
    fault_plan: FaultPlan | None = None,
    event_log: EventLog | None = None,
    grant_timeout: int | None = None,
    request_timeout: float | None = None,
    gateway: Gateway | None = None,
    wire_metrics: bool = False,
    codec: str = "json",
    batch: bool = False,
    recorder: FlightRecorder | bool = True,
    postmortem_dir: str | None = None,
) -> ReplicaReport:
    """Execute *rounds* copies of *system* on a replicated cluster.

    Parameters follow :func:`repro.cluster.runtime.run_cluster`, plus
    *replicas* per logical site, the group's *lease_ticks*, and the
    wall-clock *election_timeout* / *replication_timeout* that bound
    one vote or ship round-trip against a dead replica.  With any
    fault plan, *request_timeout* is required: failover is driven by
    clients timing out against the killed leader.  *codec* and *batch*
    work as in :func:`run_cluster`; a batch refused by a follower gets
    a batch-level ``not-leader`` and the coordinator replays its steps
    through the single-step failover path, so batching composes with
    leader kills.

    Like :func:`run_cluster`, the run starts by resetting the
    ``repro_cluster_*`` and ``repro_replica_*`` metrics so
    back-to-back runs never accumulate each other's counts, and
    *wire_metrics* turns on the per-stage wire-latency histograms.
    *recorder* and *postmortem_dir* work as in :func:`run_cluster`:
    the flight-recorder ring is on by default, and a bad ending dumps
    a post-mortem bundle when a destination directory is configured
    (argument or ``REPRO_POSTMORTEM``).
    """
    if rounds < 1:
        raise ClusterError(f"need at least one round, got {rounds}")
    if concurrency < 1:
        raise ClusterError(f"need concurrency >= 1, got {concurrency}")
    if replicas < 1:
        raise ClusterError(f"need at least one replica per site, got {replicas}")
    if fault_plan is not None:
        fault_plan.validate_against(system)
        if request_timeout is None:
            raise ClusterError(
                "replicated runs under a fault plan need request_timeout: "
                "a killed leader answers nothing, and the client timeout "
                "is what triggers re-resolution and failover"
            )

    REGISTRY.reset(prefix="repro_cluster_")
    REGISTRY.reset(prefix="repro_replica_")
    if wire_metrics:
        distributed.WIRE.enable_metrics()
    if isinstance(recorder, FlightRecorder):
        # Not a truthiness check: an empty ring is falsy but attached.
        ring: FlightRecorder | None = recorder
    elif recorder:
        ring = FlightRecorder()
    else:
        ring = None
    if ring is not None:
        distributed.WIRE.attach_recorder(ring)
        if event_log is not None:
            event_log.ring = ring

    started = time.perf_counter()
    if isinstance(transport, Transport):
        live_transport = transport
        transport_name = type(transport).__name__
        own_transport = False
    elif transport == "memory":
        live_transport = MemoryTransport()
        transport_name = "memory"
        own_transport = True
    elif transport == "tcp":
        live_transport = TcpTransport()
        transport_name = "tcp"
        own_transport = True
    else:
        raise ClusterError(f"unknown transport {transport!r} (memory, tcp, or a Transport)")

    with trace.span("replica.run") as sp:
        if sp:
            sp.set(
                transport=transport_name,
                sites=system.database.sites,
                replicas=replicas,
                rounds=rounds,
            )
        decision: GatewayDecision | None = None
        own_gateway = False
        if vet:
            if gateway is None:
                gateway = Gateway()
                own_gateway = True
            decision = gateway.vet(system)
            mode = decision.mode
        else:
            mode = "unvetted"

        clock = LogicalClock()
        if event_log is not None:
            # Wire events (send/recv) carry the shared clock tick, so
            # the timeline lines up with lease ages and elections.
            distributed.WIRE.attach(event_log, clock=clock)
        registry = GroupRegistry()
        groups: list[ReplicaGroup] = []
        for site in range(1, system.database.sites + 1):
            group = ReplicaGroup(
                site, replicas, lease_ticks=lease_ticks, event_log=event_log
            )
            registry.add(group)
            groups.append(group)
        all_addresses = tuple(a for g in groups for a in g.addresses)
        faults = (
            ReplicaFaultAdapter(
                fault_plan, registry=registry, clock=clock, event_log=event_log
            )
            if fault_plan is not None
            else None
        )
        servers = [
            ReplicaServer(
                group,
                index,
                transport=live_transport,
                clock=clock,
                peers=all_addresses,
                deadlock_policy=deadlock_policy,
                grant_timeout=grant_timeout,
                faults=faults,
                event_log=event_log,
                seed=seed,
                election_timeout=election_timeout,
                replication_timeout=replication_timeout,
            )
            for group in groups
            for index in range(replicas)
        ]
        # A queried follower may campaign before answering, and one
        # campaign waits up to election_timeout on a dead peer's vote:
        # give leader queries comfortable headroom over that.
        resolver = LeaderResolver(
            live_transport,
            {group.site: group.addresses for group in groups},
            query_timeout=election_timeout * 3,
        )
        wire_codec = protocol.codec_named(codec)
        try:
            for server in servers:
                await server.start()

            workload = _build_workload(system, rounds)
            gate = asyncio.Semaphore(concurrency)

            async def run_one(index: int, tx: Transaction) -> TxnOutcome:
                async with gate:
                    coordinator = Coordinator(
                        tx,
                        transport=live_transport,
                        age=index,
                        max_retries=max_retries,
                        request_timeout=request_timeout,
                        seed=seed,
                        resolver=resolver,
                        codec=wire_codec,
                        batch=batch,
                    )
                    return await coordinator.run()

            outcomes = list(
                await asyncio.gather(*(run_one(i, tx) for i, tx in enumerate(workload)))
            )

            history_timeout = (
                request_timeout if request_timeout is not None else HISTORY_TIMEOUT
            )

            async def fetch_site(site: int) -> dict[str, list[str]] | None:
                """History from the site's *current* leader, chasing
                one more failover if the leader dies under us."""
                for _ in range(replicas + 1):
                    try:
                        address = await resolver.resolve(site)
                    except TransportError:
                        return None
                    fetched = await _fetch_history(
                        live_transport, address, timeout=history_timeout
                    )
                    if fetched is not None:
                        return fetched
                    resolver.invalidate(site)
                return None

            site_orders: dict[str, list[str]] = {}
            unreachable: list[int] = []
            for group in groups:
                fetched = await fetch_site(group.site)
                if fetched is None:
                    unreachable.append(group.site)
                    continue
                for entity, order in fetched.items():
                    site_orders[entity] = order

            messages = sum(server.processed for server in servers)
        finally:
            for server in servers:
                await server.stop()
            if own_transport:
                await live_transport.close()
            if own_gateway and gateway is not None:
                gateway.close()
            if wire_metrics:
                distributed.WIRE.disable_metrics()
            if ring is not None:
                distributed.WIRE.detach_recorder()
                if event_log is not None:
                    event_log.ring = None
            if event_log is not None:
                distributed.WIRE.detach()

        recovery: list[dict] = []
        if faults is not None:
            for kill in faults.kills:
                group = registry.group(kill["site"])
                successors = [
                    entry
                    for entry in group.elections
                    if entry["elected_at"] >= kill["killed_at"]
                    and entry["address"] != kill["victim"]
                ]
                # The replacement that *served*: elections can churn
                # briefly after a kill (a racing candidate deposes the
                # first winner before it grants anything), so recovery
                # ends at the earliest successor grant, whichever
                # epoch delivered it.
                replacement = min(
                    (e for e in successors if e["first_grant_at"] is not None),
                    key=lambda e: e["first_grant_at"],
                    default=successors[0] if successors else None,
                )
                item = dict(kill)
                if replacement is not None:
                    item.update(
                        epoch=replacement["epoch"],
                        leader=replacement["address"],
                        elected_at=replacement["elected_at"],
                        first_grant_at=replacement["first_grant_at"],
                    )
                first_grant = item.get("first_grant_at")
                item["recovery_steps"] = (
                    first_grant - kill["killed_at"] if first_grant is not None else None
                )
                recovery.append(item)

        serializable = serializable_from_site_orders(site_orders)
        witness = serial_witness_from_site_orders(site_orders) if serializable else None
        report = ReplicaReport(
            transport=transport_name,
            sites=system.database.sites,
            mode=mode,
            transactions=len(workload),
            outcomes=outcomes,
            site_orders=site_orders,
            serializable=serializable,
            serial_witness=witness,
            messages=messages,
            dropped=faults.dropped if faults is not None else 0,
            wall_seconds=time.perf_counter() - started,
            gateway=decision,
            unreachable_sites=unreachable,
            replicas=replicas,
            lease_ticks=lease_ticks,
            failovers=sum(group.failovers for group in groups),
            elections=[
                {"site": group.site, **entry}
                for group in groups
                for entry in group.elections
            ],
            recovery=recovery,
            clock_end=clock.now,
        )
        tally = ContentionTally()
        for server in servers:
            tally.merge(server.insight)
        report.contention = tally.rows(limit=16)
        destination = postmortem_dir or os.environ.get("REPRO_POSTMORTEM")
        reason = postmortem_reason(report)
        if destination and reason is not None:
            active_trace = trace.trace_path()
            report.postmortem = dump_postmortem(
                destination,
                report=report,
                recorder=ring,
                event_log=event_log,
                trace_paths=(active_trace,) if active_trace else (),
                reason=reason,
            )
        if sp:
            sp.set(
                committed=report.committed,
                serializable=report.serializable,
                failovers=report.failovers,
            )
        return report


def run_replicated_sync(
    system: TransactionSystem, *, use_uvloop: bool = False, **kwargs
) -> ReplicaReport:
    """:func:`run_replicated_cluster` from synchronous code."""
    from ..cluster.runtime import uvloop_available

    if use_uvloop and uvloop_available():
        import uvloop

        runner = getattr(uvloop, "run", None)
        if runner is not None:
            return runner(run_replicated_cluster(system, **kwargs))
        uvloop.install()
    return asyncio.run(run_replicated_cluster(system, **kwargs))
