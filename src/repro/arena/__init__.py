"""Policy × workload × fault-plan sweeps over the cluster runtime.

The arena is the repo's comparative harness (experiment E17): it takes
traffic specs (:mod:`repro.workloads.traffic`), a set of locking
policies and a set of fault plans, runs every cell of the cross-product
through :func:`repro.cluster.run_cluster` on a fresh deterministic
cluster, and reports throughput, p50/p99 latency and abort/retry rates
per cell — with every committed history still passing the
serializability audit, faults or not.  ``repro arena`` is the CLI
front end; :mod:`benchmarks.bench_arena_matrix` pins the numbers.
"""

from .report import ArenaCell, ArenaReport
from .runner import NO_FAULTS, VET_CYCLE_LIMIT, cell_seed, run_arena, run_cell

__all__ = [
    "ArenaCell",
    "ArenaReport",
    "NO_FAULTS",
    "VET_CYCLE_LIMIT",
    "cell_seed",
    "run_arena",
    "run_cell",
]
