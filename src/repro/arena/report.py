"""Arena result model: one cell per policy × workload × fault plan.

Each :class:`ArenaCell` condenses one :class:`~repro.cluster.runtime.
ClusterReport` into the numbers the sweep compares across cells —
throughput, p50/p99 transaction latency, abort/retry rates — plus the
two determinism fingerprints and the serializability audit verdict.
The scalar metrics are wall-clock and vary run to run; the
fingerprints and the audit are exact, and they are what the arena's
CI smoke and the E17 benchmark assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.runtime import ClusterReport
from ..stats import percentile


@dataclass
class ArenaCell:
    """One (policy, workload, fault plan) cell's results."""

    policy: str
    workload: str
    fault_plan: str
    seed: int
    transport: str
    mode: str
    transactions: int
    committed: int
    retry_exhausted: int
    errors: int
    retries_total: int
    throughput_txn_s: float
    p50_ms: float | None
    p99_ms: float | None
    serializable: bool
    audit_complete: bool
    history_fingerprint: str
    outcome_fingerprint: str
    wall_seconds: float
    #: The cell's hottest entities — the top of the run's merged
    #: contention ranking (:attr:`ClusterReport.contention`), as
    #: ``"entity(N waits)"`` strings.
    hot_entities: list[str] = field(default_factory=list)

    @property
    def abort_rate(self) -> float:
        """Fraction of instances that never committed (exhausted their
        retries or errored out)."""
        if not self.transactions:
            return 0.0
        return (self.transactions - self.committed) / self.transactions

    @property
    def retry_rate(self) -> float:
        """Mean abort-and-retry events per submitted instance."""
        if not self.transactions:
            return 0.0
        return self.retries_total / self.transactions

    @property
    def ok(self) -> bool:
        """Did this cell pass the serializability audit on a complete
        history?  (Aborts are a performance outcome, not a failure.)"""
        return self.serializable and self.audit_complete

    @property
    def label(self) -> str:
        return f"{self.policy} × {self.workload} × {self.fault_plan}"

    @classmethod
    def from_report(
        cls,
        report: ClusterReport,
        *,
        policy: str,
        workload: str,
        fault_plan: str,
        seed: int,
    ) -> "ArenaCell":
        """Condense one cluster run into a cell."""
        latencies_ms = [
            outcome.seconds * 1000.0
            for outcome in report.outcomes
            if outcome.committed
        ]
        errors = sum(1 for o in report.outcomes if o.outcome == "error")
        throughput = (
            report.committed / report.wall_seconds
            if report.wall_seconds > 0
            else 0.0
        )
        return cls(
            policy=policy,
            workload=workload,
            fault_plan=fault_plan,
            seed=seed,
            transport=report.transport,
            mode=report.mode,
            transactions=report.transactions,
            committed=report.committed,
            retry_exhausted=report.retry_exhausted,
            errors=errors,
            retries_total=report.retries_total,
            throughput_txn_s=throughput,
            p50_ms=percentile(latencies_ms, 50),
            p99_ms=percentile(latencies_ms, 99),
            serializable=report.serializable,
            audit_complete=report.audit_complete,
            history_fingerprint=report.history_fingerprint,
            outcome_fingerprint=report.outcome_fingerprint,
            wall_seconds=report.wall_seconds,
            hot_entities=[
                f"{row['entity']}({row['waits']} waits)"
                for row in report.contention[:3]
                if row.get("waits")
            ],
        )

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "workload": self.workload,
            "fault_plan": self.fault_plan,
            "seed": self.seed,
            "transport": self.transport,
            "mode": self.mode,
            "transactions": self.transactions,
            "committed": self.committed,
            "retry_exhausted": self.retry_exhausted,
            "errors": self.errors,
            "retries_total": self.retries_total,
            "abort_rate": round(self.abort_rate, 4),
            "retry_rate": round(self.retry_rate, 4),
            "throughput_txn_s": round(self.throughput_txn_s, 2),
            "p50_ms": round(self.p50_ms, 3) if self.p50_ms is not None else None,
            "p99_ms": round(self.p99_ms, 3) if self.p99_ms is not None else None,
            "serializable": self.serializable,
            "audit_complete": self.audit_complete,
            "history_fingerprint": self.history_fingerprint,
            "outcome_fingerprint": self.outcome_fingerprint,
            "wall_seconds": round(self.wall_seconds, 4),
            "hot_entities": self.hot_entities,
        }


@dataclass
class ArenaReport:
    """The whole sweep: a list of cells plus the shared configuration."""

    transport: str
    seed: int
    policies: list[str]
    workloads: list[str]
    fault_plans: list[str]
    cells: list[ArenaCell] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def all_ok(self) -> bool:
        """Every cell serializable on a complete history."""
        return all(cell.ok for cell in self.cells)

    @property
    def failures(self) -> list[ArenaCell]:
        return [cell for cell in self.cells if not cell.ok]

    def to_dict(self) -> dict:
        return {
            "transport": self.transport,
            "seed": self.seed,
            "policies": self.policies,
            "workloads": self.workloads,
            "fault_plans": self.fault_plans,
            "cells": [cell.to_dict() for cell in self.cells],
            "all_ok": self.all_ok,
            "wall_seconds": round(self.wall_seconds, 4),
        }

    def render(self) -> str:
        """A fixed-width matrix table, one row per cell."""
        header = (
            f"arena: {len(self.policies)} policies × "
            f"{len(self.workloads)} workloads × "
            f"{len(self.fault_plans)} fault plans "
            f"({self.transport} transport, seed {self.seed})"
        )
        columns = (
            f"  {'policy':<16} {'workload':<20} {'faults':<14} "
            f"{'txn/s':>8} {'p50ms':>7} {'p99ms':>7} "
            f"{'abort':>6} {'retry':>6} {'audit':>6}  hot"
        )
        lines = [header, columns]
        for cell in self.cells:
            p50 = f"{cell.p50_ms:.1f}" if cell.p50_ms is not None else "-"
            p99 = f"{cell.p99_ms:.1f}" if cell.p99_ms is not None else "-"
            audit = "ok" if cell.ok else "FAIL"
            hot = cell.hot_entities[0] if cell.hot_entities else "-"
            lines.append(
                f"  {cell.policy:<16} {cell.workload:<20} "
                f"{cell.fault_plan:<14} {cell.throughput_txn_s:>8.1f} "
                f"{p50:>7} {p99:>7} {cell.abort_rate:>6.1%} "
                f"{cell.retry_rate:>6.2f} {audit:>6}  {hot}"
            )
        lines.append(
            f"  {len(self.cells)} cells in {self.wall_seconds:.2f}s"
            + ("" if self.all_ok else f", {len(self.failures)} FAILED the audit")
        )
        return "\n".join(lines)
