"""The arena: sweep policy × workload × fault plan through the cluster.

The single-run harness (:func:`repro.cluster.run_cluster`) answers "what
happened on this one configuration"; the arena answers the comparative
question the paper's §6 poses — how do the safe locking families (2PL,
the tree protocol) and gateway-vetted optimal admission *behave* under
the same traffic and the same faults?  :func:`run_arena` executes every
cell of the cross-product sequentially, each on a fresh cluster with a
cell-specific deterministic seed, and collects one
:class:`~repro.arena.report.ArenaCell` per run.

Cells are seeded by ``crc32(seed / policy / workload / plan)``, so a
cell's memory-transport fingerprints are a pure function of the arena
seed and the cell's coordinates — stable across processes and across
re-orderings of the sweep, which is what lets the E17 benchmark assert
bit-identical reruns cell by cell.
"""

from __future__ import annotations

import time
import zlib
from collections.abc import Sequence

from ..cluster.gateway import Gateway
from ..cluster.runtime import run_cluster_sync
from ..faults.plan import FaultPlan
from ..workloads.traffic import VET_CYCLE_LIMIT, TrafficSpec, generate_workload
from .report import ArenaCell, ArenaReport

#: Fault-plan name meaning "run this cell fault-free".
NO_FAULTS = "none"


def cell_seed(seed: int, policy: str, workload: str, fault_plan: str) -> int:
    """The deterministic per-cell seed: a CRC-32 of the arena seed and
    the cell coordinates (*not* Python's salted ``hash``)."""
    label = f"{seed}/{policy}/{workload}/{fault_plan}"
    return zlib.crc32(label.encode("utf-8")) & 0x7FFFFFFF


def run_cell(
    spec: TrafficSpec,
    *,
    policy: str,
    fault_plan: FaultPlan | None = None,
    fault_plan_name: str = NO_FAULTS,
    seed: int = 0,
    transport: str = "memory",
    deadlock_policy: str = "abort-youngest",
    max_retries: int = 5,
    grant_timeout: int | None = None,
    request_timeout: float | None = None,
    vet: bool = True,
    vet_cycle_limit: int | None = VET_CYCLE_LIMIT,
) -> ArenaCell:
    """Run one cell: generate *spec* under *policy*, drive it through a
    fresh cluster with *fault_plan* injected, condense the report."""
    derived = cell_seed(seed, policy, spec.name, fault_plan_name)
    workload = generate_workload(spec, policy=policy, seed=derived)
    gateway = Gateway(cycle_limit=vet_cycle_limit) if vet else None
    try:
        report = run_cluster_sync(
            workload.system,
            transport=transport,
            deadlock_policy=deadlock_policy,
            max_retries=max_retries,
            seed=derived,
            vet=vet,
            gateway=gateway,
            fault_plan=fault_plan,
            grant_timeout=grant_timeout,
            request_timeout=request_timeout,
            **workload.cluster_kwargs(),
        )
    finally:
        if gateway is not None:
            gateway.close()
    return ArenaCell.from_report(
        report,
        policy=policy,
        workload=spec.name,
        fault_plan=fault_plan_name,
        seed=derived,
    )


def run_arena(
    specs: Sequence[TrafficSpec],
    *,
    policies: Sequence[str],
    fault_plans: Sequence[tuple[str, FaultPlan | None]] = ((NO_FAULTS, None),),
    seed: int = 0,
    transport: str = "memory",
    deadlock_policy: str = "abort-youngest",
    max_retries: int = 5,
    grant_timeout: int | None = None,
    request_timeout: float | None = None,
    vet: bool = True,
    vet_cycle_limit: int | None = VET_CYCLE_LIMIT,
) -> ArenaReport:
    """Sweep every (policy, spec, fault plan) cell, in deterministic
    iteration order: policies outermost, then workloads, then plans.

    Cells run sequentially — each boots its own cluster on its own
    event loop, so one cell's scheduling can never leak into another's
    memory-transport fingerprint.
    """
    started = time.perf_counter()
    report = ArenaReport(
        transport=transport,
        seed=seed,
        policies=list(policies),
        workloads=[spec.name for spec in specs],
        fault_plans=[name for name, _ in fault_plans],
    )
    for policy in policies:
        for spec in specs:
            for plan_name, plan in fault_plans:
                report.cells.append(
                    run_cell(
                        spec,
                        policy=policy,
                        fault_plan=plan,
                        fault_plan_name=plan_name,
                        seed=seed,
                        transport=transport,
                        deadlock_policy=deadlock_policy,
                        max_retries=max_retries,
                        grant_timeout=grant_timeout,
                        request_timeout=request_timeout,
                        vet=vet,
                        vet_cycle_limit=vet_cycle_limit,
                    )
                )
    report.wall_seconds = time.perf_counter() - started
    return report
