"""Seed-sweep chaos harness: many faulty runs, one report.

``repro chaos`` (and :mod:`benchmarks.bench_fault_recovery`) run the
same system under the same :class:`~repro.faults.plan.FaultPlan` across
a sweep of driver seeds and aggregate what the fault-recovery layer
actually delivered: how many runs completed, how the incomplete ones
ended, how many retries recovery cost, and the tail latency (in
logical steps) from a rollback to the victim's completion.  Every run
is seeded and step-budgeted, so a sweep can be large but never hangs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.schedule import TransactionSystem
from ..sim.drivers import RandomDriver
from ..sim.engine import SimulationEngine
from ..stats import percentile
from .plan import FaultPlan

__all__ = ["ChaosReport", "chaos_sweep", "percentile"]


@dataclass
class ChaosReport:
    """Aggregate statistics of one chaos sweep."""

    seeds: int
    policy: str | None
    max_retries: int
    plan_entries: int
    outcomes: dict[str, int] = field(default_factory=dict)
    total_retries: int = 0
    faults_injected: int = 0
    deadlocks_resolved: int = 0
    recovery_latencies: list[int] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def completed(self) -> int:
        """Runs that finished every step."""
        return self.outcomes.get("serializable", 0) + self.outcomes.get("non-serializable", 0)

    @property
    def completion_rate(self) -> float:
        """Fraction of runs that completed."""
        return self.completed / self.seeds if self.seeds else 0.0

    @property
    def mean_retries(self) -> float:
        """Mean abort-and-requeue events per run."""
        return self.total_retries / self.seeds if self.seeds else 0.0

    @property
    def p95_recovery_latency(self) -> float | None:
        """95th-percentile rollback-to-completion latency (logical
        steps), ``None`` when no rollback ever completed."""
        return percentile(self.recovery_latencies, 95)

    def to_dict(self) -> dict:
        """JSON-friendly rendering (used by ``repro chaos --json`` and
        ``BENCH_faults.json``)."""
        return {
            "seeds": self.seeds,
            "policy": self.policy,
            "max_retries": self.max_retries,
            "plan_entries": self.plan_entries,
            "outcomes": dict(sorted(self.outcomes.items())),
            "completion_rate": round(self.completion_rate, 4),
            "mean_retries": round(self.mean_retries, 4),
            "total_retries": self.total_retries,
            "faults_injected": self.faults_injected,
            "deadlocks_resolved": self.deadlocks_resolved,
            "recoveries": len(self.recovery_latencies),
            "p95_recovery_latency_steps": self.p95_recovery_latency,
            "wall_seconds": round(self.wall_seconds, 4),
        }

    def render(self) -> str:
        """Human-readable multi-line rendering."""
        lines = [
            f"chaos sweep: {self.seeds} seeds, "
            f"policy={self.policy or 'none'}, "
            f"max retries {self.max_retries}, "
            f"{self.plan_entries} plan entries",
        ]
        for outcome, count in sorted(self.outcomes.items()):
            lines.append(f"  {outcome:>18}: {count:4d}  ({count / self.seeds:7.2%})")
        lines.append(f"  completion rate:    {self.completion_rate:7.2%}")
        lines.append(f"  mean retries/run:   {self.mean_retries:7.2f}")
        lines.append(f"  faults injected:    {self.faults_injected}")
        lines.append(f"  deadlocks resolved: {self.deadlocks_resolved}")
        p95 = self.p95_recovery_latency
        lines.append(
            "  p95 recovery:       "
            + (f"{p95:.0f} steps" if p95 is not None else "n/a (no recoveries)")
        )
        lines.append(f"  wall time:          {self.wall_seconds:.2f} s")
        return "\n".join(lines)


def chaos_sweep(
    system: TransactionSystem,
    *,
    seeds: int,
    plan: FaultPlan | None = None,
    policy: str | None = "abort-youngest",
    max_retries: int = 3,
    fifo_grants: bool = False,
    seed_base: int = 0,
    max_steps: int | None = None,
) -> ChaosReport:
    """Run *system* under *plan* for driver seeds ``seed_base ..
    seed_base + seeds - 1`` and aggregate the outcomes."""
    report = ChaosReport(
        seeds=seeds,
        policy=policy if policy != "none" else None,
        max_retries=max_retries,
        plan_entries=len(plan) if plan is not None else 0,
    )
    start = time.perf_counter()
    for offset in range(seeds):
        seed = seed_base + offset
        engine = SimulationEngine(
            system,
            fifo_grants=fifo_grants,
            fault_plan=plan,
            deadlock_policy=policy,
            max_retries=max_retries,
            fault_seed=seed,
        )
        result = engine.run(RandomDriver(seed), max_steps=max_steps)
        report.outcomes[result.outcome] = report.outcomes.get(result.outcome, 0) + 1
        report.total_retries += result.total_retries
        report.faults_injected += result.faults_injected
        report.deadlocks_resolved += result.deadlocks_resolved
        report.recovery_latencies.extend(result.recovery_latencies)
    report.wall_seconds = time.perf_counter() - start
    return report
