"""Deterministic, seedable fault-injection plans.

A :class:`FaultPlan` is a declarative script of misfortune the engine
replays against one run: sites crash and recover at logical times,
lock grants are withheld for a while, and transactions die after a
prescribed number of executed steps.  Time is the engine's logical
clock (one tick per executed step, plus idle jumps while everything is
stalled), so the same plan against the same driver seed reproduces the
same run byte-for-byte — chaos here is replayable, not flaky.

Three fault shapes:

* :class:`SiteCrash` — the site's steps become non-executable between
  ``at`` and ``recover_at`` (``None`` = never recovers).  Its lock
  table follows one of two semantics: ``"freeze"`` keeps every lock
  held (waiters stall until recovery, as when a lock server loses
  power but keeps its durable state), while ``"release"`` clears the
  table and *aborts* every transaction that held a lock there (as when
  a lease-based lock service expires its locks on failover).
* :class:`GrantDelay` — lock requests for ``entity`` (or any entity of
  ``site``) are withheld while ``at <= clock < until``: the slow-grant
  half of the fault space, enough to reorder grant races without
  killing anything.
* :class:`TransactionCrash` — the transaction aborts right after its
  ``after_steps``-th executed step, once per run; with retries enabled
  it rolls back and runs again.
* :class:`MessageDrop` — cluster-only (:mod:`repro.cluster`): protocol
  messages addressed to ``site`` (optionally only those of ``kind``)
  are dropped while ``at <= clock < until`` on the cluster's logical
  message clock.  The simulator has no network, so its engine ignores
  these entries.

Plans round-trip through JSON (:meth:`FaultPlan.load` /
:meth:`FaultPlan.to_dict`), may name the system file they were written
for (``"system"``, resolved relative to the plan file), and
:func:`random_plan` samples valid plans from a seed for chaos sweeps
and property tests.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field

from ..core.schedule import TransactionSystem
from ..errors import FaultPlanError

#: Lock-table semantics of a crashed site.
CRASH_SEMANTICS = ("freeze", "release")


@dataclass(frozen=True)
class SiteCrash:
    """Site *site* is down from logical time *at* until *recover_at*."""

    site: int
    at: int
    recover_at: int | None = None
    semantics: str = "freeze"

    def __post_init__(self) -> None:
        if self.at < 0:
            raise FaultPlanError(f"site crash at negative time {self.at}")
        if self.recover_at is not None and self.recover_at <= self.at:
            raise FaultPlanError(
                f"site {self.site} would recover at {self.recover_at}, "
                f"not after its crash at {self.at}"
            )
        if self.semantics not in CRASH_SEMANTICS:
            raise FaultPlanError(
                f"unknown crash semantics {self.semantics!r} "
                f"(choose from {CRASH_SEMANTICS})"
            )

    def to_dict(self) -> dict:
        """JSON-friendly rendering (``None`` recover_at omitted)."""
        payload: dict = {
            "site": self.site,
            "at": self.at,
            "semantics": self.semantics,
        }
        if self.recover_at is not None:
            payload["recover_at"] = self.recover_at
        return payload


@dataclass(frozen=True)
class GrantDelay:
    """Lock grants withheld while ``at <= clock < until``."""

    at: int
    until: int
    entity: str | None = None
    site: int | None = None

    def __post_init__(self) -> None:
        if self.entity is None and self.site is None:
            raise FaultPlanError("a grant delay needs an entity or a site to slow down")
        if self.at < 0 or self.until <= self.at:
            raise FaultPlanError(f"bad grant-delay window [{self.at}, {self.until})")

    def applies_to(self, entity: str, site: int, clock: int) -> bool:
        """Is a lock on *entity* at *site* withheld at *clock*?"""
        if not (self.at <= clock < self.until):
            return False
        if self.entity is not None:
            return entity == self.entity
        return site == self.site

    def to_dict(self) -> dict:
        """JSON-friendly rendering (unset scope fields omitted)."""
        payload: dict = {"at": self.at, "until": self.until}
        if self.entity is not None:
            payload["entity"] = self.entity
        if self.site is not None:
            payload["site"] = self.site
        return payload


@dataclass(frozen=True)
class TransactionCrash:
    """*transaction* aborts right after its *after_steps*-th step."""

    transaction: str
    after_steps: int

    def __post_init__(self) -> None:
        if self.after_steps < 1:
            raise FaultPlanError(
                f"{self.transaction} cannot crash after "
                f"{self.after_steps} steps (need >= 1)"
            )

    def to_dict(self) -> dict:
        """JSON-friendly rendering."""
        return {
            "transaction": self.transaction,
            "after_steps": self.after_steps,
        }


@dataclass(frozen=True)
class MessageDrop:
    """Messages to *site* dropped while ``at <= clock < until``.

    Interpreted only by the cluster runtime's network-fault adapter
    (:mod:`repro.cluster.netfaults`); *kind* narrows the drop to one
    protocol message type (e.g. ``"lock"``), ``None`` drops any.
    """

    site: int
    at: int
    until: int
    kind: str | None = None

    def __post_init__(self) -> None:
        if self.at < 0 or self.until <= self.at:
            raise FaultPlanError(
                f"bad message-drop window [{self.at}, {self.until})"
            )

    def applies_to(self, site: int, kind: str, clock: int) -> bool:
        """Is a *kind* message to *site* dropped at *clock*?"""
        if site != self.site or not (self.at <= clock < self.until):
            return False
        return self.kind is None or kind == self.kind

    def to_dict(self) -> dict:
        """JSON-friendly rendering (unset kind omitted)."""
        payload: dict = {
            "site": self.site,
            "at": self.at,
            "until": self.until,
        }
        if self.kind is not None:
            payload["kind"] = self.kind
        return payload


@dataclass(frozen=True)
class FaultPlan:
    """The full script of faults one run replays."""

    site_crashes: tuple[SiteCrash, ...] = ()
    grant_delays: tuple[GrantDelay, ...] = ()
    transaction_crashes: tuple[TransactionCrash, ...] = ()
    message_drops: tuple[MessageDrop, ...] = ()
    #: Optional path of the system file this plan was written for
    #: (resolved against the plan file's directory by :meth:`load`).
    system_path: str | None = field(default=None, compare=False)

    def __len__(self) -> int:
        return (
            len(self.site_crashes)
            + len(self.grant_delays)
            + len(self.transaction_crashes)
            + len(self.message_drops)
        )

    def validate_against(self, system: TransactionSystem) -> None:
        """Raise :class:`FaultPlanError` if the plan names a site or
        transaction the system does not have."""
        sites = set(range(1, system.database.sites + 1))
        for crash in self.site_crashes:
            if crash.site not in sites:
                raise FaultPlanError(
                    f"plan crashes unknown site {crash.site} "
                    f"(system has sites {sorted(sites)})"
                )
        for delay in self.grant_delays:
            if delay.site is not None and delay.site not in sites:
                raise FaultPlanError(f"plan delays grants at unknown site {delay.site}")
            if delay.entity is not None and delay.entity not in system.database.entities:
                raise FaultPlanError(f"plan delays grants on unknown entity {delay.entity!r}")
        names = set(system.names)
        for crash in self.transaction_crashes:
            if crash.transaction not in names:
                raise FaultPlanError(
                    f"plan crashes unknown transaction "
                    f"{crash.transaction!r} (system has {sorted(names)})"
                )
        for drop in self.message_drops:
            if drop.site not in sites:
                raise FaultPlanError(
                    f"plan drops messages to unknown site {drop.site}"
                )

    # ------------------------------------------------------------------
    # (De)serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-friendly rendering, :meth:`from_dict`'s inverse."""
        payload: dict = {}
        if self.system_path is not None:
            payload["system"] = self.system_path
        if self.site_crashes:
            payload["site_crashes"] = [crash.to_dict() for crash in self.site_crashes]
        if self.grant_delays:
            payload["grant_delays"] = [delay.to_dict() for delay in self.grant_delays]
        if self.transaction_crashes:
            payload["transaction_crashes"] = [tx.to_dict() for tx in self.transaction_crashes]
        if self.message_drops:
            payload["message_drops"] = [drop.to_dict() for drop in self.message_drops]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        """Build a plan from parsed JSON; raises
        :class:`FaultPlanError` on malformed entries."""
        if not isinstance(payload, dict):
            raise FaultPlanError(f"a fault plan is a JSON object, not {type(payload).__name__}")
        known = {
            "system",
            "site_crashes",
            "grant_delays",
            "transaction_crashes",
            "message_drops",
        }
        unknown = set(payload) - known
        if unknown:
            raise FaultPlanError(
                f"unknown fault-plan keys {sorted(unknown)} "
                f"(known: {sorted(known)})"
            )
        try:
            return cls(
                site_crashes=tuple(
                    SiteCrash(**entry) for entry in payload.get("site_crashes", ())
                ),
                grant_delays=tuple(
                    GrantDelay(**entry) for entry in payload.get("grant_delays", ())
                ),
                transaction_crashes=tuple(
                    TransactionCrash(**entry) for entry in payload.get("transaction_crashes", ())
                ),
                message_drops=tuple(
                    MessageDrop(**entry) for entry in payload.get("message_drops", ())
                ),
                system_path=payload.get("system"),
            )
        except TypeError as exc:
            raise FaultPlanError(f"malformed fault-plan entry: {exc}") from None

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        """Read a plan from a JSON file; a relative ``"system"`` path
        is resolved against the plan file's directory."""
        with open(path, encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except ValueError as exc:
                raise FaultPlanError(f"{path}: not valid JSON ({exc})") from None
        plan = cls.from_dict(payload)
        if plan.system_path is not None and not os.path.isabs(plan.system_path):
            resolved = os.path.join(os.path.dirname(path), plan.system_path)
            plan = cls(
                site_crashes=plan.site_crashes,
                grant_delays=plan.grant_delays,
                transaction_crashes=plan.transaction_crashes,
                message_drops=plan.message_drops,
                system_path=resolved,
            )
        return plan


def random_plan(
    system: TransactionSystem,
    seed: int,
    *,
    site_crashes: int = 1,
    grant_delays: int = 1,
    transaction_crashes: int = 1,
    horizon: int | None = None,
    recoverable: bool = True,
) -> FaultPlan:
    """A seeded random plan that is valid for *system*.

    Fault times are sampled inside ``[0, horizon)`` (default: the
    system's step count), crash durations are short relative to the
    horizon, and with *recoverable* every crashed site comes back — the
    configuration chaos sweeps and the termination property test use.
    """
    rng = random.Random(seed)
    if horizon is None:
        horizon = max(4, system.total_steps())
    sites = list(range(1, system.database.sites + 1))
    entities = sorted(system.database.entities)
    crashes = []
    for _ in range(site_crashes):
        at = rng.randrange(horizon)
        duration = rng.randint(1, max(2, horizon // 2))
        recover_at: int | None = at + duration
        if not recoverable and rng.random() < 0.25:
            recover_at = None
        crashes.append(
            SiteCrash(
                site=rng.choice(sites),
                at=at,
                recover_at=recover_at,
                semantics=rng.choice(CRASH_SEMANTICS),
            )
        )
    delays = []
    for _ in range(grant_delays):
        at = rng.randrange(horizon)
        delays.append(
            GrantDelay(
                at=at,
                until=at + rng.randint(1, max(2, horizon // 2)),
                entity=rng.choice(entities),
            )
        )
    tx_crashes = []
    victims = rng.sample(system.names, min(transaction_crashes, len(system.names)))
    for name in victims:
        steps = len(system[name])
        tx_crashes.append(
            TransactionCrash(
                transaction=name,
                after_steps=rng.randint(1, max(1, steps - 1)),
            )
        )
    plan = FaultPlan(
        site_crashes=tuple(crashes),
        grant_delays=tuple(delays),
        transaction_crashes=tuple(tx_crashes),
    )
    plan.validate_against(system)
    return plan
