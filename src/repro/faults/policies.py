"""Deadlock *resolution* policies: which cycle member dies.

The detector (:mod:`repro.sim.deadlock`) finds a wait-for cycle; a
resolution policy picks the victim the engine rolls back and requeues.
Ages are admission-order indices fixed at engine construction and kept
across restarts (the classical guard against livelock: a transaction
cannot stay "youngest forever" by virtue of being repeatedly killed —
its relative age is stable, and bounded retries end the fight either
way).

* ``abort-youngest`` — kill the youngest cycle member, the classical
  minimum-lost-work heuristic;
* ``abort-random`` — kill a seeded-uniform member, the baseline that
  shows how much the heuristics actually buy;
* ``wound-wait`` — the oldest waiter in the cycle *wounds* the member
  it waits for, Rosenkrantz-style, applied here at detection time
  rather than at every conflict.
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence

from ..errors import FaultPlanError

#: The deadlock-resolution policies the engine understands.
POLICIES = ("abort-youngest", "abort-random", "wound-wait")


def validate_policy(policy: str | None) -> str | None:
    """Normalize *policy*: ``None``/``"none"`` disable resolution, any
    other value must be one of :data:`POLICIES`."""
    if policy is None or policy == "none":
        return None
    if policy not in POLICIES:
        raise FaultPlanError(f"unknown deadlock policy {policy!r} (choose from {POLICIES})")
    return policy


def choose_victim(
    policy: str,
    cycle: Sequence[str],
    ages: Mapping[str, int],
    rng: random.Random,
) -> str:
    """The cycle member *policy* sacrifices.

    *cycle* lists the members in wait-for order (``cycle[i]`` waits for
    ``cycle[i+1]``, wrapping); *ages* maps names to admission-order
    indices (smaller = older); *rng* is the engine's seeded fault RNG,
    consumed only by ``abort-random``.
    """
    if not cycle:
        raise FaultPlanError("cannot pick a victim from an empty cycle")
    if policy == "abort-youngest":
        return max(cycle, key=lambda name: (ages.get(name, -1), name))
    if policy == "abort-random":
        return rng.choice(sorted(cycle))
    if policy == "wound-wait":
        oldest = min(cycle, key=lambda name: (ages.get(name, -1), name))
        return cycle[(cycle.index(oldest) + 1) % len(cycle)]
    raise FaultPlanError(f"unknown deadlock policy {policy!r} (choose from {POLICIES})")
