"""Per-run mutable view of a :class:`~repro.faults.plan.FaultPlan`.

The plan itself is immutable and reusable across runs; a
:class:`FaultInjector` tracks which of its entries have fired in *this*
run — which sites are currently down, which transaction crashes are
still pending — and tells the engine when the next scheduled fault or
recovery is due, so a fully stalled engine can jump its logical clock
forward instead of spinning.
"""

from __future__ import annotations

from .plan import FaultPlan, GrantDelay, SiteCrash, TransactionCrash


class FaultInjector:
    """Replays one :class:`FaultPlan` against one engine run."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._pending_crashes: list[SiteCrash] = sorted(
            plan.site_crashes, key=lambda crash: crash.at
        )
        self._down: dict[int, SiteCrash] = {}
        self._pending_tx: dict[str, TransactionCrash] = {
            crash.transaction: crash for crash in plan.transaction_crashes
        }
        self._delays_seen: set[GrantDelay] = set()
        #: Faults that actually fired this run (site + tx crashes, and
        #: grant delays the moment they first withhold a grant).
        self.injected = 0

    # ------------------------------------------------------------------
    def advance(self, clock: int) -> tuple[list[SiteCrash], list[SiteCrash]]:
        """Fire every crash / recovery due at *clock*; returns the
        newly crashed and newly recovered entries (for events)."""
        fired = [crash for crash in self._pending_crashes if crash.at <= clock]
        for crash in fired:
            self._pending_crashes.remove(crash)
            self._down[crash.site] = crash
            self.injected += 1
        recovered = [
            crash
            for crash in self._down.values()
            if crash.recover_at is not None and crash.recover_at <= clock
        ]
        for crash in recovered:
            del self._down[crash.site]
        return fired, recovered

    def site_down(self, site: int) -> bool:
        """Is *site* currently crashed?"""
        return site in self._down

    def down_sites(self) -> list[int]:
        """The currently crashed sites, sorted."""
        return sorted(self._down)

    def grant_delayed(self, entity: str, site: int, clock: int) -> bool:
        """Is a lock grant on *entity* at *site* withheld at *clock*?
        The first withheld grant per delay entry counts as an injected
        fault."""
        for delay in self.plan.grant_delays:
            if delay.applies_to(entity, site, clock):
                if delay not in self._delays_seen:
                    self._delays_seen.add(delay)
                    self.injected += 1
                return True
        return False

    def take_transaction_crash(self, name: str, executed: int) -> TransactionCrash | None:
        """The pending crash of *name* if its step count is due —
        removed so it fires exactly once per run."""
        crash = self._pending_tx.get(name)
        if crash is None or executed < crash.after_steps:
            return None
        del self._pending_tx[name]
        self.injected += 1
        return crash

    def next_wakeup(self, clock: int) -> int | None:
        """The earliest strictly-future time at which the plan changes
        the world: a crash fires, a site recovers, or a grant-delay
        window opens or closes.  ``None`` when nothing is scheduled."""
        times = [crash.at for crash in self._pending_crashes if crash.at > clock]
        times.extend(
            crash.recover_at
            for crash in self._down.values()
            if crash.recover_at is not None and crash.recover_at > clock
        )
        for delay in self.plan.grant_delays:
            if delay.at > clock:
                times.append(delay.at)
            if delay.until > clock:
                times.append(delay.until)
        return min(times, default=None)
