"""Deterministic fault injection and recovery for the simulator.

The paper's engine "never reorders or aborts on its own"; this package
is where the reproduction grows past that boundary toward the
distributed-systems reality the paper's closing remark defers: sites
crash (and their lock tables freeze or evaporate), lock grants lag,
transactions die mid-flight, and detected deadlocks are *resolved* —
a victim rolls back and retries under exponential backoff — instead of
terminating the run.  Everything is seeded and replays byte-for-byte.

* :mod:`repro.faults.plan` — the declarative :class:`FaultPlan`
  (JSON-round-trippable) and :func:`random_plan`;
* :mod:`repro.faults.injector` — per-run plan state the engine
  consults;
* :mod:`repro.faults.policies` — deadlock-resolution victim selection;
* :mod:`repro.faults.chaos` — seed sweeps with aggregate
  completion/abort/retry statistics.
"""

from .chaos import ChaosReport, chaos_sweep, percentile
from .injector import FaultInjector
from .plan import (
    CRASH_SEMANTICS,
    FaultPlan,
    GrantDelay,
    MessageDrop,
    SiteCrash,
    TransactionCrash,
    random_plan,
)
from .policies import POLICIES, choose_victim, validate_policy

__all__ = [
    "CRASH_SEMANTICS",
    "ChaosReport",
    "FaultInjector",
    "FaultPlan",
    "GrantDelay",
    "MessageDrop",
    "POLICIES",
    "SiteCrash",
    "TransactionCrash",
    "chaos_sweep",
    "choose_victim",
    "percentile",
    "random_plan",
    "validate_policy",
]
