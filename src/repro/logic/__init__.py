"""CNF formulas, the restricted form of Theorem 3, and a DPLL solver."""

from .cnf import Clause, CnfFormula, Literal, neg, pos, to_restricted_form
from .solver import all_models, is_satisfiable, solve, verify_model

__all__ = [
    "Clause",
    "CnfFormula",
    "Literal",
    "all_models",
    "is_satisfiable",
    "neg",
    "pos",
    "solve",
    "to_restricted_form",
    "verify_model",
]
