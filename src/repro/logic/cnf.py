"""CNF formulas and the restricted form required by Theorem 3.

The paper reduces from CNF satisfiability, assuming without loss of
generality that

    "no CNF clause has more than three literals, and each variable
     appears at most twice unnegated and at most once negated (this is a
     well-known NP-complete version of satisfiability)."

This module supplies the formula model (:class:`Literal`,
:class:`Clause`, :class:`CnfFormula`), a parser for a small textual
format, and :func:`to_restricted_form` — the chain-of-copies transform
that rewrites an arbitrary CNF into the restricted form while preserving
satisfiability (so end-to-end pipelines can start from any formula).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from ..errors import ReductionError


@dataclass(frozen=True, order=True)
class Literal:
    """A variable or its negation."""

    variable: str
    negated: bool = False

    def __str__(self) -> str:
        return ("~" if self.negated else "") + self.variable

    __repr__ = __str__

    def __invert__(self) -> "Literal":
        return Literal(self.variable, not self.negated)

    def value_under(self, assignment: Mapping[str, bool]) -> bool:
        value = assignment[self.variable]
        return (not value) if self.negated else value


def pos(variable: str) -> Literal:
    """The positive literal of *variable*."""
    return Literal(variable, False)


def neg(variable: str) -> Literal:
    """The negated literal of *variable*."""
    return Literal(variable, True)


@dataclass(frozen=True)
class Clause:
    """A disjunction of literals."""

    literals: tuple[Literal, ...]

    def __post_init__(self) -> None:
        if not self.literals:
            raise ReductionError("empty clause (formula trivially false)")

    def __str__(self) -> str:
        return "(" + " | ".join(str(lit) for lit in self.literals) + ")"

    __repr__ = __str__

    def __len__(self) -> int:
        return len(self.literals)

    def __iter__(self):
        return iter(self.literals)

    def satisfied_by(self, assignment: Mapping[str, bool]) -> bool:
        return any(lit.value_under(assignment) for lit in self.literals)


class CnfFormula:
    """A conjunction of clauses."""

    def __init__(self, clauses: Iterable[Clause | Sequence[Literal]]):
        normalized: list[Clause] = []
        for clause in clauses:
            if isinstance(clause, Clause):
                normalized.append(clause)
            else:
                normalized.append(Clause(tuple(clause)))
        if not normalized:
            raise ReductionError("a formula needs at least one clause")
        self.clauses = normalized

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "CnfFormula":
        """Parse ``"(x1 | ~x2 | x3) & (~x1 | x2)"``-style text.

        Also accepts newline-separated clauses without parentheses.
        """
        chunks: list[str] = []
        for part in text.replace("\n", "&").split("&"):
            part = part.strip().strip("()").strip()
            if part:
                chunks.append(part)
        clauses = []
        for chunk in chunks:
            literals = []
            for token in chunk.replace("|", " ").replace("v", " ").split():
                token = token.strip()
                if not token:
                    continue
                if token.startswith(("~", "!", "-")):
                    literals.append(neg(token[1:]))
                else:
                    literals.append(pos(token))
            if literals:
                clauses.append(Clause(tuple(literals)))
        return cls(clauses)

    # ------------------------------------------------------------------
    def variables(self) -> list[str]:
        """All variables, in first-occurrence order."""
        seen: dict[str, None] = {}
        for clause in self.clauses:
            for literal in clause:
                seen.setdefault(literal.variable, None)
        return list(seen)

    def __str__(self) -> str:
        return " & ".join(str(clause) for clause in self.clauses)

    __repr__ = __str__

    def __len__(self) -> int:
        return len(self.clauses)

    def satisfied_by(self, assignment: Mapping[str, bool]) -> bool:
        return all(clause.satisfied_by(assignment) for clause in self.clauses)

    def occurrence_counts(self) -> dict[str, tuple[int, int]]:
        """Per variable: (positive occurrences, negative occurrences)."""
        counts: dict[str, list[int]] = {}
        for clause in self.clauses:
            for literal in clause:
                entry = counts.setdefault(literal.variable, [0, 0])
                entry[1 if literal.negated else 0] += 1
        return {var: (p, n) for var, (p, n) in counts.items()}

    def is_restricted_form(self) -> bool:
        """Theorem 3's precondition: clauses of at most three literals,
        each variable at most twice positive and at most once negative."""
        if any(len(clause) > 3 for clause in self.clauses):
            return False
        return all(
            positive <= 2 and negative <= 1
            for positive, negative in self.occurrence_counts().values()
        )


def to_restricted_form(formula: CnfFormula) -> CnfFormula:
    """Rewrite any CNF into the restricted form, preserving
    satisfiability.

    Two standard steps:

    1. Split long clauses with fresh chaining variables:
       ``(a|b|c|d)`` becomes ``(a|b|s) & (~s|c|d)``.
    2. For a variable outside the occurrence budget, introduce one fresh
       copy per occurrence, linked in an implication cycle
       ``v1 ⟹ v2 ⟹ ... ⟹ vk ⟹ v1`` that forces all copies equal.  A
       cycle link costs each copy one positive and one negative
       occurrence, leaving budget for exactly one *positive* clause
       occurrence — so a **negative** occurrence is instead routed
       through an *inverter* variable ``w ≡ ¬v`` spliced into the copy's
       outgoing link (``(¬vi | ¬w) & (w | v_{i+1})``), and the clause
       uses ``w`` positively.
    """
    # Step 1: clause splitting.
    fresh = 0

    def fresh_var(prefix: str) -> str:
        nonlocal fresh
        fresh += 1
        return f"_{prefix}{fresh}"

    clauses: list[list[Literal]] = []
    for clause in formula.clauses:
        literals = list(clause.literals)
        while len(literals) > 3:
            bridge = fresh_var("s")
            head, rest = literals[:2], literals[2:]
            clauses.append(head + [pos(bridge)])
            literals = [neg(bridge)] + rest
        clauses.append(literals)

    # Step 2: occurrence limiting via copy cycles with inverter links.
    polarity_counts: dict[str, list[int]] = {}
    for clause in clauses:
        for literal in clause:
            entry = polarity_counts.setdefault(literal.variable, [0, 0])
            entry[1 if literal.negated else 0] += 1
    heavy = {
        variable
        for variable, (positive, negative) in polarity_counts.items()
        if positive > 2 or negative > 1
    }
    # Replace each occurrence of a heavy variable by a literal over a
    # fresh copy; remember the polarity so the cycle links can be built.
    result: list[list[Literal]] = []
    occurrence_polarity: dict[str, list[bool]] = {}
    for clause in clauses:
        new_clause: list[Literal] = []
        for literal in clause:
            if literal.variable not in heavy:
                new_clause.append(literal)
                continue
            polarities = occurrence_polarity.setdefault(literal.variable, [])
            index = len(polarities)
            polarities.append(literal.negated)
            copy = f"{literal.variable}_c{index}"
            if literal.negated:
                # the clause will use the inverter w_i positively
                new_clause.append(pos(f"{literal.variable}_w{index}"))
            else:
                new_clause.append(pos(copy))
        result.append(new_clause)
    cycle_clauses: list[list[Literal]] = []
    for variable, polarities in occurrence_polarity.items():
        k = len(polarities)
        for index, negated in enumerate(polarities):
            here = f"{variable}_c{index}"
            there = f"{variable}_c{(index + 1) % k}"
            if negated:
                inverter = f"{variable}_w{index}"
                # vi ⟹ ¬w and ¬w ⟹ v_{i+1}; jointly w ≡ ¬v.
                cycle_clauses.append([neg(here), neg(inverter)])
                cycle_clauses.append([pos(inverter), pos(there)])
            else:
                cycle_clauses.append([neg(here), pos(there)])
    restricted = CnfFormula(result + cycle_clauses)
    if not restricted.is_restricted_form():
        raise ReductionError(
            "internal error: restricted-form transform produced a "
            "formula outside the restricted form"
        )
    return restricted
