"""A small DPLL SAT solver.

The Theorem 3 pipeline needs a satisfiability oracle to cross-check the
reduction (``F`` satisfiable ⟺ ``{T1(F), T2(F)}`` unsafe) and to map
satisfying assignments to dominators and back.  Unit propagation +
pure-literal elimination + first-unassigned branching is ample for the
formula sizes a reproduction exercises.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from .cnf import CnfFormula, Literal


def _propagate(
    clauses: list[list[Literal]], assignment: dict[str, bool]
) -> list[list[Literal]] | None:
    """Apply unit propagation; return simplified clauses or None on
    conflict.  *assignment* is extended in place."""
    changed = True
    while changed:
        changed = False
        simplified: list[list[Literal]] = []
        for clause in clauses:
            survivors: list[Literal] = []
            satisfied = False
            for literal in clause:
                if literal.variable in assignment:
                    if literal.value_under(assignment):
                        satisfied = True
                        break
                else:
                    survivors.append(literal)
            if satisfied:
                continue
            if not survivors:
                return None  # conflict
            if len(survivors) == 1:
                unit = survivors[0]
                assignment[unit.variable] = not unit.negated
                changed = True
            else:
                simplified.append(survivors)
        clauses = simplified
    return clauses


def solve(formula: CnfFormula) -> dict[str, bool] | None:
    """A satisfying assignment (complete over the formula's variables),
    or ``None`` when unsatisfiable."""
    variables = formula.variables()

    def search(
        clauses: list[list[Literal]], assignment: dict[str, bool]
    ) -> dict[str, bool] | None:
        clauses = _propagate(clauses, assignment)
        if clauses is None:
            return None
        if not clauses:
            return assignment
        # Pure-literal elimination.
        polarity: dict[str, set[bool]] = {}
        for clause in clauses:
            for literal in clause:
                polarity.setdefault(literal.variable, set()).add(
                    literal.negated
                )
        pures = {
            variable: (False in negs)
            for variable, negs in polarity.items()
            if len(negs) == 1
        }
        if pures:
            assignment = dict(assignment)
            assignment.update(pures)
            clauses = [
                clause
                for clause in clauses
                if not any(lit.variable in pures for lit in clause)
            ]
            return search(clauses, assignment)
        branch = clauses[0][0].variable
        for choice in (True, False):
            trial = dict(assignment)
            trial[branch] = choice
            found = search([list(c) for c in clauses], trial)
            if found is not None:
                return found
        return None

    found = search([list(clause.literals) for clause in formula.clauses], {})
    if found is None:
        return None
    # Complete the assignment over unconstrained variables.
    for variable in variables:
        found.setdefault(variable, False)
    return {variable: found[variable] for variable in variables}


def is_satisfiable(formula: CnfFormula) -> bool:
    """Satisfiability verdict."""
    return solve(formula) is not None


def all_models(
    formula: CnfFormula, limit: int | None = None
) -> Iterator[dict[str, bool]]:
    """Enumerate all satisfying assignments (over the formula variables)
    by brute force — exact and fine for reduction-scale formulas."""
    variables = formula.variables()
    produced = 0
    total = 1 << len(variables)
    for mask in range(total):
        assignment = {
            variable: bool(mask >> position & 1)
            for position, variable in enumerate(variables)
        }
        if formula.satisfied_by(assignment):
            yield assignment
            produced += 1
            if limit is not None and produced >= limit:
                return


def verify_model(formula: CnfFormula, assignment: Mapping[str, bool]) -> bool:
    """Check a claimed model."""
    return formula.satisfied_by(assignment)
