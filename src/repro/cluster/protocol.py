"""The cluster's length-prefixed wire protocol and its two codecs.

Every message — client request, site reply, or site-to-site probe — is
one *frame*: a 4-byte big-endian payload length followed by an encoded
message body.  Both transports (:mod:`repro.cluster.transport`) carry
encoded frames, so the deterministic in-memory tests exercise exactly
the bytes a TCP deployment puts on the wire.

Two payload encodings exist, behind one :class:`WireCodec` interface:

* :class:`JsonCodec` (``"json"``) — compact, key-sorted JSON.  The
  original wire format and the interop baseline every peer speaks.
* :class:`BinaryCodec` (``"binary"``) — a struct-packed, msgpack-style
  tagged encoding (first payload byte ``0xB1``, which no JSON payload
  can start with).  Same message model, smaller and cheaper frames.

Because a JSON payload always starts with ``{`` and a binary payload
always starts with :data:`BINARY_MAGIC`, :func:`decode_payload`
auto-detects the codec per frame — a receiver never needs negotiation
to *read*.  Negotiation exists so a **sender** never emits binary at a
peer that cannot read it: a client opens a connection with a ``hello``
request listing the codecs it would like to send, and the site answers
with the one it picks (:func:`choose_codec`).  A peer that predates
``hello`` answers ``error`` — the client then stays on JSON, which is
exactly the mixed-version downgrade the tests pin.

Requests carry an ``id`` the reply echoes (the coordinator routes
replies by it); site-to-site messages (``probe``, ``resolve``) are
fire-and-forget and carry none.  The ``batch`` request ships several
steps of one transaction in a single frame; its reply carries one
result per step (see ``docs/cluster.md`` for the full message table
and the batch semantics).

Two **optional** observability fields may ride on any message, added
and consumed by :mod:`repro.obs.distributed`:

* ``trace`` — ``{"id": trace_id, "span": span_id, "pid": pid}``, the
  sender's open span, so the receiver can parent its own span across
  the process boundary;
* ``wire`` — ``{"send_ns": ...}`` stamped by the sending transport
  (the receiver adds ``recv_ns``), feeding the per-stage latency
  histograms.

Decoding tolerates both fields' absence — frames from nodes that
predate them (or run with observability off) are served identically,
and unknown keys were always passed through untouched.
"""

from __future__ import annotations

import json
import struct

from ..errors import ReproError

#: Frames above this size are refused (a corrupt length prefix
#: otherwise asks the reader to allocate gigabytes).
MAX_FRAME = 16 * 1024 * 1024

#: Client-to-site request kinds (each gets a reply with the same id).
REQUEST_KINDS = (
    "hello",
    "lock",
    "unlock",
    "update",
    "release",
    "commit",
    "batch",
    "history",
    "ping",
    "shutdown",
    # Replication kinds (:mod:`repro.replica`): leader discovery,
    # lease-epoch votes, log shipping, and new-leader catch-up.
    "leader",
    "vote",
    "replicate",
    "fetch_log",
    # Introspection kinds (:mod:`repro.obs.insight`): a live snapshot
    # of one site's lock table / wait-for edges / replica lease state,
    # and a deep view of one entity or transaction.
    "status",
    "inspect",
)

#: Site-to-site kinds (fire-and-forget, no id, no reply).
PEER_KINDS = ("probe", "resolve")


class ProtocolError(ReproError):
    """A malformed or oversized frame, or an ill-typed message."""


# ----------------------------------------------------------------------
# Codecs
# ----------------------------------------------------------------------
class WireCodec:
    """One way of turning a message dict into frame-payload bytes.

    Implementations must be *canonical* — equal messages encode to
    equal bytes — because the memory-transport determinism fingerprint
    and the codec cross-compat property test both rely on it.
    """

    name = "?"

    def encode_payload(self, message: dict) -> bytes:
        raise NotImplementedError

    def decode_payload(self, payload: bytes) -> dict:
        raise NotImplementedError


class JsonCodec(WireCodec):
    """Compact, key-sorted JSON (the original wire format)."""

    name = "json"

    def encode_payload(self, message: dict) -> bytes:
        return json.dumps(message, separators=(",", ":"), sort_keys=True).encode("utf-8")

    def decode_payload(self, payload: bytes) -> dict:
        try:
            message = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(f"frame payload is not valid JSON: {exc}") from None
        if not isinstance(message, dict):
            raise ProtocolError("a message is an encoded object with a 'type' key")
        return message


#: First byte of every binary payload.  ``0xB1`` is not valid UTF-8
#: JSON start, so receivers can tell the codecs apart per frame.
BINARY_MAGIC = 0xB1

# Binary type tags.  Small non-negative ints (< 0x80) are encoded as
# themselves in one byte; everything else is a tag byte + struct body.
_T_NONE = 0xC0
_T_FALSE = 0xC2
_T_TRUE = 0xC3
_T_INT = 0xD0  # i64 big-endian
_T_BIGINT = 0xD1  # u8 length + signed big-endian bytes
_T_FLOAT = 0xD2  # f64 big-endian
_T_STR = 0xA0  # u32 length + UTF-8 bytes
_T_LIST = 0x90  # u32 count + items
_T_DICT = 0x80  # u32 count + sorted (key, value) pairs
_T_COMMON = 0xE0  # 0xE0 + index into _COMMON_STRINGS, one byte total

#: Protocol vocabulary encoded as a single tag byte (0xE0 + index).
#: Both ends share this table as part of the ``binary`` codec
#: definition; the table is append-only — changing an existing entry's
#: position is a wire-format break.
_COMMON_STRINGS = (
    "type",
    "id",
    "status",
    "txn",
    "entity",
    "age",
    "steps",
    "step",
    "op",
    "results",
    "reason",
    "lock",
    "unlock",
    "update",
    "release",
    "commit",
    "batch",
    "granted",
    "released",
    "applied",
    "queued",
    "cancelled",
    "superseded",
    "deadlock",
    "timeout",
    "error",
    "probe",
    "resolve",
    "path",
    "target",
    "site",
    "victim",
)
_COMMON_INDEX = {name: index for index, name in enumerate(_COMMON_STRINGS)}
assert len(_COMMON_STRINGS) <= 0x100 - _T_COMMON

_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")
_U32 = struct.Struct(">I")
_I64_MIN, _I64_MAX = -(2**63), 2**63 - 1


class BinaryCodec(WireCodec):
    """Struct-packed tagged binary encoding of the same message model.

    Value model: ``None``, bools, ints (arbitrary precision), floats,
    strings, lists/tuples, and string-keyed dicts — exactly what the
    JSON codec carries, so every wire message round-trips identically
    through either codec.  Dict keys are emitted sorted, making the
    encoding canonical like the JSON codec's ``sort_keys=True``.
    """

    name = "binary"

    def encode_payload(self, message: dict) -> bytes:
        if not isinstance(message, dict):
            raise ProtocolError("a message is a dict with a 'type' key")
        out = bytearray((BINARY_MAGIC,))
        self._pack(out, message)
        return bytes(out)

    def _pack(self, out: bytearray, value) -> None:
        if isinstance(value, str):
            index = _COMMON_INDEX.get(value)
            if index is not None:
                out.append(_T_COMMON + index)
            else:
                raw = value.encode("utf-8")
                out.append(_T_STR)
                out += _U32.pack(len(raw))
                out += raw
        elif value is None:
            out.append(_T_NONE)
        elif value is True:
            out.append(_T_TRUE)
        elif value is False:
            out.append(_T_FALSE)
        elif isinstance(value, int):
            if 0 <= value < 0x80:
                out.append(value)
            elif _I64_MIN <= value <= _I64_MAX:
                out.append(_T_INT)
                out += _I64.pack(value)
            else:
                raw = value.to_bytes((value.bit_length() + 8) // 8, "big", signed=True)
                if len(raw) > 0xFF:
                    raise ProtocolError("integer too large for the binary codec")
                out.append(_T_BIGINT)
                out.append(len(raw))
                out += raw
        elif isinstance(value, float):
            out.append(_T_FLOAT)
            out += _F64.pack(value)
        elif isinstance(value, (list, tuple)):
            out.append(_T_LIST)
            out += _U32.pack(len(value))
            for item in value:
                self._pack(out, item)
        elif isinstance(value, dict):
            out.append(_T_DICT)
            out += _U32.pack(len(value))
            for key in sorted(value):
                if not isinstance(key, str):
                    raise ProtocolError(f"binary codec requires string keys, got {key!r}")
                self._pack(out, key)
                self._pack(out, value[key])
        else:
            raise ProtocolError(f"binary codec cannot encode {type(value).__name__}")

    def decode_payload(self, payload: bytes) -> dict:
        if not payload or payload[0] != BINARY_MAGIC:
            raise ProtocolError("not a binary frame payload")
        try:
            message, offset = self._unpack(payload, 1)
        except (struct.error, IndexError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"malformed binary payload: {exc}") from None
        if offset != len(payload):
            raise ProtocolError(
                f"binary payload has {len(payload) - offset} trailing byte(s)"
            )
        if not isinstance(message, dict):
            raise ProtocolError("a message is an encoded object with a 'type' key")
        return message

    def _unpack(self, payload: bytes, offset: int):
        tag = payload[offset]
        offset += 1
        if tag < 0x80:
            return tag, offset
        if tag >= _T_COMMON:
            index = tag - _T_COMMON
            if index >= len(_COMMON_STRINGS):
                raise ProtocolError(f"unknown common-string tag 0x{tag:02x}")
            return _COMMON_STRINGS[index], offset
        if tag == _T_NONE:
            return None, offset
        if tag == _T_TRUE:
            return True, offset
        if tag == _T_FALSE:
            return False, offset
        if tag == _T_INT:
            return _I64.unpack_from(payload, offset)[0], offset + 8
        if tag == _T_BIGINT:
            length = payload[offset]
            offset += 1
            raw = payload[offset : offset + length]
            if len(raw) != length:
                raise ProtocolError("truncated binary integer")
            return int.from_bytes(raw, "big", signed=True), offset + length
        if tag == _T_FLOAT:
            return _F64.unpack_from(payload, offset)[0], offset + 8
        if tag == _T_STR:
            (length,) = _U32.unpack_from(payload, offset)
            offset += 4
            raw = payload[offset : offset + length]
            if len(raw) != length:
                raise ProtocolError("truncated binary string")
            return raw.decode("utf-8"), offset + length
        if tag == _T_LIST:
            (count,) = _U32.unpack_from(payload, offset)
            offset += 4
            items = []
            for _ in range(count):
                item, offset = self._unpack(payload, offset)
                items.append(item)
            return items, offset
        if tag == _T_DICT:
            (count,) = _U32.unpack_from(payload, offset)
            offset += 4
            result = {}
            for _ in range(count):
                key, offset = self._unpack(payload, offset)
                if not isinstance(key, str):
                    raise ProtocolError("binary dict key is not a string")
                value, offset = self._unpack(payload, offset)
                result[key] = value
            return result, offset
        raise ProtocolError(f"unknown binary tag 0x{tag:02x}")


#: The codec singletons, by wire name.
JSON_CODEC = JsonCodec()
BINARY_CODEC = BinaryCodec()
CODECS = {codec.name: codec for codec in (JSON_CODEC, BINARY_CODEC)}


def codec_named(name: str) -> WireCodec:
    """The codec registered under *name* (``json`` or ``binary``)."""
    try:
        return CODECS[name]
    except KeyError:
        raise ProtocolError(
            f"unknown codec {name!r} (choose from {sorted(CODECS)})"
        ) from None


def choose_codec(offered) -> WireCodec:
    """The codec a site picks from a ``hello``'s *offered* list: the
    first offered name it knows, falling back to JSON."""
    for name in offered or ():
        if name in CODECS:
            return CODECS[name]
    return JSON_CODEC


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode(message: dict, codec: WireCodec = JSON_CODEC) -> bytes:
    """One wire frame: 4-byte big-endian length + encoded payload."""
    payload = codec.encode_payload(message)
    if len(payload) > MAX_FRAME:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds MAX_FRAME ({MAX_FRAME})")
    return len(payload).to_bytes(4, "big") + payload


def decode(frame: bytes) -> dict:
    """Parse one full frame (prefix included) back into a message."""
    if len(frame) < 4:
        raise ProtocolError(f"truncated frame: {len(frame)} bytes")
    length = int.from_bytes(frame[:4], "big")
    if length > MAX_FRAME:
        raise ProtocolError(f"frame length {length} exceeds MAX_FRAME")
    if len(frame) - 4 != length:
        raise ProtocolError(f"frame length prefix says {length}, payload is {len(frame) - 4}")
    return decode_payload(frame[4:])


def decode_payload(payload: bytes) -> dict:
    """Parse a frame payload (prefix already stripped), auto-detecting
    the codec by its first byte — binary payloads start with
    :data:`BINARY_MAGIC`, JSON payloads with ``{``."""
    if payload[:1] == bytes((BINARY_MAGIC,)):
        message = BINARY_CODEC.decode_payload(payload)
    else:
        message = JSON_CODEC.decode_payload(payload)
    if "type" not in message:
        raise ProtocolError("a message is an encoded object with a 'type' key")
    return message


async def read_message(reader) -> dict | None:
    """Read one message from an :class:`asyncio.StreamReader`
    (``None`` at EOF)."""
    message, _ = await read_frame(reader)
    return message


async def read_frame(reader) -> tuple[dict | None, int]:
    """Read one message from an :class:`asyncio.StreamReader`, also
    reporting the frame's size in bytes (prefix included).  ``(None,
    0)`` at EOF."""
    import asyncio

    try:
        prefix = await reader.readexactly(4)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None, 0
    length = int.from_bytes(prefix, "big")
    if length > MAX_FRAME:
        raise ProtocolError(f"frame length {length} exceeds MAX_FRAME")
    try:
        payload = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None, 0
    return decode_payload(payload), 4 + length


def request(kind: str, request_id: int, **fields) -> dict:
    """A client request frame body (``id`` echoed by the reply)."""
    if kind not in REQUEST_KINDS:
        raise ProtocolError(f"unknown request kind {kind!r} (choose from {REQUEST_KINDS})")
    message = {"type": kind, "id": request_id}
    message.update(fields)
    return message


def reply(request_id: int, status: str, **fields) -> dict:
    """A site reply to the request with *request_id*."""
    message = {"type": "reply", "id": request_id, "status": status}
    message.update(fields)
    return message


async def negotiate(connection, codec: WireCodec) -> WireCodec:
    """Client side of the ``hello`` exchange on a fresh *connection*.

    Sends a ``hello`` offering *codec* (JSON is always implied), reads
    the site's answer, and points ``connection.codec`` at whatever both
    ends agreed on.  A ``json`` preference needs no exchange.  A peer
    that answers anything but a ``hello`` reply (an old site answers
    ``error``) leaves the connection on JSON — mixed versions always
    interoperate.  Returns the codec the connection will send with.
    """
    if codec.name == JSON_CODEC.name:
        return JSON_CODEC
    await connection.send(request("hello", 0, codecs=[codec.name, JSON_CODEC.name]))
    answer = await connection.recv()
    if (
        isinstance(answer, dict)
        and answer.get("status") == "hello"
        and answer.get("codec") in CODECS
    ):
        connection.codec = CODECS[answer["codec"]]
    return connection.codec
