"""The cluster's length-prefixed JSON wire protocol.

Every message — client request, site reply, or site-to-site probe — is
one *frame*: a 4-byte big-endian payload length followed by a compact,
key-sorted JSON object.  Both transports (:mod:`repro.cluster.
transport`) carry encoded frames, so the deterministic in-memory tests
exercise exactly the bytes a TCP deployment puts on the wire.

Requests carry an ``id`` the reply echoes (the coordinator routes
replies by it); site-to-site messages (``probe``, ``resolve``) are
fire-and-forget and carry none.  The full message table is documented
in ``docs/cluster.md``.

Two **optional** observability fields may ride on any message, added
and consumed by :mod:`repro.obs.distributed`:

* ``trace`` — ``{"id": trace_id, "span": span_id, "pid": pid}``, the
  sender's open span, so the receiver can parent its own span across
  the process boundary;
* ``wire`` — ``{"send_ns": ...}`` stamped by the sending transport
  (the receiver adds ``recv_ns``), feeding the per-stage latency
  histograms.

Decoding tolerates both fields' absence — frames from nodes that
predate them (or run with observability off) are served identically,
and unknown keys were always passed through untouched.
"""

from __future__ import annotations

import json

from ..errors import ReproError

#: Frames above this size are refused (a corrupt length prefix
#: otherwise asks the reader to allocate gigabytes).
MAX_FRAME = 16 * 1024 * 1024

#: Client-to-site request kinds (each gets a reply with the same id).
REQUEST_KINDS = (
    "lock",
    "unlock",
    "update",
    "release",
    "commit",
    "history",
    "ping",
    "shutdown",
    # Replication kinds (:mod:`repro.replica`): leader discovery,
    # lease-epoch votes, log shipping, and new-leader catch-up.
    "leader",
    "vote",
    "replicate",
    "fetch_log",
)

#: Site-to-site kinds (fire-and-forget, no id, no reply).
PEER_KINDS = ("probe", "resolve")


class ProtocolError(ReproError):
    """A malformed or oversized frame, or an ill-typed message."""


def encode(message: dict) -> bytes:
    """One wire frame: 4-byte big-endian length + compact JSON."""
    payload = json.dumps(message, separators=(",", ":"), sort_keys=True).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds MAX_FRAME ({MAX_FRAME})")
    return len(payload).to_bytes(4, "big") + payload


def decode(frame: bytes) -> dict:
    """Parse one full frame (prefix included) back into a message."""
    if len(frame) < 4:
        raise ProtocolError(f"truncated frame: {len(frame)} bytes")
    length = int.from_bytes(frame[:4], "big")
    if length > MAX_FRAME:
        raise ProtocolError(f"frame length {length} exceeds MAX_FRAME")
    if len(frame) - 4 != length:
        raise ProtocolError(f"frame length prefix says {length}, payload is {len(frame) - 4}")
    return decode_payload(frame[4:])


def decode_payload(payload: bytes) -> dict:
    """Parse a frame payload (prefix already stripped)."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") from None
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("a message is a JSON object with a 'type' key")
    return message


async def read_message(reader) -> dict | None:
    """Read one message from an :class:`asyncio.StreamReader`
    (``None`` at EOF)."""
    message, _ = await read_frame(reader)
    return message


async def read_frame(reader) -> tuple[dict | None, int]:
    """Read one message from an :class:`asyncio.StreamReader`, also
    reporting the frame's size in bytes (prefix included).  ``(None,
    0)`` at EOF."""
    import asyncio

    try:
        prefix = await reader.readexactly(4)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None, 0
    length = int.from_bytes(prefix, "big")
    if length > MAX_FRAME:
        raise ProtocolError(f"frame length {length} exceeds MAX_FRAME")
    try:
        payload = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None, 0
    return decode_payload(payload), 4 + length


def request(kind: str, request_id: int, **fields) -> dict:
    """A client request frame body (``id`` echoed by the reply)."""
    if kind not in REQUEST_KINDS:
        raise ProtocolError(f"unknown request kind {kind!r} (choose from {REQUEST_KINDS})")
    message = {"type": kind, "id": request_id}
    message.update(fields)
    return message


def reply(request_id: int, status: str, **fields) -> dict:
    """A site reply to the request with *request_id*."""
    message = {"type": "reply", "id": request_id, "status": status}
    message.update(fields)
    return message
