"""Boot a cluster, run a workload through it, audit the result.

:func:`run_cluster` is the one-call harness the CLI and the benchmark
use: it starts one :class:`~repro.cluster.siteserver.SiteServer` per
site on the chosen transport, vets the workload through the
:class:`~repro.cluster.gateway.Gateway`, executes *rounds* copies of
every transaction with a bounded number of concurrent
:class:`~repro.cluster.coordinator.Coordinator` clients, then pulls
each site's committed per-entity update orders and checks the whole
distributed history for conflict-serializability with
:func:`repro.sim.analysis.serializable_from_site_orders`.

Under the memory transport the entire run — message order, deadlock
victims, backoff jitter, final histories — is a pure function of the
workload and *seed*; the :class:`ClusterReport` carries a history
fingerprint so the benchmark can assert exactly that.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from ..core.schedule import TransactionSystem
from ..core.transaction import Transaction
from ..errors import ReproError
from ..faults.plan import FaultPlan
from ..obs import distributed, trace
from ..obs.events import EventLog
from ..obs.insight import (
    ContentionTally,
    FlightRecorder,
    dump_postmortem,
    postmortem_reason,
)
from ..obs.metrics import REGISTRY
from ..sim.analysis import (
    serial_witness_from_site_orders,
    serializable_from_site_orders,
)
from . import protocol
from .coordinator import Coordinator, SiteClientPool, TxnOutcome
from .gateway import Gateway, GatewayDecision
from .netfaults import NetworkFaultAdapter
from .siteserver import SiteServer
from .transport import (
    LatencyMatrix,
    LatencyTransport,
    MemoryTransport,
    TcpTransport,
    Transport,
    TransportError,
)


class ClusterError(ReproError):
    """The cluster runtime was configured or driven incorrectly."""


@dataclass
class ClusterReport:
    """Everything one cluster run produced."""

    transport: str
    sites: int
    mode: str
    transactions: int
    outcomes: list[TxnOutcome] = field(default_factory=list)
    site_orders: dict[str, list[str]] = field(default_factory=dict)
    serializable: bool = True
    serial_witness: list[str] | None = None
    messages: int = 0
    dropped: int = 0
    wall_seconds: float = 0.0
    gateway: GatewayDecision | None = None
    #: Sites whose history could not be collected — the audit below
    #: ran without their site orders and is incomplete.
    unreachable_sites: list[int] = field(default_factory=list)
    #: Merged per-entity contention rows from every site's
    #: :class:`~repro.obs.insight.ContentionTally` (hottest first).
    #: Carries wall-clock wait percentiles, so — like
    #: :attr:`wall_seconds` — it is excluded from both fingerprints.
    contention: list[dict] = field(default_factory=list)
    #: Path of the post-mortem bundle written for this run, if any.
    postmortem: str | None = None

    @property
    def committed(self) -> int:
        return sum(1 for o in self.outcomes if o.committed)

    @property
    def partial_commits(self) -> int:
        """Transactions whose commit went un-acked at some site; their
        updates may be missing from the audited site orders."""
        return sum(1 for o in self.outcomes if o.outcome == "partial-commit")

    @property
    def audit_complete(self) -> bool:
        """Did the serializability audit see the whole history?"""
        return not self.unreachable_sites and self.partial_commits == 0

    @property
    def retry_exhausted(self) -> int:
        return sum(1 for o in self.outcomes if o.outcome == "retry-exhausted")

    @property
    def retries_total(self) -> int:
        return sum(o.retries for o in self.outcomes)

    @property
    def history_fingerprint(self) -> str:
        """SHA-256 of the committed site orders (determinism checks)."""
        blob = json.dumps(self.site_orders, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    @property
    def outcome_fingerprint(self) -> str:
        """SHA-256 of the per-transaction outcomes *including retry
        counts* — the stronger determinism check: equal fingerprints
        mean the seeded backoff jitter and every abort/retry schedule
        replayed identically, not just the final committed orders."""
        blob = json.dumps(
            [o.to_dict() for o in self.outcomes], sort_keys=True
        ).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def to_dict(self) -> dict:
        payload = {
            "transport": self.transport,
            "sites": self.sites,
            "mode": self.mode,
            "transactions": self.transactions,
            "committed": self.committed,
            "partial_commits": self.partial_commits,
            "retry_exhausted": self.retry_exhausted,
            "retries_total": self.retries_total,
            "serializable": self.serializable,
            "audit_complete": self.audit_complete,
            "unreachable_sites": self.unreachable_sites,
            "serial_witness": self.serial_witness,
            "messages": self.messages,
            "dropped": self.dropped,
            "history_fingerprint": self.history_fingerprint,
            "outcome_fingerprint": self.outcome_fingerprint,
            "wall_seconds": round(self.wall_seconds, 6),
            "outcomes": [o.to_dict() for o in self.outcomes],
        }
        if self.contention:
            payload["contention"] = self.contention
        if self.postmortem is not None:
            payload["postmortem"] = self.postmortem
        if self.gateway is not None:
            payload["gateway"] = {
                "mode": self.gateway.mode,
                "admitted": self.gateway.admitted,
                "rejected": self.gateway.rejected,
            }
        return payload

    def render(self) -> str:
        lines = [
            f"cluster run: {self.transactions} transactions over "
            f"{self.sites} sites ({self.transport} transport, {self.mode})",
            f"  committed        {self.committed}",
            f"  retry-exhausted  {self.retry_exhausted}",
            f"  retries          {self.retries_total}",
            f"  messages         {self.messages}"
            + (f" ({self.dropped} dropped)" if self.dropped else ""),
            f"  serializable     {'yes' if self.serializable else 'NO'}"
            + ("" if self.audit_complete else " (audit INCOMPLETE)"),
        ]
        if self.partial_commits:
            lines.append(f"  partial-commit   {self.partial_commits}")
        if self.unreachable_sites:
            lines.append(
                "  unreachable      sites "
                + ", ".join(str(s) for s in self.unreachable_sites)
            )
        if self.serial_witness:
            preview = ", ".join(self.serial_witness[:6])
            if len(self.serial_witness) > 6:
                preview += ", ..."
            lines.append(f"  witness          {preview}")
        hot = [row for row in self.contention if row.get("waits")]
        if hot:
            ranked = ", ".join(f"{row['entity']}({row['waits']} waits)" for row in hot[:3])
            lines.append(f"  hot locks        {ranked}")
        if self.postmortem is not None:
            lines.append(f"  post-mortem      {self.postmortem}")
        lines.append(f"  wall time        {self.wall_seconds:.3f}s")
        return "\n".join(lines)


def _clone(tx: Transaction, name: str) -> Transaction:
    """The same program under a new instance name."""
    return Transaction(
        name,
        tx.database,
        list(tx.steps),
        tx.poset().arcs(),
        validate_locking=False,
    )


def _build_workload(system: TransactionSystem, rounds: int) -> list[Transaction]:
    """*rounds* instances of every transaction; round 1 keeps the
    original names so single-round runs read like the paper."""
    workload: list[Transaction] = []
    for round_no in range(1, rounds + 1):
        for tx in system.transactions:
            if round_no == 1:
                workload.append(tx)
            else:
                workload.append(_clone(tx, f"{tx.name}@r{round_no}"))
    return workload


#: Last-resort bound (seconds) on one history fetch, so a wedged site
#: can never hang :func:`run_cluster` at collection time.
HISTORY_TIMEOUT = 30.0


async def _fetch_history(
    transport: Transport, site: int, timeout: float
) -> dict[str, list[str]] | None:
    """One-shot ``history`` request: the committed per-entity update
    orders of *site*, or ``None`` when the site is unreachable or does
    not answer within *timeout* seconds."""

    async def fetch() -> dict[str, list[str]]:
        connection = await transport.connect(site)
        try:
            await connection.send(protocol.request("history", 1))
            reply = await connection.recv()
        finally:
            await connection.close()
        if reply is None:
            return {}
        return reply.get("site_orders", {})

    try:
        return await asyncio.wait_for(fetch(), timeout)
    except (asyncio.TimeoutError, TransportError):
        return None


async def run_cluster(
    system: TransactionSystem,
    *,
    transport: str | Transport = "memory",
    rounds: int = 1,
    concurrency: int = 8,
    deadlock_policy: str = "abort-youngest",
    max_retries: int = 5,
    seed: int = 0,
    vet: bool = True,
    fault_plan: FaultPlan | None = None,
    event_log: EventLog | None = None,
    grant_timeout: int | None = None,
    request_timeout: float | None = None,
    gateway: Gateway | None = None,
    wire_metrics: bool = False,
    codec: str = "json",
    batch: bool = False,
    arrivals: Sequence[int] | None = None,
    latency: LatencyMatrix | None = None,
    recorder: FlightRecorder | bool = True,
    postmortem_dir: str | None = None,
) -> ClusterReport:
    """Execute *rounds* copies of *system* on a live cluster.

    *transport* is ``"memory"``, ``"tcp"`` or a ready
    :class:`~repro.cluster.transport.Transport`; *concurrency* bounds
    simultaneously running coordinators; *grant_timeout* (transport
    ticks) arms per-site lock-grant timers; *request_timeout*
    (seconds) bounds each request round trip — required when message
    drops are injected, since a dropped request gets no reply.
    *wire_metrics* turns on the per-stage wire-latency histograms and
    byte counters (:data:`repro.obs.distributed.WIRE`) for this run.
    *codec* (``"json"`` or ``"binary"``) is offered to every site at
    connection time; *batch* ships each coordinator's eligible steps
    per site in single pipelined frames.  Either choice changes the
    wire format, not the outcome: runs stay deterministic on the
    memory transport *per configuration*.

    *arrivals* switches submission from closed-loop to **open-loop**:
    instead of *concurrency* clients each starting the next transaction
    when the previous finishes, coordinator *i* starts at absolute tick
    ``arrivals[i]`` on the transport clock regardless of how the
    cluster is keeping up (one entry per workload instance, ``rounds``
    × system size).  *latency* wraps the transport in a
    :class:`~repro.cluster.transport.LatencyTransport`, charging every
    frame the configured cross-region delay.  Both come from traffic
    specs (:mod:`repro.workloads.traffic`) but are plain runtime knobs.

    Every run starts by resetting the ``repro_cluster_*`` metrics, so
    back-to-back runs in one process (benchmarks, tests) never
    accumulate each other's counts.

    *recorder* controls the always-on flight recorder
    (:class:`~repro.obs.insight.FlightRecorder`): ``True`` (default)
    creates a fresh bounded ring for the run, ``False`` disables it,
    and an instance is used as-is so the caller can inspect the ring
    afterwards.  When the run ends badly (non-serializable,
    partial-commit, or an incomplete audit) and *postmortem_dir* — or
    the ``REPRO_POSTMORTEM`` environment variable — names a directory,
    a post-mortem bundle (ring, report, recent events, trace files) is
    written there and :attr:`ClusterReport.postmortem` records the
    path; with neither set, nothing is written.
    """
    if rounds < 1:
        raise ClusterError(f"need at least one round, got {rounds}")
    if concurrency < 1:
        raise ClusterError(f"need concurrency >= 1, got {concurrency}")
    if fault_plan is not None:
        fault_plan.validate_against(system)
        if request_timeout is None and any(
            crash.recover_at is None for crash in fault_plan.site_crashes
        ):
            raise ClusterError(
                "fault plan crashes a site permanently (recover_at omitted); "
                "set request_timeout so requests to the dead site can fail "
                "instead of hanging the run"
            )

    REGISTRY.reset(prefix="repro_cluster_")
    if wire_metrics:
        distributed.WIRE.enable_metrics()
    if event_log is not None:
        distributed.WIRE.attach(event_log)
    if isinstance(recorder, FlightRecorder):
        # Not a truthiness check: an empty ring is falsy but attached.
        ring: FlightRecorder | None = recorder
    elif recorder:
        ring = FlightRecorder()
    else:
        ring = None
    if ring is not None:
        distributed.WIRE.attach_recorder(ring)
        if event_log is not None:
            event_log.ring = ring

    started = time.perf_counter()
    if isinstance(transport, Transport):
        live_transport = transport
        transport_name = type(transport).__name__
        own_transport = False
    elif transport == "memory":
        live_transport = MemoryTransport()
        transport_name = "memory"
        own_transport = True
    elif transport == "tcp":
        live_transport = TcpTransport()
        transport_name = "tcp"
        own_transport = True
    else:
        raise ClusterError(f"unknown transport {transport!r} (memory, tcp, or a Transport)")
    if latency is not None:
        live_transport = LatencyTransport(live_transport, latency)
        transport_name = f"{transport_name}+latency"

    with trace.span("cluster.run") as sp:
        if sp:
            sp.set(
                transport=transport_name,
                sites=system.database.sites,
                rounds=rounds,
            )
        decision: GatewayDecision | None = None
        own_gateway = False
        if vet:
            if gateway is None:
                gateway = Gateway()
                own_gateway = True
            decision = gateway.vet(system)
            mode = decision.mode
        else:
            mode = "unvetted"

        faults = NetworkFaultAdapter(fault_plan, event_log=event_log)
        sites = tuple(range(1, system.database.sites + 1))
        servers = [
            SiteServer(
                site,
                transport=live_transport,
                peers=sites,
                deadlock_policy=deadlock_policy,
                grant_timeout=grant_timeout,
                faults=faults if fault_plan is not None else None,
                event_log=event_log,
                seed=seed,
            )
            for site in sites
        ]
        wire_codec = protocol.codec_named(codec)
        pool = SiteClientPool(
            live_transport, codec=wire_codec, request_timeout=request_timeout
        )
        try:
            for server in servers:
                await server.start()

            workload = _build_workload(system, rounds)
            if arrivals is not None and len(arrivals) != len(workload):
                raise ClusterError(
                    f"arrivals must cover the whole workload: got "
                    f"{len(arrivals)} start ticks for {len(workload)} "
                    f"transaction instances"
                )
            gate = asyncio.Semaphore(concurrency)

            async def start_one(index: int, tx: Transaction) -> TxnOutcome:
                coordinator = Coordinator(
                    tx,
                    transport=live_transport,
                    age=index,
                    max_retries=max_retries,
                    request_timeout=request_timeout,
                    seed=seed,
                    codec=wire_codec,
                    batch=batch,
                    pool=pool,
                )
                return await coordinator.run()

            async def run_one(index: int, tx: Transaction) -> TxnOutcome:
                if arrivals is not None:
                    # Open loop: wait for this instance's arrival tick,
                    # then submit unconditionally — offered load does
                    # not slow down when the cluster saturates.
                    if arrivals[index] > 0:
                        await live_transport.sleep(arrivals[index])
                    return await start_one(index, tx)
                async with gate:
                    return await start_one(index, tx)

            outcomes = list(
                await asyncio.gather(*(run_one(i, tx) for i, tx in enumerate(workload)))
            )

            history_timeout = (
                request_timeout if request_timeout is not None else HISTORY_TIMEOUT
            )
            site_orders: dict[str, list[str]] = {}
            unreachable: list[int] = []
            for server in servers:
                if not server.running:
                    continue
                fetched = await _fetch_history(
                    live_transport, server.site, timeout=history_timeout
                )
                if fetched is None:
                    unreachable.append(server.site)
                    continue
                for entity, order in fetched.items():
                    site_orders[entity] = order

            messages = sum(server.processed for server in servers)
        finally:
            await pool.close()
            for server in servers:
                await server.stop()
            if own_transport:
                await live_transport.close()
            if own_gateway and gateway is not None:
                gateway.close()
            if wire_metrics:
                distributed.WIRE.disable_metrics()
            if ring is not None:
                distributed.WIRE.detach_recorder()
                if event_log is not None:
                    event_log.ring = None
            if event_log is not None:
                distributed.WIRE.detach()

        serializable = serializable_from_site_orders(site_orders)
        witness = serial_witness_from_site_orders(site_orders) if serializable else None
        report = ClusterReport(
            transport=transport_name,
            sites=system.database.sites,
            mode=mode,
            transactions=len(workload),
            outcomes=outcomes,
            site_orders=site_orders,
            serializable=serializable,
            serial_witness=witness,
            messages=messages,
            dropped=faults.dropped,
            wall_seconds=time.perf_counter() - started,
            gateway=decision,
            unreachable_sites=unreachable,
        )
        tally = ContentionTally()
        for server in servers:
            tally.merge(server.insight)
        report.contention = tally.rows(limit=16)
        destination = postmortem_dir or os.environ.get("REPRO_POSTMORTEM")
        reason = postmortem_reason(report)
        if destination and reason is not None:
            active_trace = trace.trace_path()
            report.postmortem = dump_postmortem(
                destination,
                report=report,
                recorder=ring,
                event_log=event_log,
                trace_paths=(active_trace,) if active_trace else (),
                reason=reason,
            )
        if sp:
            sp.set(
                committed=report.committed,
                serializable=report.serializable,
            )
        return report


def uvloop_available() -> bool:
    """Is the optional ``uvloop`` event loop importable here?"""
    try:
        import uvloop  # noqa: F401
    except ImportError:
        return False
    return True


def run_cluster_sync(
    system: TransactionSystem, *, use_uvloop: bool = False, **kwargs
) -> ClusterReport:
    """:func:`run_cluster` from synchronous code (CLI, benchmarks).

    *use_uvloop* runs the cluster on `uvloop <https://github.com/
    MagicStack/uvloop>`_ when that package is installed; absent, the
    flag is ignored and the stdlib loop is used (nothing in the
    runtime depends on it).
    """
    if use_uvloop and uvloop_available():
        import uvloop

        runner = getattr(uvloop, "run", None)
        if runner is not None:
            return runner(run_cluster(system, **kwargs))
        uvloop.install()
    return asyncio.run(run_cluster(system, **kwargs))
