"""The cluster's admission gateway.

Before a workload touches the live cluster, the gateway pushes it
through the same static safety vetting ``repro serve`` runs
(:class:`~repro.service.registry.AdmissionRegistry`: fingerprint cache
+ incremental Proposition-2 / Theorem-1 pair vetting).  The outcome
decides the runtime *mode*:

* every transaction admitted → ``"vetted-safe"``: the paper guarantees
  every interleaving serializes, so runtime deadlock handling is a
  no-op safety net;
* any rejection → ``"runtime-guarded"``: the system runs anyway, but
  correctness now rests on the cluster's probe-based deadlock
  resolution, abort/retry and the final serializability audit of the
  committed site orders.

Round clones of the same transactions share fingerprints, so the
gateway vets the *base* system once — admission is per program shape,
not per instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.safety import SafetyVerdict
from ..core.schedule import TransactionSystem
from ..errors import VettingBudgetError
from ..service.cache import VerdictCache
from ..service.pool import PairVettingPool
from ..service.registry import AdmissionDecision, AdmissionRegistry


@dataclass
class GatewayDecision:
    """The gateway's verdict on one workload."""

    mode: str  # "vetted-safe" | "runtime-guarded" | "unvetted"
    admitted: list[str] = field(default_factory=list)
    rejected: list[str] = field(default_factory=list)
    decisions: list[AdmissionDecision] = field(default_factory=list)

    @property
    def safe(self) -> bool:
        return self.mode == "vetted-safe"

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "decisions": [d.to_dict() for d in self.decisions],
        }


class Gateway:
    """Static admission in front of the cluster runtime."""

    def __init__(
        self,
        *,
        cache_size: int = 65536,
        workers: int = 1,
        cycle_limit: int | None = None,
    ) -> None:
        self.registry = AdmissionRegistry(
            cache=VerdictCache(cache_size),
            pool=PairVettingPool(workers=workers),
            cycle_limit=cycle_limit,
        )

    def vet(self, system: TransactionSystem) -> GatewayDecision:
        """Vet *system*'s transactions; the mode is ``"vetted-safe"``
        only when every one is admitted.

        With a ``cycle_limit``, an admission whose cycle vetting
        exhausts the budget is treated as a *rejection* ("could not be
        certified statically"), not an error: the transaction still
        runs, in ``runtime-guarded`` mode, where deadlock resolution
        and the final serializability audit carry the guarantee.
        """
        decisions: list[AdmissionDecision] = []
        for transaction in system.transactions:
            try:
                decisions.append(
                    self.registry.admit(transaction, want_certificate=False)
                )
            except VettingBudgetError as exc:
                decisions.append(
                    AdmissionDecision(
                        admitted=False,
                        name=transaction.name,
                        verdict=SafetyVerdict(
                            safe=False,
                            method="budget-exceeded",
                            detail=str(exc),
                        ),
                    )
                )
        admitted = [d.name for d in decisions if d.admitted]
        rejected = [d.name for d in decisions if not d.admitted]
        mode = "vetted-safe" if not rejected else "runtime-guarded"
        return GatewayDecision(
            mode=mode,
            admitted=admitted,
            rejected=rejected,
            decisions=decisions,
        )

    def stats_dict(self) -> dict:
        return self.registry.stats_dict()

    def close(self) -> None:
        self.registry.pool.close()
