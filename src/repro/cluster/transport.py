"""Pluggable cluster transports: deterministic memory and real TCP.

Both transports move *encoded protocol frames* (:func:`repro.cluster.
protocol.encode`), so the wire format is exercised even when no socket
exists.  The memory transport pairs asyncio queues inside one event
loop — message order is a pure function of task scheduling, which is
deterministic for a fixed workload and seed, so cluster tests and the
benchmark's determinism check run on it.  The TCP transport is plain
``asyncio`` streams over localhost or a real network; ``port 0``
listeners get ephemeral ports that are published back into the address
map so an in-process cluster can wire itself up.

``Transport.sleep(ticks)`` is the one time source the runtime uses for
backoff and fault windows: memory ticks are bare event-loop yields
(``asyncio.sleep(0)``), TCP ticks are milliseconds.  Nothing else in
the deterministic path consults a wall clock.

Both transports feed the process-global wire observer
(:data:`repro.obs.distributed.WIRE`) while it is active: outbound
frames are stamped (``wire.send_ns``) and counted, inbound frames
complete the stamp and record the transport-stage latency.  With the
observer inactive the hooks are one falsy check per frame.
"""

from __future__ import annotations

import asyncio
import time

from ..errors import ReproError
from ..obs import distributed
from . import protocol


class TransportError(ReproError):
    """A connection to a site could not be made or has gone away."""


def _encode_observed(message: dict, peer: int | None, codec: protocol.WireCodec) -> bytes:
    """Encode one frame with *codec*, stamping and measuring it when
    the wire observer is active."""
    wire = distributed.WIRE
    if not wire.active:
        return protocol.encode(message, codec)
    message = wire.stamp(message)
    before = time.perf_counter_ns()
    frame = protocol.encode(message, codec)
    wire.sent(message, len(frame), time.perf_counter_ns() - before, peer)
    return frame


class Connection:
    """One bidirectional frame pipe between a client and a site.

    ``peer`` labels the far (or serving) site for wire metrics;
    ``None`` when unknown.  ``codec`` is the payload encoding *this
    end sends with* (receiving auto-detects per frame); it starts as
    JSON and is repointed by ``hello`` negotiation
    (:func:`repro.cluster.protocol.negotiate` client-side, the site's
    ``_on_hello`` server-side).
    """

    peer: int | None = None
    codec: protocol.WireCodec = protocol.JSON_CODEC

    async def send(self, message: dict) -> None:
        raise NotImplementedError

    async def recv(self) -> dict | None:
        """Next message, or ``None`` once the peer closed."""
        raise NotImplementedError

    async def close(self) -> None:
        raise NotImplementedError


class Transport:
    """Factory for listeners and connections, plus the tick clock."""

    #: Whether message order is reproducible for a fixed seed.
    deterministic = False

    async def listen(self, site: int, handler) -> None:
        """Start serving *site*; *handler* is ``async f(connection)``
        invoked once per inbound connection."""
        raise NotImplementedError

    async def connect(self, site: int) -> Connection:
        raise NotImplementedError

    async def sleep(self, ticks: int) -> None:
        raise NotImplementedError

    async def close(self) -> None:
        raise NotImplementedError


# ----------------------------------------------------------------------
# In-memory transport
# ----------------------------------------------------------------------
class _MemoryConnection(Connection):
    def __init__(
        self,
        outbox: asyncio.Queue,
        inbox: asyncio.Queue,
        peer: int | None = None,
    ) -> None:
        self._outbox = outbox
        self._inbox = inbox
        self._closed = False
        self.peer = peer
        self.codec = protocol.JSON_CODEC

    async def send(self, message: dict) -> None:
        if self._closed:
            raise TransportError("send on a closed memory connection")
        await self._outbox.put(_encode_observed(message, self.peer, self.codec))

    async def recv(self) -> dict | None:
        frame = await self._inbox.get()
        if frame is None:
            return None
        message = protocol.decode(frame)
        if distributed.WIRE.active:
            distributed.WIRE.received(message, len(frame), self.peer)
        return message

    async def close(self) -> None:
        if not self._closed:
            self._closed = True
            await self._outbox.put(None)


class MemoryTransport(Transport):
    """Queue-paired connections inside one event loop (deterministic)."""

    deterministic = True

    def __init__(self) -> None:
        self._handlers: dict[int, object] = {}
        self._server_tasks: list[asyncio.Task] = []

    async def listen(self, site: int, handler) -> None:
        if site in self._handlers:
            raise TransportError(f"site {site} is already listening")
        self._handlers[site] = handler

    async def connect(self, site: int) -> Connection:
        handler = self._handlers.get(site)
        if handler is None:
            raise TransportError(f"no site {site} is listening")
        to_server: asyncio.Queue = asyncio.Queue()
        to_client: asyncio.Queue = asyncio.Queue()
        client = _MemoryConnection(to_server, to_client, peer=site)
        server = _MemoryConnection(to_client, to_server, peer=site)
        task = asyncio.ensure_future(handler(server))
        self._server_tasks.append(task)
        return client

    async def sleep(self, ticks: int) -> None:
        for _ in range(max(1, ticks)):
            await asyncio.sleep(0)

    async def close(self) -> None:
        for task in self._server_tasks:
            task.cancel()
        for task in self._server_tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._server_tasks.clear()
        self._handlers.clear()


# ----------------------------------------------------------------------
# Multi-region latency injection
# ----------------------------------------------------------------------
class LatencyMatrix:
    """A region map plus per-ordered-pair frame delays.

    *regions* maps ``site -> region name``; *delay_ticks* maps
    ``origin region -> destination region -> ticks`` added to every
    frame crossing that pair; coordinators, the client pool and the
    history fetch are homed in *client_region*.  Delays are transport
    ticks (event-loop yields on the memory transport, milliseconds on
    TCP), so a latency-shaped run on the memory transport stays fully
    deterministic.  Traffic specs build these via
    :meth:`repro.workloads.traffic.LatencyModel.matrix`.
    """

    def __init__(
        self,
        regions: dict[int, str],
        delay_ticks: dict[str, dict[str, int]],
        client_region: str = "local",
    ) -> None:
        self.regions = dict(regions)
        self.delay_ticks = {
            origin: dict(row) for origin, row in delay_ticks.items()
        }
        self.client_region = client_region

    def region_of_site(self, site: int) -> str:
        """The region serving *site* (defaults to the client region)."""
        return self.regions.get(site, self.client_region)

    def delay(self, origin: str, destination: str) -> int:
        """Ticks a frame pays travelling *origin* → *destination*."""
        return self.delay_ticks.get(origin, {}).get(destination, 0)


class _DelayedConnection(Connection):
    """A connection whose sends pay a fixed cross-region delay.

    Wraps the inner connection rather than subclassing a concrete one,
    so it works over memory and TCP alike; ``codec`` must forward with
    a setter because ``hello`` negotiation repoints it on the object it
    is handed.
    """

    def __init__(self, inner: Connection, sleep, ticks: int) -> None:
        self._inner = inner
        self._sleep = sleep
        self._ticks = ticks

    @property
    def peer(self) -> int | None:
        return self._inner.peer

    @peer.setter
    def peer(self, value: int | None) -> None:
        self._inner.peer = value

    @property
    def codec(self) -> protocol.WireCodec:
        return self._inner.codec

    @codec.setter
    def codec(self, value: protocol.WireCodec) -> None:
        self._inner.codec = value

    async def send(self, message: dict) -> None:
        if self._ticks:
            await self._sleep(self._ticks)
        await self._inner.send(message)

    async def recv(self) -> dict | None:
        return await self._inner.recv()

    async def close(self) -> None:
        await self._inner.close()


class LatencyTransport(Transport):
    """Injects a :class:`LatencyMatrix` into any transport.

    Client connections (``connect``) delay each outbound frame by the
    client-region → site-region entry; server connections (handed to
    ``listen`` handlers) delay replies by the reverse entry — so one
    request/response round trip pays both directions, and intra-region
    traffic pays nothing.  Determinism is inherited from the inner
    transport: delays are plain tick sleeps on its clock.
    """

    def __init__(self, inner: Transport, matrix: LatencyMatrix) -> None:
        self._inner = inner
        self.matrix = matrix

    @property
    def deterministic(self) -> bool:
        return self._inner.deterministic

    async def listen(self, site: int, handler) -> None:
        ticks = self.matrix.delay(
            self.matrix.region_of_site(site), self.matrix.client_region
        )

        async def delayed_handler(connection: Connection) -> None:
            await handler(
                _DelayedConnection(connection, self._inner.sleep, ticks)
            )

        await self._inner.listen(site, delayed_handler)

    async def connect(self, site: int) -> Connection:
        ticks = self.matrix.delay(
            self.matrix.client_region, self.matrix.region_of_site(site)
        )
        inner = await self._inner.connect(site)
        return _DelayedConnection(inner, self._inner.sleep, ticks)

    async def sleep(self, ticks: int) -> None:
        await self._inner.sleep(ticks)

    async def close(self) -> None:
        await self._inner.close()


# ----------------------------------------------------------------------
# TCP transport
# ----------------------------------------------------------------------
class _TcpConnection(Connection):
    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        peer: int | None = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.peer = peer
        self.codec = protocol.JSON_CODEC
        # One persistent connection may be shared by several
        # coordinators; the lock keeps concurrent write+drain pairs
        # from interleaving frame bytes.
        self._send_lock = asyncio.Lock()

    async def send(self, message: dict) -> None:
        frame = _encode_observed(message, self.peer, self.codec)
        try:
            async with self._send_lock:
                self._writer.write(frame)
                await self._writer.drain()
        except ConnectionError as exc:
            raise TransportError(f"peer went away: {exc}") from None

    async def recv(self) -> dict | None:
        message, nbytes = await protocol.read_frame(self._reader)
        if message is not None and distributed.WIRE.active:
            distributed.WIRE.received(message, nbytes, self.peer)
        return message

    async def close(self) -> None:
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class TcpTransport(Transport):
    """Real sockets via asyncio streams.

    *addresses* maps ``site -> (host, port)``.  Sites absent from the
    map are assigned ``127.0.0.1`` with an ephemeral port at
    :meth:`listen` time, and the chosen port is published back into
    ``self.addresses`` — the in-process benchmark cluster relies on
    this.  One tick of :meth:`sleep` is ``tick_seconds`` (default 1ms).
    """

    deterministic = False

    def __init__(
        self,
        addresses: dict[int, tuple[str, int]] | None = None,
        *,
        tick_seconds: float = 0.001,
    ) -> None:
        self.addresses: dict[int, tuple[str, int]] = dict(addresses or {})
        self.tick_seconds = tick_seconds
        self._servers: list[asyncio.base_events.Server] = []

    async def listen(self, site: int, handler) -> None:
        host, port = self.addresses.get(site, ("127.0.0.1", 0))

        async def on_connect(reader, writer):
            await handler(_TcpConnection(reader, writer, peer=site))

        server = await asyncio.start_server(on_connect, host, port)
        bound = server.sockets[0].getsockname()
        self.addresses[site] = (bound[0], bound[1])
        self._servers.append(server)

    async def connect(self, site: int) -> Connection:
        address = self.addresses.get(site)
        if address is None:
            raise TransportError(f"no address for site {site} (known: {sorted(self.addresses)})")
        try:
            reader, writer = await asyncio.open_connection(*address)
        except (ConnectionError, OSError) as exc:
            raise TransportError(f"cannot reach site {site} at {address}: {exc}") from None
        return _TcpConnection(reader, writer, peer=site)

    async def sleep(self, ticks: int) -> None:
        await asyncio.sleep(max(1, ticks) * self.tick_seconds)

    async def close(self) -> None:
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
