"""Fault plans reinterpreted as *network* faults.

The simulator's :class:`~repro.faults.plan.FaultPlan` speaks in engine
steps; the cluster has no global step counter, so this adapter replays
the same plan on a cluster-wide **logical message clock**: every
protocol message a site processes (and every tick a stalled site
waits) advances it by one.  The reinterpretation:

* :class:`~repro.faults.plan.SiteCrash` — the site server stops
  consuming messages while ``at <= clock < recover_at`` (both crash
  semantics look like a dead server from outside; the lease-style
  ``"release"`` table-clearing remains simulator-only).
* :class:`~repro.faults.plan.GrantDelay` — a matching lock *grant
  reply* is withheld until the window closes: the lock is taken in the
  site's table, but the requester learns late — a pure message delay.
* :class:`~repro.faults.plan.MessageDrop` — a matching inbound message
  is discarded unprocessed (a ``drop`` event and counter record it);
  the sender's request timeout is its only recourse.

Waiting loops tick the clock too, so every finite fault window closes
even in an otherwise idle cluster, and under the memory transport the
whole schedule of misfortune is deterministic.
"""

from __future__ import annotations

from ..faults.plan import FaultPlan
from ..obs.events import EventLog
from ..obs.metrics import REGISTRY

_DROPS = None


def _drops_counter():
    global _DROPS
    if _DROPS is None:
        _DROPS = REGISTRY.counter(
            "repro_cluster_messages_dropped_total",
            "Protocol messages discarded by injected network faults.",
        )
    return _DROPS


class NetworkFaultAdapter:
    """Per-run fault state every site server of a cluster consults."""

    def __init__(
        self,
        plan: FaultPlan | None = None,
        *,
        event_log: EventLog | None = None,
    ) -> None:
        self.plan = plan or FaultPlan()
        self.event_log = event_log
        self.clock = 0
        self.dropped = 0
        self._down_announced: set[int] = set()

    # ------------------------------------------------------------------
    def tick(self) -> int:
        """Advance the logical message clock by one."""
        self.clock += 1
        return self.clock

    def site_down(self, site: int) -> bool:
        """Is *site* inside a crash window right now?"""
        for crash in self.plan.site_crashes:
            if crash.site != site or self.clock < crash.at:
                continue
            if crash.recover_at is None or self.clock < crash.recover_at:
                if site not in self._down_announced:
                    self._down_announced.add(site)
                    if self.event_log is not None:
                        self.event_log.emit(
                            "crash",
                            site=site,
                            detail=f"server stopped at message clock {self.clock}",
                        )
                return True
        if site in self._down_announced:
            self._down_announced.discard(site)
            if self.event_log is not None:
                self.event_log.emit(
                    "recover",
                    site=site,
                    detail=f"server resumed at message clock {self.clock}",
                )
        return False

    def grant_delayed(self, entity: str, site: int) -> bool:
        """Must the grant reply for *entity* at *site* be withheld?"""
        return any(delay.applies_to(entity, site, self.clock) for delay in self.plan.grant_delays)

    def drop(self, site: int, kind: str, *, transaction: str | None = None) -> bool:
        """Discard this inbound message?  Records the drop if so."""
        for entry in self.plan.message_drops:
            if entry.applies_to(site, kind, self.clock):
                self.dropped += 1
                _drops_counter().inc()
                if self.event_log is not None:
                    self.event_log.emit(
                        "drop",
                        site=site,
                        transaction=transaction,
                        detail=f"{kind} dropped at message clock {self.clock}",
                    )
                return True
        return False
