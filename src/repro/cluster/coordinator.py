"""The client side of a distributed transaction.

A :class:`Coordinator` executes one :class:`~repro.core.transaction.
Transaction` against a live cluster **as the partial order it is**: a
step is issued to its entity's site the moment every poset predecessor
has been *acknowledged*, steps at different sites run concurrently,
and steps at the same site flow down one connection in the site total
order the paper requires.  That invariant — never send a step before
all its predecessors are acked — is what the property test in
``tests/cluster/test_partial_order.py`` checks against random
workloads.

With ``batch=True`` the invariant relaxes to *pipelining*: all
currently-eligible steps bound for one site ship in a single ``batch``
frame, and a step co-batched **behind its predecessor in the same
frame** counts as ordered (the site processes batch steps strictly in
order), so a chain of same-site steps costs one round trip instead of
one per step.  Shorter round trips mean shorter lock hold windows,
which the E15 stage decomposition shows dominate cluster latency.

A reply of ``deadlock`` (a probe cycle chose this transaction as
victim), ``timeout`` (a site's lock-grant timer fired) or ``aborted``
(a racing release) makes the attempt fail: the coordinator sends
``release`` to every involved site, backs off exponentially with
seeded jitter on the transport's tick clock, and retries up to
*max_retries* times before reporting ``retry-exhausted``.  On success
it sends ``commit`` everywhere, which is what promotes the
transaction's tentative updates into the committed site orders.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field

from ..core.transaction import Transaction
from ..obs import distributed
from ..obs.metrics import REGISTRY
from . import protocol
from .transport import Connection, Transport, TransportError


# Resolved by name at use time — never cached in a module global, so a
# ``REGISTRY.reset()`` between runs cannot orphan a live handle.
def _outcomes_counter():
    return REGISTRY.counter(
        "repro_cluster_txn_outcomes_total",
        "Distributed transactions by final outcome.",
    )


@dataclass
class TxnOutcome:
    """How one distributed transaction ended."""

    name: str
    outcome: str  # "committed" | "partial-commit" | "retry-exhausted" | "error"
    retries: int = 0
    sites: list[int] = field(default_factory=list)
    detail: str = ""
    #: Sites whose ``commit`` was never acknowledged ("partial-commit"):
    #: their copy of the history may be missing this transaction, so
    #: the serializability audit must treat the run as incomplete.
    unacked_commit_sites: list[int] = field(default_factory=list)
    #: Wall-clock seconds from coordinator start to final outcome.
    #: Timing, not outcome: deliberately excluded from :meth:`to_dict`
    #: so the report's outcome fingerprint stays bit-deterministic.
    seconds: float = 0.0

    @property
    def committed(self) -> bool:
        """Fully committed — acknowledged at every involved site."""
        return self.outcome == "committed"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "outcome": self.outcome,
            "retries": self.retries,
            "sites": self.sites,
            **({"detail": self.detail} if self.detail else {}),
            **(
                {"unacked_commit_sites": self.unacked_commit_sites}
                if self.unacked_commit_sites
                else {}
            ),
        }


class _SiteClient:
    """One connection to a site: sequential requests, routed replies.

    Requests carry ids; a reader task resolves the matching future.
    Replies for ids nobody waits on any more (a timed-out request, a
    cancelled branch) are dropped — the site may legally answer late.
    """

    def __init__(self, connection: Connection, address: int | None = None) -> None:
        self.connection = connection
        #: Transport id this client dialled (a replica address when a
        #: resolver is in play; the site id otherwise).
        self.address = address
        self._waiters: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._reader = asyncio.ensure_future(self._read_loop())

    async def _read_loop(self) -> None:
        try:
            while True:
                message = await self.connection.recv()
                if message is None:
                    break
                future = self._waiters.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        except asyncio.CancelledError:
            raise
        except Exception:
            pass
        for future in self._waiters.values():
            if not future.done():
                future.set_exception(TransportError("site connection closed"))
        self._waiters.clear()

    async def request(self, kind: str, *, timeout: int | None = None, **fields) -> dict:
        self._next_id += 1
        request_id = self._next_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters[request_id] = future
        await self.connection.send(protocol.request(kind, request_id, **fields))
        if timeout is None:
            return await future
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            self._waiters.pop(request_id, None)
            return {"type": "reply", "id": request_id, "status": "timeout"}

    async def negotiate(self, codec: protocol.WireCodec, *, timeout: int | None = None) -> None:
        """Offer *codec* via a ``hello`` exchange; the connection
        switches to it only if the site picks it.  A peer that predates
        ``hello`` answers ``error`` and the connection stays on JSON —
        mixed versions always interoperate.  JSON needs no exchange."""
        if codec.name == protocol.JSON_CODEC.name:
            return
        try:
            reply = await self.request("hello", timeout=timeout, codecs=[codec.name, "json"])
        except TransportError:
            return
        if reply.get("status") == "hello" and reply.get("codec") in protocol.CODECS:
            self.connection.codec = protocol.CODECS[reply["codec"]]

    async def request_batch(
        self,
        steps: list[dict],
        *,
        timeout: int | None = None,
        **fields,
    ) -> list[tuple[int, asyncio.Future]]:
        """Ship several *steps* of one transaction in a single frame.

        Each step spec is ``{"op", "entity"[, "step"]}``; this client
        assigns the per-step ids.  Returns ``(step_id, future)`` pairs
        aligned with *steps* — each future resolves to the step's
        *final* reply.  Inline batch results resolve them immediately,
        except ``queued``, whose final status arrives in a later
        individual frame (granted / timeout / deadlock / cancelled)
        through the ordinary id routing.  A batch-level failure (e.g. a
        replica's ``not-leader`` redirect, or a reply timeout) resolves
        every still-pending step future with that failure.
        """
        loop = asyncio.get_running_loop()
        wire_steps: list[dict] = []
        pairs: list[tuple[int, asyncio.Future]] = []
        for spec in steps:
            self._next_id += 1
            step_id = self._next_id
            future: asyncio.Future = loop.create_future()
            self._waiters[step_id] = future
            wire_steps.append({"id": step_id, **spec})
            pairs.append((step_id, future))
        self._next_id += 1
        batch_id = self._next_id
        batch_future: asyncio.Future = loop.create_future()
        self._waiters[batch_id] = batch_future
        await self.connection.send(
            protocol.request("batch", batch_id, steps=wire_steps, **fields)
        )
        try:
            if timeout is None:
                reply = await batch_future
            else:
                reply = await asyncio.wait_for(batch_future, timeout)
        except asyncio.TimeoutError:
            self._waiters.pop(batch_id, None)
            reply = {"type": "reply", "id": batch_id, "status": "timeout"}
        except TransportError as exc:
            reply = {"type": "reply", "id": batch_id, "status": "error", "reason": str(exc)}
        if reply.get("status") == "batch":
            for result in reply.get("results", ()):
                step_id = result.get("id")
                if result.get("status") == "queued":
                    continue  # final status comes as an individual frame
                future = self._waiters.pop(step_id, None)
                if future is not None and not future.done():
                    future.set_result({"type": "reply", **result})
        else:
            # Batch-level failure: no step got an individual answer
            # (not-leader redirect, timeout, error) — fan the failure
            # out to every step that is still unresolved.
            failure = {key: value for key, value in reply.items() if key != "id"}
            for step_id, future in pairs:
                self._waiters.pop(step_id, None)
                if not future.done():
                    future.set_result(dict(failure))
        return pairs

    async def close(self) -> None:
        self._reader.cancel()
        try:
            await self._reader
        except (asyncio.CancelledError, Exception):
            pass
        await self.connection.close()


class SiteClientPool:
    """One persistent, codec-negotiated connection per site, shared by
    every coordinator of a run.

    Replaces the per-coordinator (per-transaction) dial pattern: the
    run opens each (pool, site) connection once, negotiates the codec
    once, and every transaction's requests multiplex over it — request
    ids are per-client, so replies route correctly, and the site keyes
    its lock bookkeeping by (txn, entity), not by connection.  The
    replicated path keeps per-coordinator clients (failover re-dials
    are per-transaction decisions) and does not use the pool.
    """

    def __init__(
        self,
        transport: Transport,
        *,
        codec: protocol.WireCodec = protocol.JSON_CODEC,
        request_timeout: float | None = None,
    ) -> None:
        self.transport = transport
        self.codec = codec
        self.request_timeout = request_timeout
        self._dials: dict[int, asyncio.Task] = {}

    async def client(self, site: int) -> _SiteClient:
        dial = self._dials.get(site)
        if dial is None:
            # The dict entry is installed before the first await so
            # concurrent coordinators share one dial, not race N.
            dial = asyncio.ensure_future(self._dial(site))
            self._dials[site] = dial
        try:
            return await asyncio.shield(dial)
        except (TransportError, asyncio.CancelledError):
            if self._dials.get(site) is dial:
                del self._dials[site]
            raise
        except Exception:
            if self._dials.get(site) is dial:
                del self._dials[site]
            raise

    async def _dial(self, site: int) -> _SiteClient:
        client = _SiteClient(await self.transport.connect(site), address=site)
        await client.negotiate(self.codec, timeout=self.request_timeout)
        return client

    async def close(self) -> None:
        dials, self._dials = dict(self._dials), {}
        for dial in dials.values():
            if dial.done() and not dial.cancelled() and dial.exception() is None:
                await dial.result().close()
            else:
                dial.cancel()


class Coordinator:
    """Executes one transaction's poset against the cluster."""

    def __init__(
        self,
        transaction: Transaction,
        *,
        transport: Transport,
        age: int = 0,
        max_retries: int = 3,
        backoff_base: int = 1,
        backoff_jitter: int = 2,
        request_timeout: float | None = None,
        seed: int = 0,
        on_send=None,
        on_ack=None,
        resolver=None,
        failover_attempts: int = 4,
        codec: protocol.WireCodec = protocol.JSON_CODEC,
        batch: bool = False,
        pool: SiteClientPool | None = None,
    ) -> None:
        self.transaction = transaction
        self.transport = transport
        self.age = age
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_jitter = backoff_jitter
        self.request_timeout = request_timeout
        self.rng = random.Random(f"{seed}/{transaction.name}")
        self.on_send = on_send
        self.on_ack = on_ack
        #: Optional :class:`repro.replica.resolver.LeaderResolver`;
        #: when set, requests route to the site's current lease leader
        #: and a failed request re-resolves and replays idempotently.
        self.resolver = resolver
        self.failover_attempts = failover_attempts
        #: Codec offered to each site at connection time.
        self.codec = codec
        #: Ship all currently-eligible same-site steps in one frame.
        self.batch = batch
        #: Run-shared connection pool; ignored on the resolver path,
        #: where failover re-dials are per-transaction decisions.
        self.pool = pool if resolver is None else None
        #: Execution plan, fixed across attempts: the steps in program
        #: order, each step's poset-predecessor indices, and each
        #: step's home site.  Index-based so the per-attempt scheduling
        #: loops compare small ints instead of re-deriving the poset
        #: (and hashing Step objects) on every wave.
        self._steps: list = list(transaction.steps)
        poset = transaction.poset()
        self._step_preds: list[tuple[int, ...]] = [
            tuple(
                j
                for j, other in enumerate(self._steps)
                if j != i and poset.precedes(other, step)
            )
            for i, step in enumerate(self._steps)
        ]
        self._step_sites: list[int] = [
            transaction.database.site_of(step.entity) for step in self._steps
        ]
        self._clients: dict[int, _SiteClient] = {}
        #: Sites this attempt sent anything to — the release fan-out.
        #: Tracked apart from ``_clients`` because failover drops and
        #: re-dials connections: a site must still get its ``release``
        #: even when its client happened to be torn down at abort time.
        self._touched_sites: set[int] = set()
        #: Root span of the distributed trace (``None`` untraced).
        self._root = None
        #: Live-introspection state (:meth:`snapshot`): which attempt
        #: is running, which phase it is in, and which step indices
        #: have been acknowledged so far.
        self._phase = "idle"
        self._attempt_no = 0
        self._acked_steps: set[int] = set()

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The coordinator's current in-flight view, for ``status``.

        Safe to call from another task at any time: it reads only
        plain attributes the execution loop keeps current, never
        awaits, and never touches connections.
        """
        acked = sorted(self._acked_steps)
        pending = [i for i in range(len(self._steps)) if i not in self._acked_steps]
        return {
            "transaction": self.transaction.name,
            "age": self.age,
            "attempt": self._attempt_no,
            "phase": self._phase,
            "acked_steps": [self._describe(i) for i in acked],
            "pending_steps": [self._describe(i) for i in pending],
            "sites": sorted(set(self._step_sites)),
        }

    def _describe(self, index: int) -> str:
        step = self._steps[index]
        return f"{self._kind_of(step)} {step.entity}@{self._step_sites[index]}"

    # ------------------------------------------------------------------
    async def run(self) -> TxnOutcome:
        """Attempt, abort-and-retry, commit; always closes connections.

        When tracing is on, the whole execution runs under a detached
        ``txn.run`` root span with a fresh ``trace_id``; every request
        this coordinator issues carries that trace context, so the
        merged cross-process trace shows one causal tree per
        transaction (:mod:`repro.obs.distributed`).
        """
        with distributed.txn_span(self.transaction.name) as root:
            self._root = root if root else None
            if root:
                root.set(txn=self.transaction.name)
            started = time.perf_counter()
            outcome = await self._run()
            outcome.seconds = time.perf_counter() - started
            if root:
                root.set(outcome=outcome.outcome, retries=outcome.retries)
            self._root = None
            return outcome

    async def _run(self) -> TxnOutcome:
        name = self.transaction.name
        sites = sorted(
            {self.transaction.database.site_of(step.entity) for step in self.transaction.steps}
        )
        try:
            for attempt in range(self.max_retries + 1):
                self._attempt_no = attempt
                self._phase = "acquire"
                failure = await self._attempt()
                if failure is None:
                    self._phase = "commit"
                    unacked = await self._commit()
                    if unacked:
                        _outcomes_counter().labels(outcome="partial-commit").inc()
                        return TxnOutcome(
                            name,
                            "partial-commit",
                            retries=attempt,
                            sites=sites,
                            detail=f"commit un-acked at sites {unacked}",
                            unacked_commit_sites=unacked,
                        )
                    _outcomes_counter().labels(outcome="committed").inc()
                    return TxnOutcome(name, "committed", retries=attempt, sites=sites)
                self._phase = "abort"
                await self._abort()
                if attempt < self.max_retries:
                    self._phase = "backoff"
                    await self._backoff(attempt)
            _outcomes_counter().labels(outcome="retry-exhausted").inc()
            return TxnOutcome(
                name,
                "retry-exhausted",
                retries=self.max_retries,
                sites=sites,
                detail=failure,
            )
        except TransportError as exc:
            # Best-effort cleanup: locks this transaction still holds
            # at reachable sites would otherwise block every later
            # requester of those entities forever (nothing expires a
            # holder that will never unlock).
            try:
                await self._abort()
            except TransportError:
                pass
            _outcomes_counter().labels(outcome="error").inc()
            return TxnOutcome(name, "error", sites=sites, detail=str(exc))
        finally:
            self._phase = "done"
            await self._close()

    # ------------------------------------------------------------------
    async def _client(self, site: int) -> _SiteClient:
        if self.resolver is None:
            if self.pool is not None:
                return await self.pool.client(site)
            client = self._clients.get(site)
            if client is None:
                client = _SiteClient(await self.transport.connect(site), address=site)
                await client.negotiate(self.codec, timeout=self.request_timeout)
                self._clients[site] = client
            return client
        address = await self.resolver.resolve(site)
        client = self._clients.get(site)
        if client is not None and client.address == address:
            return client
        if client is not None:
            await client.close()
        client = _SiteClient(await self.transport.connect(address), address=address)
        await client.negotiate(self.codec, timeout=self.request_timeout)
        self._clients[site] = client
        return client

    async def _drop_client(self, site: int) -> None:
        client = self._clients.pop(site, None)
        if client is not None:
            await client.close()

    def _failover(self, site: int, leader_hint=None) -> None:
        """A request to *site* failed: forget the cached leader (and
        this connection) so the next try re-resolves."""
        if self.resolver is not None:
            self.resolver.invalidate(site, hint=leader_hint)

    async def _should_failover(self, site: int, status: str) -> bool:
        """Does *status* mean the leader moved or died — as opposed to
        an ordinary slow grant?  A ``not-leader`` redirect is
        definitive.  A wall-clock ``timeout`` is ambiguous: a blocked
        lock request at a healthy leader times out too (a deadlock
        waiting for probe resolution, say), and treating that as
        leader death would depose healthy leaders on every long wait —
        so distinguish by pinging the same address first."""
        if self.resolver is None:
            return False
        if status == "not-leader":
            return True
        if status != "timeout":
            return False
        client = self._clients.get(site)
        if client is None:
            return True
        try:
            reply = await client.request("ping", timeout=self.request_timeout)
        except TransportError:
            return True
        return reply.get("status") != "pong"

    async def _attempt(self) -> str | None:
        """One pass over the poset; ``None`` on success, else the
        failure status."""
        tx = self.transaction
        steps = self._steps
        preds = self._step_preds
        # The live set doubles as the :meth:`snapshot` ack view.
        self._acked_steps.clear()
        acked = self._acked_steps
        in_flight: dict[asyncio.Task, int] = {}
        failure: str | None = None
        try:
            while len(acked) < len(steps) and failure is None:
                flying = set(in_flight.values())
                if self.batch:
                    in_flight.update(await self._issue_waves(acked, flying))
                else:
                    for index, step in enumerate(steps):
                        if index in acked or index in flying:
                            continue
                        if all(j in acked for j in preds[index]):
                            task = asyncio.ensure_future(self._issue(step, index=index))
                            in_flight[task] = index
                if not in_flight:  # pragma: no cover - poset is acyclic
                    return "stuck"
                done, _ = await asyncio.wait(in_flight, return_when=asyncio.FIRST_COMPLETED)
                for task in sorted(done, key=lambda t: in_flight[t]):
                    index = in_flight.pop(task)
                    status = task.result()
                    if status in ("granted", "released", "applied"):
                        acked.add(index)
                        if self.on_ack is not None:
                            self.on_ack(tx.name, steps[index])
                    else:
                        failure = status
            return failure
        finally:
            for task in in_flight:
                task.cancel()
            for task in in_flight:
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass

    @staticmethod
    def _kind_of(step) -> str:
        if step.is_lock:
            return "lock"
        if step.is_unlock:
            return "unlock"
        return "update"

    async def _issue_waves(self, acked: set[int], flying: set[int]) -> dict:
        """Ship every currently-eligible step, batched per site.

        Pipelining relaxation of the per-step invariant: a step may
        ship when every poset predecessor is acked **or co-batched
        earlier in the same frame to the same site** — the site
        processes batch steps strictly in order, so the predecessor
        still takes effect first.  Steps are scanned in program order,
        which respects the poset, so a predecessor is always placed
        before its successors.  Returns new ``task -> step index``
        entries mirroring the single-step issue path.
        """
        wave: dict[int, list[int]] = {}
        for index in range(len(self._steps)):
            if index in acked or index in flying:
                continue
            site = self._step_sites[index]
            group = wave.setdefault(site, [])
            # A predecessor is satisfied when acked, or when co-batched
            # earlier in this same site group (the site runs the batch
            # in order, so it still takes effect first).
            if all(j in acked or j in group for j in self._step_preds[index]):
                group.append(index)
        tasks: dict = {}
        for site in sorted(wave):
            group = wave[site]
            if group:
                tasks.update(await self._issue_batch(site, group))
        return tasks

    async def _issue_batch(self, site: int, group: list[int]) -> dict:
        """One site's wave as a single ``batch`` frame; a task per
        step resolves to the step's final status, like :meth:`_issue`."""
        tx = self.transaction
        self._touched_sites.add(site)
        specs = []
        for index in group:
            step = self._steps[index]
            if self.on_send is not None:
                self.on_send(tx.name, step)
            spec = {"op": self._kind_of(step), "entity": step.entity}
            if spec["op"] == "update":
                # Connection-independent idempotency key (see _issue).
                spec["step"] = index
            specs.append(spec)
        try:
            client = await self._client(site)
            pairs = await client.request_batch(
                specs,
                timeout=self.request_timeout,
                txn=tx.name,
                age=self.age,
                **self._trace_fields(),
            )
        except TransportError:
            if self.resolver is None:
                raise
            # The cached leader connection is dead: fall back to the
            # single-step path, whose failover loop re-resolves and
            # replays idempotently.
            self._failover(site)
            await self._drop_client(site)
            return {
                asyncio.ensure_future(
                    self._issue(self._steps[index], notify=False, index=index)
                ): index
                for index in group
            }
        return {
            asyncio.ensure_future(
                self._await_batch_step(site, index, step_id, future, client)
            ): index
            for index, (step_id, future) in zip(group, pairs)
        }

    async def _await_batch_step(
        self,
        site: int,
        index: int,
        step_id: int,
        future: asyncio.Future,
        client: _SiteClient,
    ) -> str:
        """Await one batched step's final status, applying the same
        failover rules as :meth:`_issue` via a single-step replay."""
        try:
            if self.request_timeout is None:
                reply = await future
            else:
                try:
                    reply = await asyncio.wait_for(asyncio.shield(future), self.request_timeout)
                except asyncio.TimeoutError:
                    client._waiters.pop(step_id, None)
                    reply = {"status": "timeout"}
        except TransportError:
            if self.resolver is None:
                raise
            reply = {"status": "timeout"}
        status = reply.get("status", "error")
        if self.resolver is not None and await self._should_failover(site, status):
            self._failover(site, leader_hint=reply.get("leader"))
            await self._drop_client(site)
            return await self._issue(self._steps[index], notify=False, index=index)
        return status

    async def _issue(self, step, notify: bool = True, index: int | None = None) -> str:
        site = self.transaction.database.site_of(step.entity)
        if notify and self.on_send is not None:
            self.on_send(self.transaction.name, step)
        kind = self._kind_of(step)
        fields = {
            "txn": self.transaction.name,
            "entity": step.entity,
            "age": self.age,
        }
        if kind == "update":
            # Connection-independent idempotency key: a step replayed
            # against a new leader after failover must not double-apply.
            fields["step"] = index if index is not None else self.transaction.steps.index(step)
        attempts = self.failover_attempts if self.resolver is not None else 0
        status = "error"
        self._touched_sites.add(site)
        with distributed.child_span("txn.step", self._root) as span:
            if span:
                span.set(kind=kind, entity=step.entity, site=site)
                fields["trace"] = distributed.context_of(span)
            for attempt in range(attempts + 1):
                try:
                    client = await self._client(site)
                    reply = await client.request(
                        kind, timeout=self.request_timeout, **fields
                    )
                except TransportError:
                    if self.resolver is None or attempt == attempts:
                        raise
                    self._failover(site)
                    await self._drop_client(site)
                    continue
                status = reply.get("status", "error")
                if attempt < attempts and await self._should_failover(site, status):
                    # The leader moved (redirect) or stopped answering
                    # (lease-holder death): re-resolve and replay.
                    # Replays are idempotent site-side — a re-sent lock
                    # for a held entity re-grants, a re-sent update
                    # dedupes on its step key, a queued lock retry
                    # supersedes the original.
                    self._failover(site, leader_hint=reply.get("leader"))
                    await self._drop_client(site)
                    continue
                break
            if span:
                span.set(status=status)
            return status

    def _trace_fields(self) -> dict:
        """The ``trace`` field for a request issued directly under the
        transaction's root span (empty dict untraced)."""
        context = distributed.context_of(self._root)
        return {"trace": context} if context is not None else {}

    async def _abort(self) -> None:
        # Releases are independent per site: fan them out concurrently
        # (each is its own failover-aware retry loop).
        sites = sorted(self._touched_sites | set(self._clients))
        await asyncio.gather(*(self._abort_site(site) for site in sites))

    async def _abort_site(self, site: int) -> None:
        for attempt in range(2):
            try:
                client = await self._client(site)
                reply = await client.request(
                    "release",
                    txn=self.transaction.name,
                    timeout=self.request_timeout,
                    **self._trace_fields(),
                )
            except TransportError:
                if self.resolver is None:
                    break
                self._failover(site)
                await self._drop_client(site)
                continue
            if attempt == 0 and await self._should_failover(
                site, reply.get("status", "error")
            ):
                self._failover(site, leader_hint=reply.get("leader"))
                await self._drop_client(site)
                continue
            break

    #: Attempts per site before a commit is declared un-acked.
    COMMIT_ATTEMPTS = 3

    async def _commit(self) -> list[int]:
        """Send ``commit`` everywhere and insist on an ack.

        Commit is idempotent site-side, so a lost request or reply
        (injected drop, dead connection) is retried — on a fresh
        connection if the old one raised.  Returns the sites that
        never acknowledged; the caller reports those as a
        ``partial-commit`` so the history audit can flag the run
        instead of silently auditing an incomplete history.
        """
        with distributed.child_span("txn.commit", self._root) as span:
            sites = sorted(self._touched_sites | set(self._clients))
            if span:
                span.set(sites=len(sites))
            # Commits are idempotent and independent per site: fan
            # them out concurrently instead of one round trip at a
            # time.
            acked = await asyncio.gather(*(self._commit_site(site) for site in sites))
            unacked = [site for site, ok in zip(sites, acked) if not ok]
            if span and unacked:
                span.set(unacked=len(unacked))
        return unacked

    async def _commit_site(self, site: int) -> bool:
        attempts = self.COMMIT_ATTEMPTS + (
            self.failover_attempts if self.resolver is not None else 0
        )
        for _ in range(attempts):
            try:
                client = await self._client(site)
                reply = await client.request(
                    "commit",
                    txn=self.transaction.name,
                    timeout=self.request_timeout,
                    **self._trace_fields(),
                )
            except TransportError:
                self._failover(site)
                await self._drop_client(site)
                continue
            status = reply.get("status")
            if status == "committed":
                return True
            if await self._should_failover(site, status or "error"):
                self._failover(site, leader_hint=reply.get("leader"))
                await self._drop_client(site)
        return False

    async def _backoff(self, attempt: int) -> None:
        ticks = self.backoff_base * (2**attempt) + self.rng.randrange(self.backoff_jitter + 1)
        await self.transport.sleep(ticks)

    async def _close(self) -> None:
        for client in self._clients.values():
            await client.close()
        self._clients.clear()
