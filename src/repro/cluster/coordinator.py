"""The client side of a distributed transaction.

A :class:`Coordinator` executes one :class:`~repro.core.transaction.
Transaction` against a live cluster **as the partial order it is**: a
step is issued to its entity's site the moment every poset predecessor
has been *acknowledged*, steps at different sites run concurrently,
and steps at the same site flow down one connection in the site total
order the paper requires.  That invariant — never send a step before
all its predecessors are acked — is what the property test in
``tests/cluster/test_partial_order.py`` checks against random
workloads.

A reply of ``deadlock`` (a probe cycle chose this transaction as
victim), ``timeout`` (a site's lock-grant timer fired) or ``aborted``
(a racing release) makes the attempt fail: the coordinator sends
``release`` to every involved site, backs off exponentially with
seeded jitter on the transport's tick clock, and retries up to
*max_retries* times before reporting ``retry-exhausted``.  On success
it sends ``commit`` everywhere, which is what promotes the
transaction's tentative updates into the committed site orders.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field

from ..core.transaction import Transaction
from ..obs import distributed
from ..obs.metrics import REGISTRY
from . import protocol
from .transport import Connection, Transport, TransportError


# Resolved by name at use time — never cached in a module global, so a
# ``REGISTRY.reset()`` between runs cannot orphan a live handle.
def _outcomes_counter():
    return REGISTRY.counter(
        "repro_cluster_txn_outcomes_total",
        "Distributed transactions by final outcome.",
    )


@dataclass
class TxnOutcome:
    """How one distributed transaction ended."""

    name: str
    outcome: str  # "committed" | "partial-commit" | "retry-exhausted" | "error"
    retries: int = 0
    sites: list[int] = field(default_factory=list)
    detail: str = ""
    #: Sites whose ``commit`` was never acknowledged ("partial-commit"):
    #: their copy of the history may be missing this transaction, so
    #: the serializability audit must treat the run as incomplete.
    unacked_commit_sites: list[int] = field(default_factory=list)

    @property
    def committed(self) -> bool:
        """Fully committed — acknowledged at every involved site."""
        return self.outcome == "committed"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "outcome": self.outcome,
            "retries": self.retries,
            "sites": self.sites,
            **({"detail": self.detail} if self.detail else {}),
            **(
                {"unacked_commit_sites": self.unacked_commit_sites}
                if self.unacked_commit_sites
                else {}
            ),
        }


class _SiteClient:
    """One connection to a site: sequential requests, routed replies.

    Requests carry ids; a reader task resolves the matching future.
    Replies for ids nobody waits on any more (a timed-out request, a
    cancelled branch) are dropped — the site may legally answer late.
    """

    def __init__(self, connection: Connection, address: int | None = None) -> None:
        self.connection = connection
        #: Transport id this client dialled (a replica address when a
        #: resolver is in play; the site id otherwise).
        self.address = address
        self._waiters: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._reader = asyncio.ensure_future(self._read_loop())

    async def _read_loop(self) -> None:
        try:
            while True:
                message = await self.connection.recv()
                if message is None:
                    break
                future = self._waiters.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        except asyncio.CancelledError:
            raise
        except Exception:
            pass
        for future in self._waiters.values():
            if not future.done():
                future.set_exception(TransportError("site connection closed"))
        self._waiters.clear()

    async def request(self, kind: str, *, timeout: int | None = None, **fields) -> dict:
        self._next_id += 1
        request_id = self._next_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters[request_id] = future
        await self.connection.send(protocol.request(kind, request_id, **fields))
        if timeout is None:
            return await future
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            self._waiters.pop(request_id, None)
            return {"type": "reply", "id": request_id, "status": "timeout"}

    async def close(self) -> None:
        self._reader.cancel()
        try:
            await self._reader
        except (asyncio.CancelledError, Exception):
            pass
        await self.connection.close()


class Coordinator:
    """Executes one transaction's poset against the cluster."""

    def __init__(
        self,
        transaction: Transaction,
        *,
        transport: Transport,
        age: int = 0,
        max_retries: int = 3,
        backoff_base: int = 1,
        backoff_jitter: int = 2,
        request_timeout: float | None = None,
        seed: int = 0,
        on_send=None,
        on_ack=None,
        resolver=None,
        failover_attempts: int = 4,
    ) -> None:
        self.transaction = transaction
        self.transport = transport
        self.age = age
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_jitter = backoff_jitter
        self.request_timeout = request_timeout
        self.rng = random.Random(f"{seed}/{transaction.name}")
        self.on_send = on_send
        self.on_ack = on_ack
        #: Optional :class:`repro.replica.resolver.LeaderResolver`;
        #: when set, requests route to the site's current lease leader
        #: and a failed request re-resolves and replays idempotently.
        self.resolver = resolver
        self.failover_attempts = failover_attempts
        self._clients: dict[int, _SiteClient] = {}
        #: Sites this attempt sent anything to — the release fan-out.
        #: Tracked apart from ``_clients`` because failover drops and
        #: re-dials connections: a site must still get its ``release``
        #: even when its client happened to be torn down at abort time.
        self._touched_sites: set[int] = set()
        #: Root span of the distributed trace (``None`` untraced).
        self._root = None

    # ------------------------------------------------------------------
    async def run(self) -> TxnOutcome:
        """Attempt, abort-and-retry, commit; always closes connections.

        When tracing is on, the whole execution runs under a detached
        ``txn.run`` root span with a fresh ``trace_id``; every request
        this coordinator issues carries that trace context, so the
        merged cross-process trace shows one causal tree per
        transaction (:mod:`repro.obs.distributed`).
        """
        with distributed.txn_span(self.transaction.name) as root:
            self._root = root if root else None
            if root:
                root.set(txn=self.transaction.name)
            outcome = await self._run()
            if root:
                root.set(outcome=outcome.outcome, retries=outcome.retries)
            self._root = None
            return outcome

    async def _run(self) -> TxnOutcome:
        name = self.transaction.name
        sites = sorted(
            {self.transaction.database.site_of(step.entity) for step in self.transaction.steps}
        )
        try:
            for attempt in range(self.max_retries + 1):
                failure = await self._attempt()
                if failure is None:
                    unacked = await self._commit()
                    if unacked:
                        _outcomes_counter().labels(outcome="partial-commit").inc()
                        return TxnOutcome(
                            name,
                            "partial-commit",
                            retries=attempt,
                            sites=sites,
                            detail=f"commit un-acked at sites {unacked}",
                            unacked_commit_sites=unacked,
                        )
                    _outcomes_counter().labels(outcome="committed").inc()
                    return TxnOutcome(name, "committed", retries=attempt, sites=sites)
                await self._abort()
                if attempt < self.max_retries:
                    await self._backoff(attempt)
            _outcomes_counter().labels(outcome="retry-exhausted").inc()
            return TxnOutcome(
                name,
                "retry-exhausted",
                retries=self.max_retries,
                sites=sites,
                detail=failure,
            )
        except TransportError as exc:
            # Best-effort cleanup: locks this transaction still holds
            # at reachable sites would otherwise block every later
            # requester of those entities forever (nothing expires a
            # holder that will never unlock).
            try:
                await self._abort()
            except TransportError:
                pass
            _outcomes_counter().labels(outcome="error").inc()
            return TxnOutcome(name, "error", sites=sites, detail=str(exc))
        finally:
            await self._close()

    # ------------------------------------------------------------------
    async def _client(self, site: int) -> _SiteClient:
        if self.resolver is None:
            client = self._clients.get(site)
            if client is None:
                client = _SiteClient(await self.transport.connect(site), address=site)
                self._clients[site] = client
            return client
        address = await self.resolver.resolve(site)
        client = self._clients.get(site)
        if client is not None and client.address == address:
            return client
        if client is not None:
            await client.close()
        client = _SiteClient(await self.transport.connect(address), address=address)
        self._clients[site] = client
        return client

    async def _drop_client(self, site: int) -> None:
        client = self._clients.pop(site, None)
        if client is not None:
            await client.close()

    def _failover(self, site: int, leader_hint=None) -> None:
        """A request to *site* failed: forget the cached leader (and
        this connection) so the next try re-resolves."""
        if self.resolver is not None:
            self.resolver.invalidate(site, hint=leader_hint)

    async def _should_failover(self, site: int, status: str) -> bool:
        """Does *status* mean the leader moved or died — as opposed to
        an ordinary slow grant?  A ``not-leader`` redirect is
        definitive.  A wall-clock ``timeout`` is ambiguous: a blocked
        lock request at a healthy leader times out too (a deadlock
        waiting for probe resolution, say), and treating that as
        leader death would depose healthy leaders on every long wait —
        so distinguish by pinging the same address first."""
        if self.resolver is None:
            return False
        if status == "not-leader":
            return True
        if status != "timeout":
            return False
        client = self._clients.get(site)
        if client is None:
            return True
        try:
            reply = await client.request("ping", timeout=self.request_timeout)
        except TransportError:
            return True
        return reply.get("status") != "pong"

    async def _attempt(self) -> str | None:
        """One pass over the poset; ``None`` on success, else the
        failure status."""
        tx = self.transaction
        poset = tx.poset()
        steps = list(tx.steps)
        acked: set = set()
        in_flight: dict[asyncio.Task, object] = {}
        failure: str | None = None
        try:
            while len(acked) < len(steps) and failure is None:
                for step in steps:
                    if step in acked or any(step is flying for flying in in_flight.values()):
                        continue
                    if all(other in acked for other in steps if poset.precedes(other, step)):
                        task = asyncio.ensure_future(self._issue(step))
                        in_flight[task] = step
                if not in_flight:  # pragma: no cover - poset is acyclic
                    return "stuck"
                done, _ = await asyncio.wait(in_flight, return_when=asyncio.FIRST_COMPLETED)
                for task in sorted(done, key=lambda t: steps.index(in_flight[t])):
                    step = in_flight.pop(task)
                    status = task.result()
                    if status in ("granted", "released", "applied"):
                        acked.add(step)
                        if self.on_ack is not None:
                            self.on_ack(tx.name, step)
                    else:
                        failure = status
            return failure
        finally:
            for task in in_flight:
                task.cancel()
            for task in in_flight:
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass

    async def _issue(self, step) -> str:
        site = self.transaction.database.site_of(step.entity)
        if self.on_send is not None:
            self.on_send(self.transaction.name, step)
        if step.is_lock:
            kind = "lock"
        elif step.is_unlock:
            kind = "unlock"
        else:
            kind = "update"
        fields = {
            "txn": self.transaction.name,
            "entity": step.entity,
            "age": self.age,
        }
        if kind == "update":
            # Connection-independent idempotency key: a step replayed
            # against a new leader after failover must not double-apply.
            fields["step"] = self.transaction.steps.index(step)
        attempts = self.failover_attempts if self.resolver is not None else 0
        status = "error"
        self._touched_sites.add(site)
        with distributed.child_span("txn.step", self._root) as span:
            if span:
                span.set(kind=kind, entity=step.entity, site=site)
                fields["trace"] = distributed.context_of(span)
            for attempt in range(attempts + 1):
                try:
                    client = await self._client(site)
                    reply = await client.request(
                        kind, timeout=self.request_timeout, **fields
                    )
                except TransportError:
                    if self.resolver is None or attempt == attempts:
                        raise
                    self._failover(site)
                    await self._drop_client(site)
                    continue
                status = reply.get("status", "error")
                if attempt < attempts and await self._should_failover(site, status):
                    # The leader moved (redirect) or stopped answering
                    # (lease-holder death): re-resolve and replay.
                    # Replays are idempotent site-side — a re-sent lock
                    # for a held entity re-grants, a re-sent update
                    # dedupes on its step key, a queued lock retry
                    # supersedes the original.
                    self._failover(site, leader_hint=reply.get("leader"))
                    await self._drop_client(site)
                    continue
                break
            if span:
                span.set(status=status)
            return status

    def _trace_fields(self) -> dict:
        """The ``trace`` field for a request issued directly under the
        transaction's root span (empty dict untraced)."""
        context = distributed.context_of(self._root)
        return {"trace": context} if context is not None else {}

    async def _abort(self) -> None:
        for site in sorted(self._touched_sites | set(self._clients)):
            for attempt in range(2):
                try:
                    client = await self._client(site)
                    reply = await client.request(
                        "release",
                        txn=self.transaction.name,
                        timeout=self.request_timeout,
                        **self._trace_fields(),
                    )
                except TransportError:
                    if self.resolver is None:
                        break
                    self._failover(site)
                    await self._drop_client(site)
                    continue
                if attempt == 0 and await self._should_failover(
                    site, reply.get("status", "error")
                ):
                    self._failover(site, leader_hint=reply.get("leader"))
                    await self._drop_client(site)
                    continue
                break

    #: Attempts per site before a commit is declared un-acked.
    COMMIT_ATTEMPTS = 3

    async def _commit(self) -> list[int]:
        """Send ``commit`` everywhere and insist on an ack.

        Commit is idempotent site-side, so a lost request or reply
        (injected drop, dead connection) is retried — on a fresh
        connection if the old one raised.  Returns the sites that
        never acknowledged; the caller reports those as a
        ``partial-commit`` so the history audit can flag the run
        instead of silently auditing an incomplete history.
        """
        unacked: list[int] = []
        with distributed.child_span("txn.commit", self._root) as span:
            sites = sorted(self._touched_sites | set(self._clients))
            if span:
                span.set(sites=len(sites))
            for site in sites:
                if not await self._commit_site(site):
                    unacked.append(site)
            if span and unacked:
                span.set(unacked=len(unacked))
        return unacked

    async def _commit_site(self, site: int) -> bool:
        attempts = self.COMMIT_ATTEMPTS + (
            self.failover_attempts if self.resolver is not None else 0
        )
        for _ in range(attempts):
            try:
                client = await self._client(site)
                reply = await client.request(
                    "commit",
                    txn=self.transaction.name,
                    timeout=self.request_timeout,
                    **self._trace_fields(),
                )
            except TransportError:
                self._failover(site)
                await self._drop_client(site)
                continue
            status = reply.get("status")
            if status == "committed":
                return True
            if await self._should_failover(site, status or "error"):
                self._failover(site, leader_hint=reply.get("leader"))
                await self._drop_client(site)
        return False

    async def _backoff(self, attempt: int) -> None:
        ticks = self.backoff_base * (2**attempt) + self.rng.randrange(self.backoff_jitter + 1)
        await self.transport.sleep(ticks)

    async def _close(self) -> None:
        for client in self._clients.values():
            await client.close()
        self._clients.clear()
