"""One networked lock-manager site.

A :class:`SiteServer` owns exactly the state the paper assigns a site:
the lock table of the entities stored there (a :class:`~repro.sim.
lockmanager.SiteLockManager`, FIFO-fair) plus the site-local total
order of update steps — the ground truth the final serializability
check is computed from.  It speaks the :mod:`repro.cluster.protocol`
over any :class:`~repro.cluster.transport.Transport` and takes part in
distributed deadlock detection by edge-chasing probes:

* when a lock request blocks, the site broadcasts a ``probe`` carrying
  the waiter's name, age and waiting site toward the blocker;
* a site that finds the probe's target blocked here extends the path
  and re-broadcasts; a target already on the path closes a cycle;
* the detecting site picks a victim with :func:`repro.faults.policies.
  choose_victim` (ages travel inside requests and probes) and sends
  ``resolve`` to the victim's waiting site, which answers the victim's
  pending lock request with ``status="deadlock"`` — the coordinator
  aborts and retries from there.

Optional per-site *grant timeouts* bound the wait when probes are lost
(e.g. under injected message drops): a request still queued after the
deadline is withdrawn and answered ``status="timeout"``.
"""

from __future__ import annotations

import asyncio
import random
import time

from ..faults.policies import choose_victim, validate_policy
from ..obs import distributed
from ..obs.events import EventLog
from ..obs.insight import ContentionTally
from ..obs.metrics import REGISTRY
from ..sim.lockmanager import SiteLockManager
from . import protocol
from .netfaults import NetworkFaultAdapter
from .transport import Connection, Transport, TransportError

#: Buckets for grant latency measured in site-local processed messages.
GRANT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 250.0, 1000.0)


# Metrics are resolved by name at use time (a dict hit in the
# registry), never cached in module globals: a cached handle would keep
# mutating an orphaned object after ``REGISTRY.reset()`` and leak one
# run's counts into the next.
def _messages_counter():
    return REGISTRY.counter(
        "repro_cluster_messages_total",
        "Protocol messages processed by cluster site servers.",
    )


def _grant_histogram():
    return REGISTRY.histogram(
        "repro_cluster_grant_latency_steps",
        "Site-local messages processed between a lock request queuing and its grant.",
        buckets=GRANT_BUCKETS,
    )


class _PendingLock:
    """A blocked lock request awaiting grant, timeout or deadlock."""

    __slots__ = (
        "connection",
        "request_id",
        "enqueued_at",
        "timer",
        "queued_ns",
        "span",
        "batch_rest",
        "last_probed",
        "txn",
        "entity",
    )

    def __init__(
        self,
        connection: Connection,
        request_id: int,
        enqueued_at: int,
        timer: asyncio.Task | None = None,
        *,
        txn: str = "",
        entity: str = "",
    ) -> None:
        self.connection = connection
        self.request_id = request_id
        self.enqueued_at = enqueued_at
        self.timer = timer
        #: Who waits, and on what — for the contention tally and the
        #: status plane, which see the pending entry without its key.
        self.txn = txn
        self.entity = entity
        #: Wall-clock queue-entry stamp for the lock-wait stage.
        self.queued_ns = 0
        #: Open ``site.lock_wait`` span (traced runs only).
        self.span = None
        #: Steps of a batch parked behind this queued lock: they run
        #: when it is granted, and are answered ``cancelled`` when it
        #: concludes any other way.
        self.batch_rest = None
        #: Blocker this waiter last probed toward — reprobes for an
        #: unchanged wait-for edge are suppressed on fault-free runs.
        self.last_probed = None


class SiteServer:
    """The lock table, update log and deadlock detector of one site."""

    def __init__(
        self,
        site: int,
        *,
        transport: Transport,
        peers: tuple[int, ...] = (),
        deadlock_policy: str = "abort-youngest",
        grant_timeout: int | None = None,
        faults: NetworkFaultAdapter | None = None,
        event_log: EventLog | None = None,
        seed: int = 0,
    ) -> None:
        self.site = site
        self.transport = transport
        self.peers = tuple(p for p in peers if p != site)
        #: ``None`` disables probe-based resolution (timeouts only).
        self.deadlock_policy = validate_policy(deadlock_policy)
        self.grant_timeout = grant_timeout
        self.faults = faults
        self.event_log = event_log
        self.locks = SiteLockManager(site, event_log=event_log)
        #: Always-on per-entity contention counters (hot-lock ranking).
        self.insight = ContentionTally()
        self.rng = random.Random(f"{seed}/site-{site}")
        self.processed = 0
        self.running = False
        #: (transaction, entity) -> blocked request bookkeeping.
        self._pending: dict[tuple[str, str], _PendingLock] = {}
        #: Admission ages carried inside requests and probes.
        self._ages: dict[str, int] = {}
        #: Per-entity update log (tentative until the txn commits).
        self._updates: dict[str, list[str]] = {}
        self._committed: set[str] = set()
        #: Request ids already applied per transaction (retry dedupe).
        self._applied_ids: dict[str, set[int]] = {}
        self._peer_connections: dict[int, Connection] = {}
        self._deferred_replies: list[asyncio.Task] = []
        #: Trace context of the message currently being handled, for
        #: re-injection into onward messages (probes, ships, votes).
        self._trace_ctx: dict | None = None
        #: (transaction, entity) -> wall-clock grant stamp (hold stage).
        self._grant_wall: dict[tuple[str, str], int] = {}
        #: Probes handled since the wait-for graph last changed, keyed
        #: by (target, path txns).  Re-processing an identical probe
        #: against an unchanged graph reproduces the identical result,
        #: so duplicates are skipped — the cache is cleared on every
        #: lock-table mutation, which is exactly when a re-sent probe
        #: can conclude differently.  This caps the probe storms that
        #: contention otherwise amplifies (every grant reprobes every
        #: waiter, and each hop re-broadcasts to every peer).
        self._probes_seen: set[tuple] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Register with the transport and begin serving."""
        await self.transport.listen(self.site, self._serve_connection)
        self.running = True

    async def stop(self) -> None:
        self.running = False
        for task in self._deferred_replies:
            task.cancel()
        for pending in self._pending.values():
            if pending.timer is not None:
                pending.timer.cancel()
            self._finish_wait(pending, "shutdown")
        self._pending.clear()
        for connection in self._peer_connections.values():
            await connection.close()
        self._peer_connections.clear()

    # ------------------------------------------------------------------
    # Connection loop
    # ------------------------------------------------------------------
    async def _serve_connection(self, connection: Connection) -> None:
        while True:
            message = await connection.recv()
            if message is None:
                break
            await self._process(connection, message)

    async def _fault_gate(self, message: dict) -> bool:
        """Apply the injected-fault schedule to one inbound message;
        ``False`` means the message was dropped unprocessed."""
        self.faults.tick()
        # A crashed server stops consuming: stall until the window
        # closes (every wait-tick advances the fault clock, so
        # finite windows always close).
        while self.running and self.faults.site_down(self.site):
            self.faults.tick()
            await self.transport.sleep(1)
        return not self.faults.drop(
            self.site,
            message.get("type", "?"),
            transaction=message.get("txn"),
        )

    #: Message kinds kept off the event timeline (pure plumbing).
    QUIET_KINDS = (
        "hello",
        "history",
        "ping",
        "leader",
        "vote",
        "replicate",
        "fetch_log",
        "status",
        "inspect",
    )

    async def _process(self, connection: Connection, message: dict) -> None:
        if self.faults is not None and not await self._fault_gate(message):
            return
        if not self.running:
            return
        self.processed += 1
        kind = message.get("type", "?")
        _messages_counter().labels(site=str(self.site), kind=kind).inc()
        if self.event_log is not None and kind not in self.QUIET_KINDS:
            self.event_log.emit(
                "msg",
                transaction=message.get("txn"),
                entity=message.get("entity"),
                site=self.site,
                detail=kind,
            )
        handler = getattr(self, f"_on_{kind}", None)
        if handler is None:
            if "id" in message:
                await self._safe_send(
                    connection,
                    protocol.reply(message["id"], "error", reason=f"unknown type {kind!r}"),
                )
            return
        queue_ns = distributed.server_queue_ns(message)
        if queue_ns is not None:
            distributed.WIRE.observe("server_queue", queue_ns, self.site)
        context = distributed.extract(message)
        with distributed.remote_span(f"site.{kind}", context) as span:
            if span:
                span.set(site=self.site)
                if message.get("txn") is not None:
                    span.set(txn=message["txn"])
                if message.get("entity") is not None:
                    span.set(entity=message["entity"])
                if queue_ns is not None:
                    span.set(server_queue_ns=queue_ns)
                wire_ns = distributed.transport_ns(message)
                if wire_ns is not None:
                    span.set(transport_ns=wire_ns)
            previous_ctx = self._trace_ctx
            self._trace_ctx = context
            try:
                await handler(connection, message)
            finally:
                self._trace_ctx = previous_ctx

    async def _safe_send(self, connection: Connection, message: dict) -> None:
        try:
            await connection.send(message)
        except TransportError:
            pass

    def _log_mutation(self, op: str, **fields) -> None:
        """Replication hook: called at every durable state change
        (grant, unlock, update, release).  A plain site has no
        replicas, so this is a no-op; :class:`repro.replica.server.
        ReplicaServer` overrides it to append to the replication log
        and ship to followers."""

    # ------------------------------------------------------------------
    # Request handlers
    # ------------------------------------------------------------------
    async def _on_hello(self, connection: Connection, message: dict) -> None:
        """Codec negotiation: pick the first offered codec this site
        knows and switch the connection's *send* direction to it.

        The answer itself still goes out with the old (JSON) codec —
        only frames after it use the agreed one; receiving needs no
        agreement because payloads are self-describing."""
        codec = protocol.choose_codec(message.get("codecs"))
        await self._safe_send(connection, protocol.reply(message["id"], "hello", codec=codec.name))
        connection.codec = codec

    async def _on_lock(self, connection: Connection, message: dict) -> None:
        txn = message["txn"]
        entity = message["entity"]
        self._ages.setdefault(txn, int(message.get("age", 0)))
        if self.locks.holder(entity) == txn:
            # Retried request whose original grant reply was lost.
            await self._reply_granted(connection, message["id"], txn, entity, 0)
            return
        existing = self._pending.get((txn, entity))
        if existing is not None:
            # Retried while the original request is still queued: the
            # original waiter gave up client-side, so answer its id and
            # re-point the pending entry (keeping its queue slot and
            # timer) at the retry instead of installing a second entry
            # whose stale timer would fire prematurely.
            await self._safe_send(
                existing.connection,
                protocol.reply(existing.request_id, "superseded", entity=entity),
            )
            await self._cancel_batch_rest(existing)
            existing.connection = connection
            existing.request_id = message["id"]
            return
        self._probes_seen.clear()
        if self.locks.try_lock(entity, txn):
            distributed.WIRE.observe("lock_wait", 0, self.site)
            self.insight.granted(entity)
            await self._reply_granted(connection, message["id"], txn, entity, 0)
            return
        self.insight.blocked(entity, len(self.locks.waiters(entity)))
        pending = _PendingLock(connection, message["id"], self.processed, txn=txn, entity=entity)
        pending.queued_ns = time.time_ns()
        wait_span = distributed.remote_span("site.lock_wait", self._trace_ctx)
        if wait_span:
            pending.span = wait_span.__enter__()
            pending.span.set(site=self.site, txn=txn, entity=entity)
        self._pending[(txn, entity)] = pending
        if self.grant_timeout is not None:
            pending.timer = asyncio.ensure_future(self._expire(txn, entity, self.grant_timeout))
        blocker = self._blocker_of(txn, entity)
        if blocker is not None and self.deadlock_policy is not None:
            pending.last_probed = blocker
            await self._broadcast_probe(
                path=[{"txn": txn, "age": self._ages[txn], "site": self.site}],
                target=blocker,
            )

    # ------------------------------------------------------------------
    # Batched steps
    # ------------------------------------------------------------------
    async def _on_batch(self, connection: Connection, message: dict) -> None:
        """Several steps of one transaction in one frame.

        Steps are processed strictly in the order shipped — the
        coordinator relies on this to pipeline a step behind its poset
        predecessors in the same batch.  Each step gets a per-step
        ``id``; outcomes known immediately ride back inline in one
        ``batch`` reply, a lock that queues is reported ``queued``
        inline and answered with its final status in a later individual
        frame.  Steps behind a queued lock are *parked* on its pending
        entry: they run (individually answered) when the lock is
        granted, and are answered ``cancelled`` when it concludes any
        other way — the coordinator treats ``cancelled`` like the
        failure that caused it and retries the attempt.
        """
        txn = message["txn"]
        self._ages.setdefault(txn, int(message.get("age", 0)))
        results: list[dict] = []
        await self._run_batch_steps(connection, txn, list(message.get("steps", ())), results)
        await self._safe_send(connection, protocol.reply(message["id"], "batch", results=results))

    async def _run_batch_steps(
        self,
        connection: Connection,
        txn: str,
        queue: list[dict],
        results: list[dict] | None = None,
    ) -> None:
        """Run batched steps in order; *results* collects outcomes for
        the single batch reply, ``None`` (the parked-continuation path)
        answers each step with an individual reply instead."""

        async def answer(step_id: int, status: str, **fields) -> None:
            if results is not None:
                results.append({"id": step_id, "status": status, **fields})
            else:
                await self._safe_send(connection, protocol.reply(step_id, status, **fields))

        while queue:
            step = queue.pop(0)
            op = step.get("op", "?")
            step_id = step["id"]
            entity = step.get("entity")
            if op == "lock":
                parked, deferred = await self._batch_lock(connection, txn, entity, step_id, queue)
                if parked or deferred:
                    # Queued (rest now parked on the pending entry) or
                    # grant-delay-faulted (lock held, reply deferred):
                    # either way the final status arrives in a later
                    # individual frame.
                    if results is not None:
                        results.append({"id": step_id, "status": "queued", "entity": entity})
                    if parked:
                        return
                else:
                    await answer(step_id, "granted", entity=entity)
            elif op == "unlock":
                if self.locks.holder(entity) == txn:
                    self.locks.unlock(entity, txn)
                    self._probes_seen.clear()
                    self._observe_hold(txn, entity)
                    self._log_mutation("unlock", txn=txn, entity=entity)
                    await self._promote(entity)
                await answer(step_id, "released", entity=entity)
            elif op == "update":
                if self.locks.holder(entity) != txn:
                    await answer(
                        step_id,
                        "error",
                        reason=f"{txn} updates {entity!r} without holding its lock",
                    )
                    continue
                key = ("step", step["step"]) if "step" in step else ("id", step_id)
                applied = self._applied_ids.setdefault(txn, set())
                if key not in applied:
                    applied.add(key)
                    self._updates.setdefault(entity, []).append(txn)
                    self._log_mutation("update", txn=txn, entity=entity, key=list(key))
                    if self.event_log is not None:
                        self.event_log.emit("step", transaction=txn, entity=entity, site=self.site)
                await answer(step_id, "applied")
            else:
                await answer(step_id, "error", reason=f"unknown batch op {op!r}")

    async def _batch_lock(
        self,
        connection: Connection,
        txn: str,
        entity: str,
        step_id: int,
        rest: list[dict],
    ) -> tuple[bool, bool]:
        """One lock step inside a batch; ``(parked, deferred)``.

        Mirrors :meth:`_on_lock` except the grant is *not* sent — the
        caller reports it (inline in the batch reply, or as the
        individual reply of a continuation).  ``parked`` means the lock
        queued and the pending entry took ownership of *rest*;
        ``deferred`` means the lock is held but a grant-delay fault is
        holding the reply, which :meth:`_deliver_delayed_grant` sends
        later.
        """
        if self.locks.holder(entity) == txn:
            return False, await self._batch_granted(connection, txn, entity, step_id)
        existing = self._pending.get((txn, entity))
        if existing is not None:
            # Same supersede rule as _on_lock: the retry takes over the
            # queue slot and timer; a rest parked behind the original
            # is cancelled and replaced by the retry's rest.
            await self._safe_send(
                existing.connection,
                protocol.reply(existing.request_id, "superseded", entity=entity),
            )
            await self._cancel_batch_rest(existing)
            existing.connection = connection
            existing.request_id = step_id
            existing.batch_rest = list(rest)
            del rest[:]
            return True, False
        self._probes_seen.clear()
        if self.locks.try_lock(entity, txn):
            distributed.WIRE.observe("lock_wait", 0, self.site)
            self.insight.granted(entity)
            return False, await self._batch_granted(connection, txn, entity, step_id)
        self.insight.blocked(entity, len(self.locks.waiters(entity)))
        pending = _PendingLock(connection, step_id, self.processed, txn=txn, entity=entity)
        pending.queued_ns = time.time_ns()
        wait_span = distributed.remote_span("site.lock_wait", self._trace_ctx)
        if wait_span:
            pending.span = wait_span.__enter__()
            pending.span.set(site=self.site, txn=txn, entity=entity)
        pending.batch_rest = list(rest)
        del rest[:]
        self._pending[(txn, entity)] = pending
        if self.grant_timeout is not None:
            pending.timer = asyncio.ensure_future(self._expire(txn, entity, self.grant_timeout))
        blocker = self._blocker_of(txn, entity)
        if blocker is not None and self.deadlock_policy is not None:
            pending.last_probed = blocker
            await self._broadcast_probe(
                path=[{"txn": txn, "age": self._ages[txn], "site": self.site}],
                target=blocker,
            )
        return True, False

    async def _batch_granted(
        self, connection: Connection, txn: str, entity: str, step_id: int
    ) -> bool:
        """Grant bookkeeping for a batched lock (metrics, replication
        log, grant-delay faults) without sending the reply; ``True``
        when a grant-delay fault deferred the reply to a later frame."""
        _grant_histogram().observe(0.0)
        if distributed.WIRE.active:
            self._grant_wall.setdefault((txn, entity), time.time_ns())
        self._log_mutation("grant", txn=txn, entity=entity)
        if self.faults is not None and self.faults.grant_delayed(entity, self.site):
            task = asyncio.ensure_future(self._deliver_delayed_grant(connection, step_id, entity))
            self._deferred_replies.append(task)
            return True
        return False

    async def _cancel_batch_rest(self, pending: _PendingLock) -> None:
        """Answer every step parked behind *pending* with
        ``cancelled`` (its lock concluded without a grant)."""
        rest, pending.batch_rest = pending.batch_rest, None
        for step in rest or ():
            await self._safe_send(
                pending.connection,
                protocol.reply(step["id"], "cancelled", entity=step.get("entity")),
            )

    async def _on_unlock(self, connection: Connection, message: dict) -> None:
        txn = message["txn"]
        entity = message["entity"]
        if self.locks.holder(entity) == txn:
            self.locks.unlock(entity, txn)
            self._probes_seen.clear()
            self._observe_hold(txn, entity)
            self._log_mutation("unlock", txn=txn, entity=entity)
            await self._promote(entity)
        await self._safe_send(connection, protocol.reply(message["id"], "released"))

    async def _on_update(self, connection: Connection, message: dict) -> None:
        txn = message["txn"]
        entity = message["entity"]
        request_id = message["id"]
        if self.locks.holder(entity) != txn:
            await self._safe_send(
                connection,
                protocol.reply(
                    request_id,
                    "error",
                    reason=f"{txn} updates {entity!r} without holding its lock",
                ),
            )
            return
        # Dedupe on the coordinator-chosen step key when present: it is
        # stable across connections, so a step replayed after a leader
        # failover (new connection, new request ids) stays idempotent.
        key = ("step", message["step"]) if "step" in message else ("id", request_id)
        applied = self._applied_ids.setdefault(txn, set())
        if key not in applied:
            applied.add(key)
            self._updates.setdefault(entity, []).append(txn)
            self._log_mutation("update", txn=txn, entity=entity, key=list(key))
            if self.event_log is not None:
                self.event_log.emit("step", transaction=txn, entity=entity, site=self.site)
        await self._safe_send(connection, protocol.reply(request_id, "applied"))

    async def _on_release(self, connection: Connection, message: dict) -> None:
        """Abort: drop queue entries, locks and tentative updates."""
        txn = message["txn"]
        vacated = self.locks.queued_entities(txn)
        for entity in self._waiting_entities(txn):
            stale = self._pending.pop((txn, entity), None)
            if stale is None:
                # Answered by a racing timeout or resolve between the
                # snapshot above and this pop.
                continue
            if stale.timer is not None:
                stale.timer.cancel()
            self._finish_wait(stale, "aborted")
            await self._safe_send(
                stale.connection,
                protocol.reply(stale.request_id, "aborted", entity=entity),
            )
            await self._cancel_batch_rest(stale)
        released = self.locks.release_all(txn)
        self._probes_seen.clear()
        for entity in released:
            self._observe_hold(txn, entity)
        if txn not in self._committed:
            for order in self._updates.values():
                while txn in order:
                    order.remove(txn)
        self._applied_ids.pop(txn, None)
        self._log_mutation("release", txn=txn)
        if self.event_log is not None:
            self.event_log.emit(
                "abort",
                transaction=txn,
                site=self.site,
                detail=f"released {len(released)} locks",
            )
        for entity in released:
            await self._promote(entity)
        # Queues the aborter merely waited in have a changed wait-for
        # shape too (its successors moved up a slot).
        for entity in vacated:
            if entity not in released:
                await self._promote(entity)
                await self._reprobe(entity)
        await self._safe_send(connection, protocol.reply(message["id"], "aborted"))

    async def _on_commit(self, connection: Connection, message: dict) -> None:
        txn = message["txn"]
        self._committed.add(txn)
        if self.event_log is not None:
            self.event_log.emit("complete", transaction=txn, site=self.site)
        await self._safe_send(connection, protocol.reply(message["id"], "committed"))

    async def _on_history(self, connection: Connection, message: dict) -> None:
        orders = {
            entity: [txn for txn in order if txn in self._committed]
            for entity, order in sorted(self._updates.items())
        }
        await self._safe_send(
            connection,
            protocol.reply(message["id"], "history", site_orders=orders),
        )

    async def _on_ping(self, connection: Connection, message: dict) -> None:
        await self._safe_send(
            connection,
            protocol.reply(message["id"], "pong", site=self.site),
        )

    def _status_payload(self) -> dict:
        """The live-introspection snapshot of this site: lock table
        (holders + FIFO wait queues), blocked requests with grant-timer
        state, local wait-for edges (same semantics the edge-chasing
        probes use), and the hottest entities.  :class:`repro.replica.
        server.ReplicaServer` extends it with lease/log state."""
        held = self.locks.held_entities()
        waiting = {entity for (_, entity) in self._pending}
        lock_table = [
            {
                "entity": entity,
                "holder": held.get(entity),
                "waiters": list(self.locks.waiters(entity)),
            }
            for entity in sorted(set(held) | waiting)
        ]
        pending_rows = []
        wait_for = []
        for (txn, entity), pending in sorted(self._pending.items()):
            pending_rows.append(
                {
                    "txn": txn,
                    "entity": entity,
                    "enqueued_at": pending.enqueued_at,
                    "age": self.processed - pending.enqueued_at,
                    "timer": pending.timer is not None,
                }
            )
            blocker = self._blocker_of(txn, entity)
            if blocker is not None:
                wait_for.append([txn, blocker])
        return {
            "site": self.site,
            "role": "site",
            "processed": self.processed,
            "committed": len(self._committed),
            "grant_timeout": self.grant_timeout,
            "deadlock_policy": self.deadlock_policy,
            "lock_table": lock_table,
            "pending": pending_rows,
            "wait_for": wait_for,
            "contention": self.insight.rows(limit=8),
        }

    async def _on_status(self, connection: Connection, message: dict) -> None:
        await self._safe_send(
            connection,
            protocol.reply(message["id"], "status", **self._status_payload()),
        )

    async def _on_inspect(self, connection: Connection, message: dict) -> None:
        """Deep view of one entity and/or one transaction."""
        payload: dict = {"site": self.site}
        entity = message.get("entity")
        if entity is not None:
            payload["entity"] = {
                "name": entity,
                "holder": self.locks.holder(entity),
                "waiters": list(self.locks.waiters(entity)),
                "updates": list(self._updates.get(entity, ())),
                "contention": next(
                    (row for row in self.insight.rows() if row["entity"] == entity),
                    None,
                ),
            }
        txn = message.get("txn")
        if txn is not None:
            payload["txn"] = {
                "name": txn,
                "age": self._ages.get(txn),
                "holds": sorted(self.locks.held_by(txn)),
                "waiting": sorted(self._waiting_entities(txn)),
                "committed": txn in self._committed,
            }
        await self._safe_send(
            connection,
            protocol.reply(message["id"], "inspect", **payload),
        )

    async def _on_shutdown(self, connection: Connection, message: dict) -> None:
        await self._safe_send(connection, protocol.reply(message["id"], "stopping"))
        await self.stop()

    # ------------------------------------------------------------------
    # Grants, promotion, timeouts
    # ------------------------------------------------------------------
    def _observe_hold(self, txn: str, entity: str) -> None:
        """Record the hold stage (grant to unlock/release) of one lock."""
        granted = self._grant_wall.pop((txn, entity), None)
        if granted is not None:
            distributed.WIRE.observe("hold", time.time_ns() - granted, self.site)

    def _finish_wait(self, pending: _PendingLock, result: str) -> None:
        """Close a blocked request's lock-wait bookkeeping: record the
        lock-wait stage and end its ``site.lock_wait`` span (if any)
        with the outcome in *result*."""
        if pending.queued_ns:
            waited = time.time_ns() - pending.queued_ns
            distributed.WIRE.observe("lock_wait", waited, self.site)
            if pending.entity:
                self.insight.waited(pending.entity, waited, result)
        else:  # pragma: no cover - observer enabled mid-wait
            waited = 0
        span = pending.span
        if span is not None:
            span.set(result=result, lock_wait_ns=waited)
            span.__exit__(None, None, None)
            pending.span = None

    async def _reply_granted(
        self,
        connection: Connection,
        request_id: int,
        txn: str,
        entity: str,
        latency: int,
    ) -> None:
        _grant_histogram().observe(float(latency))
        if distributed.WIRE.active:
            self._grant_wall.setdefault((txn, entity), time.time_ns())
        self._log_mutation("grant", txn=txn, entity=entity)
        if self.faults is not None and self.faults.grant_delayed(entity, self.site):
            task = asyncio.ensure_future(
                self._deliver_delayed_grant(connection, request_id, entity)
            )
            self._deferred_replies.append(task)
            return
        await self._safe_send(connection, protocol.reply(request_id, "granted", entity=entity))

    async def _deliver_delayed_grant(
        self, connection: Connection, request_id: int, entity: str
    ) -> None:
        """GrantDelay as a message delay: hold the reply, not the lock."""
        while self.running and self.faults.grant_delayed(entity, self.site):
            self.faults.tick()
            await self.transport.sleep(1)
        await self._safe_send(connection, protocol.reply(request_id, "granted", entity=entity))

    async def _promote(self, entity: str) -> None:
        """Grant a freed entity to the longest-waiting requester."""
        self._probes_seen.clear()
        head = self.locks.next_waiter(entity)
        if head is None or self.locks.holder(entity) is not None:
            return
        pending = self._pending.pop((head, entity), None)
        if pending is None:
            # Withdrawn (timeout/abort) but still queued: clean up and
            # look at the next waiter.
            self.locks.withdraw(entity, head)
            await self._promote(entity)
            return
        if not self.locks.try_lock(entity, head):  # pragma: no cover
            self._pending[(head, entity)] = pending
            return
        if pending.timer is not None:
            pending.timer.cancel()
        self._finish_wait(pending, "granted")
        await self._reply_granted(
            pending.connection,
            pending.request_id,
            head,
            entity,
            self.processed - pending.enqueued_at,
        )
        rest, pending.batch_rest = pending.batch_rest, None
        if rest:
            # The grant unparks the rest of the waiter's batch; each
            # remaining step is answered with an individual reply.
            await self._run_batch_steps(pending.connection, head, rest)
        # The remaining waiters now wait for the new holder.
        await self._reprobe(entity)

    async def _expire(self, txn: str, entity: str, timeout: int) -> None:
        """Withdraw a request still queued after *timeout* ticks."""
        await self.transport.sleep(timeout)
        pending = self._pending.pop((txn, entity), None)
        if pending is None:
            return
        self._finish_wait(pending, "timeout")
        self.locks.withdraw(entity, txn)
        self._probes_seen.clear()
        if self.event_log is not None:
            self.event_log.emit(
                "deadlock",
                transaction=txn,
                entity=entity,
                site=self.site,
                detail=f"lock-grant timeout after {timeout} ticks",
            )
        await self._safe_send(
            pending.connection,
            protocol.reply(pending.request_id, "timeout", entity=entity),
        )
        await self._cancel_batch_rest(pending)
        await self._promote(entity)
        await self._reprobe(entity)

    # ------------------------------------------------------------------
    # Deadlock detection (edge-chasing probes)
    # ------------------------------------------------------------------
    async def _reprobe(self, entity: str) -> None:
        """Re-launch probes for everyone still waiting on *entity*.

        Wait-for edges change whenever the entity's holder or queue
        changes (a grant, a withdrawn waiter, an abort) — a cycle that
        only *becomes* minimal then would never be seen by the probes
        sent at block time alone.
        """
        if self.deadlock_policy is None:
            return
        for txn, ent in list(self._pending):
            if ent != entity:
                continue
            blocker = self._blocker_of(txn, ent)
            if blocker is None:
                continue
            pending = self._pending.get((txn, ent))
            if pending is not None:
                # A reprobe can only conclude something new when this
                # waiter's own wait-for edge changed: cycles through an
                # unchanged edge are found by the probe the *new* edge
                # launches at block time, extended through this one by
                # _handle_probe.  Fault injection can drop that probe,
                # so lossy runs keep the unconditional resend.
                if self.faults is None and pending.last_probed == blocker:
                    continue
                pending.last_probed = blocker
            await self._broadcast_probe(
                path=[{"txn": txn, "age": self._ages.get(txn, 0), "site": self.site}],
                target=blocker,
            )

    def _blocker_of(self, txn: str, entity: str) -> str | None:
        """Who *txn* waits for on *entity*: the holder, or the waiter
        immediately ahead in the FIFO queue."""
        holder = self.locks.holder(entity)
        queue = self.locks.waiters(entity)
        if txn not in queue:
            return None
        index = queue.index(txn)
        if index > 0:
            return queue[index - 1]
        return holder

    def _waiting_entities(self, txn: str) -> list[str]:
        return [e for (t, e) in self._pending if t == txn]

    async def _peer_connection(self, site: int) -> Connection | None:
        connection = self._peer_connections.get(site)
        if connection is None:
            try:
                connection = await self.transport.connect(site)
            except TransportError:
                return None
            self._peer_connections[site] = connection
        return connection

    async def _broadcast_probe(self, *, path: list[dict], target: str) -> None:
        """Send the probe everywhere the target might be waiting
        (including this site).

        Identical (path, target) probes are suppressed until the local
        wait-for graph changes: against an unchanged graph a duplicate
        probe extends to the same hops and finds the same cycles, so
        resending it only multiplies frames.  Every lock-table mutation
        clears :attr:`_probes_seen`, which is exactly when a repeat of
        an old probe could conclude something new.
        """
        key = (target, tuple((entry["txn"], entry["site"]) for entry in path))
        if key in self._probes_seen:
            return
        self._probes_seen.add(key)
        message = {"type": "probe", "path": path, "target": target}
        if self._trace_ctx is not None:
            message["trace"] = self._trace_ctx
        await self._handle_probe(message)
        for peer in self.peers:
            connection = await self._peer_connection(peer)
            if connection is not None:
                await self._safe_send(connection, message)

    async def _on_probe(self, connection: Connection, message: dict) -> None:
        await self._handle_probe(message)

    async def _handle_probe(self, message: dict) -> None:
        if self.deadlock_policy is None:
            return
        target = message["target"]
        path = message["path"]
        on_path = {entry["txn"] for entry in path}
        if target in on_path:
            return  # the originating site already closed this cycle
        for entry in path:
            self._ages.setdefault(entry["txn"], int(entry["age"]))
        for entity in self._waiting_entities(target):
            blocker = self._blocker_of(target, entity)
            if blocker is None:
                continue
            extended = path + [{"txn": target, "age": self._ages.get(target, 0), "site": self.site}]
            member_names = [entry["txn"] for entry in extended]
            if blocker in member_names:
                cycle = member_names[member_names.index(blocker) :]
                await self._resolve_cycle(cycle, extended)
            else:
                await self._broadcast_probe(path=extended, target=blocker)

    async def _resolve_cycle(self, cycle: list[str], path: list[dict]) -> None:
        ages = {name: self._ages.get(name, 0) for name in cycle}
        victim = choose_victim(self.deadlock_policy, cycle, ages=ages, rng=self.rng)
        if self.event_log is not None:
            self.event_log.emit(
                "deadlock",
                transaction=victim,
                site=self.site,
                detail=f"cycle {' -> '.join(cycle)}; victim {victim}",
            )
        victim_site = next(
            (entry["site"] for entry in path if entry["txn"] == victim),
            self.site,
        )
        message = {"type": "resolve", "victim": victim, "cycle": cycle}
        if self._trace_ctx is not None:
            message["trace"] = self._trace_ctx
        if victim_site == self.site:
            await self._handle_resolve(message)
        else:
            connection = await self._peer_connection(victim_site)
            if connection is not None:
                await self._safe_send(connection, message)

    async def _on_resolve(self, connection: Connection, message: dict) -> None:
        await self._handle_resolve(message)

    async def _handle_resolve(self, message: dict) -> None:
        """Answer the victim's pending lock request with ``deadlock``."""
        victim = message["victim"]
        self._probes_seen.clear()
        for entity in self._waiting_entities(victim):
            pending = self._pending.pop((victim, entity), None)
            if pending is None:
                continue
            if pending.timer is not None:
                pending.timer.cancel()
            self._finish_wait(pending, "deadlock")
            self.locks.withdraw(entity, victim)
            await self._safe_send(
                pending.connection,
                protocol.reply(
                    pending.request_id,
                    "deadlock",
                    entity=entity,
                    victim=victim,
                    cycle=message.get("cycle", []),
                ),
            )
            await self._cancel_batch_rest(pending)
            await self._promote(entity)
            await self._reprobe(entity)
