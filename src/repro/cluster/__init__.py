"""A real networked multi-site lock-manager runtime.

Where :mod:`repro.sim` interleaves steps inside one process under a
driver's thumb, this package runs the paper's model as an actual
distributed system: one :class:`SiteServer` per site owning that
site's lock table and update order, :class:`Coordinator` clients
executing transactions *as partial orders* over a length-prefixed JSON
wire protocol, edge-chasing deadlock probes with the
:mod:`repro.faults.policies` victim rules, and a :class:`Gateway` that
runs the :mod:`repro.service` static safety vetting before anything
touches the wire.

Two transports share the protocol: :class:`MemoryTransport` (asyncio
queues, deterministic, what the tests and the benchmark's
reproducibility check use) and :class:`TcpTransport` (real sockets,
what ``repro cluster serve`` deploys).  :func:`run_cluster` boots a
cluster, drives a workload through it and audits every committed
history for conflict-serializability via :mod:`repro.sim.analysis` —
the experiment that shows the paper's *safety* guarantee surviving
contact with a network, and its absence showing up as real anomalies.
"""

from .coordinator import Coordinator, TxnOutcome
from .gateway import Gateway, GatewayDecision
from .netfaults import NetworkFaultAdapter
from .protocol import PEER_KINDS, REQUEST_KINDS, ProtocolError
from .runtime import ClusterError, ClusterReport, run_cluster, run_cluster_sync
from .siteserver import SiteServer
from .transport import (
    Connection,
    LatencyMatrix,
    LatencyTransport,
    MemoryTransport,
    TcpTransport,
    Transport,
    TransportError,
)

__all__ = [
    "ClusterError",
    "ClusterReport",
    "Connection",
    "Coordinator",
    "Gateway",
    "GatewayDecision",
    "LatencyMatrix",
    "LatencyTransport",
    "MemoryTransport",
    "NetworkFaultAdapter",
    "PEER_KINDS",
    "ProtocolError",
    "REQUEST_KINDS",
    "SiteServer",
    "TcpTransport",
    "Transport",
    "TransportError",
    "TxnOutcome",
    "run_cluster",
    "run_cluster_sync",
]
