"""Small shared statistics helpers.

One implementation of the nearest-rank percentile serves every report
in the package — the chaos sweep's recovery latencies
(:mod:`repro.faults.chaos`), the distributed trace's per-stage
wire-latency table (:mod:`repro.obs.distributed`) and the arena's
per-cell transaction latencies (:mod:`repro.arena.report`) — so the
three never drift apart on rank conventions.
"""

from __future__ import annotations

import math
from collections.abc import Sequence


def percentile(values: Sequence[float], q: float) -> float | None:
    """The *q*-th percentile of *values* (``0 <= q <= 100``), by the
    nearest-rank method, or ``None`` when there are no observations.

    Nearest rank: the smallest observation at or above the ``q``-fraction
    position of the sorted sample — always an observed value, never an
    interpolation, which keeps deterministic runs bit-reproducible.
    """
    if not values:
        return None
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile rank must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(0, math.ceil(q / 100.0 * len(ordered)) - 1)
    return float(ordered[rank])
