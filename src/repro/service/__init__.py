"""A concurrent safety-vetting admission service.

The paper's practical payoff is an ``O(n^2)`` *decision procedure*
(Theorem 2 / Proposition 2): before letting transactions loose on a
distributed database, statically vet that the system they form is safe.
This package turns the offline deciders of :mod:`repro.core` into a
long-running service:

* :mod:`~repro.service.fingerprint` — content-hashes of a transaction's
  canonical lock/unlock poset, so structurally identical transactions
  share verdicts;
* :mod:`~repro.service.cache` — a bounded LRU cache of pair verdicts
  keyed by fingerprint pairs, with hit/miss counters;
* :mod:`~repro.service.registry` — the incremental admission state
  machine: admit / reject-with-certificate / evict, vetting only the
  new-vs-existing pairs plus the interaction cycles through the
  newcomer (Proposition 2);
* :mod:`~repro.service.pool` — a process-pool fan-out that vets pair
  batches in parallel with chunking and an ordered-result merge, and
  degrades gracefully (PR 3): worker deaths respawn-and-resubmit only
  the lost chunks, repeated failures trip a circuit breaker, and the
  batch falls back to inline vetting instead of being lost;
* :mod:`~repro.service.breaker` — the consecutive-failure circuit
  breaker guarding the pool;
* :mod:`~repro.service.stats` — structured counters and per-phase wall
  time.

The CLI front ends are ``repro vet FILE...`` (batch admission through
one registry) and ``repro serve`` (line-oriented request loop); see
``docs/service.md``.
"""

from .breaker import CircuitBreaker
from .cache import CachedVerdict, VerdictCache
from .fingerprint import fingerprint_of, pair_key
from .pool import PairVerdict, PairVettingPool
from .registry import AdmissionDecision, AdmissionRegistry
from .stats import ServiceStats

__all__ = [
    "AdmissionDecision",
    "AdmissionRegistry",
    "CachedVerdict",
    "CircuitBreaker",
    "PairVerdict",
    "PairVettingPool",
    "ServiceStats",
    "VerdictCache",
    "fingerprint_of",
    "pair_key",
]
