"""A consecutive-failure circuit breaker for the vetting pool.

When process-pool workers keep dying, re-spawning them for every
admission turns one infrastructure fault into a latency storm.  The
breaker watches consecutive pool failures and, past a threshold,
*opens*: the pool stops being offered work and the registry vets
inline (slower, but always correct — the decision procedure is pure
Python).  After a cooldown the breaker goes *half-open* and lets one
batch probe the pool; success closes it again, another failure re-opens
it.  State changes are mirrored into the ``repro_breaker_state`` gauge
(0 closed / 1 open / 2 half-open) and counted in
``repro_breaker_transitions_total``.
"""

from __future__ import annotations

import time
from typing import Callable

from ..obs import metrics

#: Breaker states, in gauge-value order.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"
STATE_VALUES = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}


def _state_gauge() -> metrics.Gauge:
    return metrics.REGISTRY.gauge(
        "repro_breaker_state",
        "vetting-pool circuit breaker (0 closed / 1 open / 2 half-open)",
    )


def _transitions_counter() -> metrics.Counter:
    return metrics.REGISTRY.counter(
        "repro_breaker_transitions_total",
        "circuit-breaker state changes, by new state",
    )


class CircuitBreaker:
    """Closed until *failure_threshold* consecutive failures; open for
    *cooldown_seconds*; then half-open until the next verdict.

    *clock* is injectable for tests (defaults to
    :func:`time.monotonic`)."""

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        cooldown_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        _state_gauge().set(STATE_VALUES[CLOSED])

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """``closed`` / ``open`` / ``half-open`` (cooldown applied)."""
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.cooldown_seconds
        ):
            self._transition(HALF_OPEN)
        return self._state

    def allow(self) -> bool:
        """May the pool be offered work right now?"""
        return self.state != OPEN

    def record_success(self) -> None:
        """A pool batch finished without a worker failure."""
        self._failures = 0
        if self._state != CLOSED:
            self._transition(CLOSED)

    def record_failure(self) -> None:
        """A pool batch lost a worker."""
        self._failures += 1
        if self._state == HALF_OPEN or self._failures >= self.failure_threshold:
            self._opened_at = self._clock()
            if self._state != OPEN:
                self._transition(OPEN)

    def _transition(self, state: str) -> None:
        self._state = state
        _state_gauge().set(STATE_VALUES[state])
        _transitions_counter().labels(state=state).inc()

    def as_dict(self) -> dict:
        """Current state and failure streak, JSON-friendly."""
        return {"state": self.state, "consecutive_failures": self._failures}
